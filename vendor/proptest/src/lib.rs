//! A minimal, deterministic, API-compatible shim of the `proptest` crate.
//!
//! The build container for this workspace has no crates.io access, so the
//! property-based tests link against this in-tree substitute instead of the real
//! `proptest`.  The shim supports exactly the surface those tests use:
//!
//! * the [`proptest!`] macro with a `#![proptest_config(...)]` header and
//!   `arg in strategy` bindings;
//! * range strategies over the primitive numeric types, [`any`], and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case with a
//!   formatted message instead of unwinding mid-generator.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure seeds:
//! cases are generated from a fixed per-case seed, so every run explores the same
//! inputs and failures reproduce immediately.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Produces one value from deterministic entropy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.next_unit() as $t)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Strategy returned by [`crate::any`], producing unconstrained values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Unconstrained strategy for a primitive type (`any::<u64>()`).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn from a
    /// range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// Length specification accepted by [`vec()`]: a fixed length or a range.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)` bounds of the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// `proptest::collection::vec`: a strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len_exclusive) = size.bounds();
        assert!(min_len < max_len_exclusive, "empty vec length range");
        VecStrategy {
            element,
            min_len,
            max_len_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len_exclusive - self.min_len) as u64;
            let len = self.min_len + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic 64-bit generator (splitmix64) seeding each test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one numbered case of one named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // Stable hash of the test name so different tests explore different
            // sequences even at the same case index.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Failure raised by `prop_assert!` and friends; carries the formatted message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`ProptestConfig::with_cases(n)`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases generated per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block becomes a
/// `#[test]` that runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut proptest_rng,
                        );
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Fails the current proptest case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current proptest case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Everything the tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};

    /// The `prop::` module alias the real crate's prelude exposes.
    pub mod prop {
        pub use crate::collection;
    }
}
