//! A minimal, offline API-compatible shim of the `criterion` benchmark harness.
//!
//! The build container for this workspace has no crates.io access, so the Criterion
//! benches under `crates/bench/benches/` link against this in-tree substitute.  It
//! supports the surface those benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], `bench_function`, [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports a simple
//! mean/min/max wall-clock summary per benchmark instead of Criterion's full
//! statistical analysis.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to every registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (output is already printed; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (called repeatedly by the harness).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let value = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(value);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher::default();
    // One untimed warm-up call, then the requested number of samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
        samples.len()
    );
}

/// Re-export point used by some benches (`criterion::black_box`).
pub use std::hint::black_box;

/// Registers benchmark functions under a group name (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
