//! Integration tests for the baseline detectors (EP, CDRP, DeepFense) and the
//! white-box adaptive attack, exercised against the same trained victims the
//! Ptolemy detector uses.

mod common;

use ptolemy::accel::HardwareConfig;
use ptolemy::attacks::{AdaptiveAttack, AdaptiveConfig, Attack, Fgsm};
use ptolemy::baselines::{
    BaselineDetector, CdrpDefense, DeepFenseDefense, DeepFenseVariant, EpDefense,
};
use ptolemy::core::{path_similarity, variants, Profiler};
use ptolemy::forest::auc;
use ptolemy::tensor::Tensor;

fn attack_split(
    network: &ptolemy::nn::Network,
    dataset: &ptolemy::data::SyntheticDataset,
) -> (Vec<Tensor>, Vec<Tensor>) {
    let benign = common::benign_inputs(dataset);
    let attack = Fgsm::new(0.25);
    let adversarial: Vec<Tensor> = common::correct_samples(network, dataset)
        .iter()
        .map(|(x, y)| attack.perturb(network, x, *y).unwrap().input)
        .collect();
    (benign, adversarial)
}

fn detector_auc(
    detector: &dyn BaselineDetector,
    network: &ptolemy::nn::Network,
    benign: &[Tensor],
    adversarial: &[Tensor],
) -> f32 {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for input in benign {
        scores.push(detector.score(network, input).unwrap());
        labels.push(false);
    }
    for input in adversarial {
        scores.push(detector.score(network, input).unwrap());
        labels.push(true);
    }
    auc(&scores, &labels).unwrap()
}

#[test]
fn ep_detects_above_chance_and_costs_like_bwcu() {
    let (network, dataset) = common::trained_lenet(0xE9);
    let (benign, adversarial) = attack_split(&network, &dataset);
    assert!(!adversarial.is_empty());

    let ep = EpDefense::fit(&network, dataset.train(), 0.5).unwrap();
    assert!(ep.online());
    let ep_auc = detector_auc(&ep, &network, &benign, &adversarial);
    assert!(ep_auc > 0.5, "EP AUC {ep_auc}");

    // EP's cost (no compiler optimisations) is at least the optimised BwCu cost.
    let config = HardwareConfig::default();
    let ep_cost = ep.cost(&network, &config, 0.08).unwrap();
    let bwcu = variants::bw_cu(&network, 0.5).unwrap();
    let bwcu_cost = {
        let compiled = ptolemy::compiler::Compiler::default()
            .compile(&network, &bwcu)
            .unwrap();
        ptolemy::accel::Simulator::new(config)
            .unwrap()
            .simulate(&network, &compiled, 0.08)
            .unwrap()
    };
    assert!(ep_cost.latency_factor() >= bwcu_cost.latency_factor() - 1e-9);
}

#[test]
fn cdrp_is_offline_only_and_scores_are_probabilities() {
    let (network, dataset) = common::trained_lenet(0xCD);
    let (benign, adversarial) = attack_split(&network, &dataset);
    let cdrp = CdrpDefense::fit(&network, dataset.train(), &benign, &adversarial).unwrap();
    assert!(!cdrp.online(), "CDRP cannot run at inference time");
    for input in benign.iter().chain(&adversarial) {
        let score = cdrp.score(&network, input).unwrap();
        assert!((0.0..=1.0).contains(&score));
    }
    let cdrp_auc = detector_auc(&cdrp, &network, &benign, &adversarial);
    assert!((0.0..=1.0).contains(&cdrp_auc));
}

#[test]
fn deepfense_accuracy_and_cost_scale_with_module_count() {
    let (network, dataset) = common::trained_lenet(0xDF);
    let (benign, adversarial) = attack_split(&network, &dataset);
    let config = HardwareConfig::default();

    let dfl =
        DeepFenseDefense::fit(&network, DeepFenseVariant::Light, &benign, &adversarial, 1).unwrap();
    let dfh =
        DeepFenseDefense::fit(&network, DeepFenseVariant::High, &benign, &adversarial, 1).unwrap();
    assert_eq!(dfl.num_modules(), 1);
    assert_eq!(dfh.num_modules(), 16);

    let (dfl_lat, dfl_en) = dfl.cost(&network, &config).unwrap();
    let (dfh_lat, dfh_en) = dfh.cost(&network, &config).unwrap();
    assert!(dfh_lat > dfl_lat);
    assert!(dfh_en > dfl_en);
    assert!(dfl_lat >= 1.0 && dfl_en >= 1.0);

    // Scores are valid probabilities on both operating points.
    for detector in [&dfl, &dfh] {
        let value = detector_auc(detector, &network, &benign, &adversarial);
        assert!((0.0..=1.0).contains(&value));
    }
}

#[test]
fn ptolemy_is_cheaper_than_deepfense_at_comparable_detection() {
    // The paper's Fig. 12 argument in miniature: FwAb's latency overhead on the
    // shared accelerator is below DeepFense-High's (16 redundant defenders).
    let (network, dataset) = common::trained_lenet(0x12F);
    let (benign, adversarial) = attack_split(&network, &dataset);
    let config = HardwareConfig::default();

    let fwab = variants::fw_ab(&network, 0.05).unwrap();
    let compiled = ptolemy::compiler::Compiler::default()
        .compile(&network, &fwab)
        .unwrap();
    let fwab_cost = ptolemy::accel::Simulator::new(config)
        .unwrap()
        .simulate(&network, &compiled, 0.08)
        .unwrap();

    let dfh =
        DeepFenseDefense::fit(&network, DeepFenseVariant::High, &benign, &adversarial, 2).unwrap();
    let (dfh_latency, _) = dfh.cost(&network, &config).unwrap();
    assert!(
        fwab_cost.latency_factor() < dfh_latency,
        "FwAb {} vs DFH {}",
        fwab_cost.latency_factor(),
        dfh_latency
    );
}

#[test]
fn adaptive_attack_is_valid_and_still_detected_above_chance() {
    let (network, dataset) = common::trained_lenet(0xAD);
    let program = variants::bw_cu(&network, 0.5).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();
    let benign = common::benign_inputs(&dataset);

    let attack = AdaptiveAttack::new(
        AdaptiveConfig {
            layers_considered: 2,
            step_size: 0.02,
            iterations: 15,
            num_targets: 3,
            seed: 0xAD,
        },
        dataset.train().to_vec(),
    )
    .unwrap();
    assert_eq!(attack.name(), "Adaptive");

    let samples = common::correct_samples(&network, &dataset);
    assert!(!samples.is_empty());
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for input in &benign {
        let (_, s) = path_similarity(&network, &program, &class_paths, input).unwrap();
        scores.push(1.0 - s);
        labels.push(false);
    }
    for (input, label) in samples.iter().take(10) {
        let example = attack.perturb(&network, input, *label).unwrap();
        // The adaptive attack reports its distortion (the paper's validity metric).
        assert!(example.distortion_mse.is_finite());
        assert!(example.distortion_mse >= 0.0);
        let (_, s) = path_similarity(&network, &program, &class_paths, &example.input).unwrap();
        scores.push(1.0 - s);
        labels.push(true);
    }
    let adaptive_auc = auc(&scores, &labels).unwrap();
    assert!(
        adaptive_auc > 0.4,
        "adaptive detection collapsed entirely: {adaptive_auc}"
    );
}
