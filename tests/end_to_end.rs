//! End-to-end integration tests of the full Ptolemy pipeline: train → profile →
//! attack → detect, plus the class-path artifact lifecycle (serialisation, program
//! fingerprint matching at engine build).

mod common;

use ptolemy::attacks::{Attack, Bim, Fgsm};
use ptolemy::core::{variants, ClassPathSet, DetectionEngine, Profiler};
use ptolemy::forest::auc;

#[test]
fn train_profile_attack_detect_pipeline_beats_chance() {
    let (network, dataset) = common::trained_lenet(0xE2E);
    let program = variants::bw_cu(&network, 0.5).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();
    assert_eq!(class_paths.num_classes(), dataset.num_classes());

    let benign = common::benign_inputs(&dataset);
    let attack = Fgsm::new(0.25);
    let adversarial: Vec<_> = common::correct_samples(&network, &dataset)
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
        .collect();
    assert!(!adversarial.is_empty(), "attack produced no samples");

    // Bind a similarity-serving engine (no classifier) and score with raw path
    // similarity: benign inputs should look more like their class path than
    // adversarial inputs do, so the AUC must beat chance.
    let engine = DetectionEngine::builder(network, program, class_paths)
        .build()
        .unwrap();
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (inputs, label) in [(&benign, false), (&adversarial, true)] {
        for input in inputs {
            let (_, s) = engine.path_similarity(input).unwrap();
            assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
            scores.push(1.0 - s);
            labels.push(label);
        }
    }
    let auc_value = auc(&scores, &labels).unwrap();
    assert!(
        auc_value > 0.55,
        "detection AUC {auc_value} not above chance"
    );
}

#[test]
fn fitted_engine_produces_consistent_verdicts() {
    let (network, dataset) = common::trained_lenet(0xF17);
    let program = variants::fw_ab(&network, 0.05).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();

    let benign = common::benign_inputs(&dataset);
    let attack = Bim::new(0.2, 0.04, 15);
    let adversarial: Vec<_> = common::correct_samples(&network, &dataset)
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
        .collect();

    let engine = DetectionEngine::builder(network, program, class_paths)
        .calibrate(&benign, &adversarial)
        .build()
        .unwrap();
    for input in benign.iter().chain(&adversarial) {
        let d = engine.detect(input).unwrap();
        assert!((0.0..=1.0).contains(&d.score));
        assert!((0.0..=1.0).contains(&d.similarity));
        assert!(d.predicted_class < dataset.num_classes());
        assert_eq!(d.is_adversary, d.score >= engine.threshold());
        // score() must agree with detect().
        let s = engine.score(input).unwrap();
        assert!((s - d.score).abs() < 1e-6);
    }
    assert_eq!(engine.forest().unwrap().num_trees(), 100);
    assert_eq!(engine.forest().unwrap().num_features(), 1);
}

#[test]
fn class_paths_serialise_and_reject_mismatched_programs() {
    let (network, dataset) = common::trained_lenet(0x5E7);
    let program = variants::bw_cu(&network, 0.5).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();

    // JSON round trip preserves the artifact exactly.
    let json = class_paths.to_json().unwrap();
    let restored = ClassPathSet::from_json(&json).unwrap();
    assert_eq!(restored, class_paths);
    assert!(ClassPathSet::from_json("not json").is_err());

    // Binding an engine with class paths profiled under a *different* program
    // must fail at construction (paper Fig. 4: offline and online extraction
    // methods must match) — per-call validation is no longer needed.
    let other_program = variants::bw_cu(&network, 0.9).unwrap();
    let err = DetectionEngine::builder(network, other_program, class_paths).build();
    assert!(
        err.is_err(),
        "mismatched program fingerprint must be rejected at engine build"
    );
}

#[test]
fn incremental_profiling_only_adds_bits() {
    // Aggregating more training samples can only set more bits in a class path
    // (bitwise OR aggregation, paper Sec. III-A).
    let (network, dataset) = common::trained_lenet(0xA66);
    let program = variants::bw_cu(&network, 0.5).unwrap();
    let profiler = Profiler::new(program.clone());

    let half: Vec<_> = dataset.train()[..dataset.train().len() / 2].to_vec();
    let small = profiler.profile(&network, &half).unwrap();
    let full = profiler.profile(&network, dataset.train()).unwrap();
    for class in 0..dataset.num_classes() {
        let small_bits = small.class_path(class).unwrap().count_ones();
        let full_bits = full.class_path(class).unwrap().count_ones();
        assert!(
            full_bits >= small_bits,
            "class {class}: {full_bits} < {small_bits}"
        );
    }
}

#[test]
fn all_standard_attacks_produce_valid_examples() {
    let (network, dataset) = common::trained_lenet(0xA77);
    let samples = common::correct_samples(&network, &dataset);
    assert!(!samples.is_empty());
    let (input, label) = samples[0].clone();

    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(ptolemy::attacks::Fgsm::new(0.15)),
        Box::new(ptolemy::attacks::Bim::new(0.15, 0.03, 10)),
        Box::new(ptolemy::attacks::Pgd::new(0.15, 0.03, 10, 3)),
        Box::new(ptolemy::attacks::DeepFool::new(15, 0.02)),
        Box::new(ptolemy::attacks::CarliniWagnerL2::new(1.0, 0.05, 15, 0.0)),
        Box::new(ptolemy::attacks::Jsma::new(0.6, 16)),
    ];
    for attack in &attacks {
        let example = attack.perturb(&network, &input, label).unwrap();
        assert_eq!(example.original_class, label);
        assert!(example.distortion_mse >= 0.0);
        assert!(example.distortion_linf >= 0.0);
        assert_eq!(example.input.dims(), input.dims());
        assert!(example.input.as_slice().iter().all(|v| v.is_finite()));
    }
}
