//! Property-based parity suite for the streaming extraction pipeline: across
//! every `variants::*` program (both directions, both threshold kinds, early
//! termination and late start) and batch sizes 1..8, the streamed pipeline —
//! masks computed while the forward pass runs, activations dropped eagerly —
//! must be **bit-for-bit identical** to the materialized trace-then-extract
//! pipeline: same paths, same similarities/scores, same detect verdicts.
//! The suite also pins the memory guarantee: the streamed peak resident
//! activation bytes stay strictly below what the materialized trace holds.

mod common;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use ptolemy::core::{
    extract_path, extract_path_streaming, extract_paths_streaming_batch, variants, DetectionEngine,
    DetectionProgram, Profiler,
};
use ptolemy::nn::Network;
use ptolemy::prelude::{Attack, Fgsm, Tensor};
use ptolemy::tensor::Rng64;

/// One trained victim plus a calibrated engine per `variants::*` constructor.
struct Fixture {
    network: Arc<Network>,
    engines: Vec<(&'static str, DetectionEngine)>,
    inputs: Vec<Tensor>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (network, dataset) = common::trained_lenet(0x57E4);
        let network = Arc::new(network);
        let benign = common::benign_inputs(&dataset);
        let attack = Fgsm::new(0.25);
        let adversarial: Vec<Tensor> = common::correct_samples(&network, &dataset)
            .iter()
            .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
            .collect();

        // Every canned program constructor: both directions, both threshold
        // kinds, the hybrid mix and both selective-extraction modes.
        let programs = vec![
            ("bw_cu", variants::bw_cu(&network, 0.5).unwrap()),
            ("bw_ab", variants::bw_ab(&network, 0.2).unwrap()),
            ("fw_ab", variants::fw_ab(&network, 0.05).unwrap()),
            ("fw_cu", variants::fw_cu(&network, 0.5).unwrap()),
            ("hybrid", variants::hybrid(&network, 0.2, 0.5).unwrap()),
            (
                "bw_cu_early_termination",
                variants::bw_cu_early_termination(&network, 0.5, 2).unwrap(),
            ),
            (
                "fw_ab_late_start",
                variants::fw_ab_late_start(&network, 0.05, 1).unwrap(),
            ),
        ];
        let engines = programs
            .into_iter()
            .map(|(name, program)| {
                let class_paths = Profiler::new(program.clone())
                    .profile(&network, dataset.train())
                    .unwrap();
                let engine = DetectionEngine::builder(network.clone(), program, class_paths)
                    .calibrate(&benign, &adversarial)
                    .build()
                    .unwrap();
                (name, engine)
            })
            .collect();

        let mut inputs = benign;
        inputs.extend(adversarial);
        Fixture {
            network,
            engines,
            inputs,
        }
    })
}

/// A batch of 1..=8 inputs mixing dataset draws with one arbitrary tensor.
fn batch(seed: u64, len: usize, scale: f32) -> Vec<Tensor> {
    let fx = fixture();
    let mut rng = Rng64::new(seed);
    let mut batch: Vec<Tensor> = (0..len.saturating_sub(1))
        .map(|_| fx.inputs[rng.below(fx.inputs.len())].clone())
        .collect();
    batch.push(
        Tensor::from_vec(
            (0..3 * 8 * 8).map(|_| scale * rng.normal()).collect(),
            &[3, 8, 8],
        )
        .unwrap(),
    );
    batch
}

/// The retired pipeline the streamed one must reproduce exactly: materialize
/// the full trace, extract after the fact.
fn materialized_path(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
) -> (usize, ptolemy::core::ActivationPath) {
    let trace = network.forward_trace(input).unwrap();
    let predicted = trace.predicted_class().unwrap();
    let path = extract_path(network, &trace, program).unwrap();
    (predicted, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Streamed single-input and fused-batch extraction produce bit-for-bit
    /// the materialized pipeline's paths and predicted classes, for every
    /// `variants::*` program and batch sizes 1..8.
    #[test]
    fn streamed_extraction_matches_materialized_bit_for_bit(
        seed in 0u64..10_000,
        len in 1usize..=8,
        scale in 0.1f32..2.0,
    ) {
        let fx = fixture();
        let inputs = batch(seed, len, scale);
        for (name, engine) in &fx.engines {
            let program = engine.program();

            // Fused-batch streaming vs per-sample materialized slices.
            let streamed = extract_paths_streaming_batch(&fx.network, program, &inputs).unwrap();
            prop_assert_eq!(streamed.samples.len(), inputs.len());
            let batch_trace = fx.network.forward_trace_batch(&inputs).unwrap();
            for (b, input) in inputs.iter().enumerate() {
                let (expected_class, expected_path) =
                    materialized_path(&fx.network, program, input);
                let (streamed_class, streamed_path) = &streamed.samples[b];
                prop_assert!(
                    *streamed_class == expected_class,
                    "variant {}: predicted class diverged for sample {}",
                    name,
                    b
                );
                prop_assert!(
                    streamed_path == &expected_path,
                    "variant {}: streamed batch path diverged for sample {}",
                    name,
                    b
                );

                // Single-input streaming agrees too, including the logits.
                let single = extract_path_streaming(&fx.network, program, input).unwrap();
                prop_assert_eq!(single.predicted_class, expected_class);
                prop_assert_eq!(&single.path, &expected_path);
                let materialized_trace = batch_trace.trace(b).unwrap();
                for (s, m) in single
                    .logits
                    .as_slice()
                    .iter()
                    .zip(materialized_trace.logits().as_slice())
                {
                    prop_assert_eq!(s.to_bits(), m.to_bits());
                }
            }

            // Memory guarantee: the streamed pipeline never holds the full
            // trace (every variant retains at most a strict subset).
            prop_assert!(
                streamed.footprint.peak_streamed_bytes < batch_trace.activation_bytes(),
                "variant {}: streamed peak {} >= materialized {}",
                name,
                streamed.footprint.peak_streamed_bytes,
                batch_trace.activation_bytes()
            );
        }
    }

    /// Detect verdicts served through the streamed engine (single and fused
    /// batch) are bit-for-bit what the materialized pipeline scores: the
    /// similarity comes from an identical path, so the forest score and the
    /// verdict match exactly.
    #[test]
    fn streamed_detect_matches_materialized_scoring(
        seed in 0u64..10_000,
        len in 1usize..=8,
        scale in 0.1f32..2.0,
    ) {
        let fx = fixture();
        let inputs = batch(seed, len, scale);
        for (name, engine) in &fx.engines {
            let batched = engine.detect_batch(&inputs).unwrap();
            prop_assert_eq!(batched.len(), inputs.len());
            for (input, served) in inputs.iter().zip(&batched) {
                let (expected_class, expected_path) =
                    materialized_path(&fx.network, engine.program(), input);
                let similarity = expected_path
                    .similarity(engine.class_paths().class_path(expected_class).unwrap())
                    .unwrap();
                let score = engine
                    .forest()
                    .expect("calibrated engine")
                    .predict_proba(&[similarity])
                    .unwrap();
                prop_assert!(
                    served.predicted_class == expected_class,
                    "variant {}: class diverged",
                    name
                );
                prop_assert!(
                    served.similarity.to_bits() == similarity.to_bits(),
                    "variant {}: similarity diverged",
                    name
                );
                prop_assert!(
                    served.score.to_bits() == score.to_bits(),
                    "variant {}: score diverged",
                    name
                );
                prop_assert_eq!(served.is_adversary, score >= engine.threshold());

                // The single-input engine path agrees with the fused batch.
                let single = engine.detect(input).unwrap();
                prop_assert_eq!(single.score.to_bits(), served.score.to_bits());
                prop_assert_eq!(
                    single.similarity.to_bits(),
                    served.similarity.to_bits()
                );
            }
        }
    }
}
