#![allow(dead_code)]

//! Shared fixtures for the cross-crate integration tests: a small trained victim
//! network plus its dataset, sized so every test file stays fast.

use ptolemy::data::{DatasetConfig, SyntheticDataset};
use ptolemy::nn::{zoo, Network, TrainConfig, Trainer};
use ptolemy::tensor::{Rng64, Tensor};

/// A trained LeNet-class victim on a 4-class synthetic dataset.
pub fn trained_lenet(seed: u64) -> (Network, SyntheticDataset) {
    let dataset = SyntheticDataset::generate(DatasetConfig {
        name: "integration-small".into(),
        num_classes: 4,
        shape: vec![3, 8, 8],
        train_per_class: 20,
        test_per_class: 8,
        noise: 0.12,
        seed,
    })
    .expect("dataset");
    let mut network = zoo::lenet(3, dataset.num_classes(), &mut Rng64::new(seed)).expect("network");
    Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())
    .expect("training");
    (network, dataset)
}

/// Benign test inputs of a dataset.
pub fn benign_inputs(dataset: &SyntheticDataset) -> Vec<Tensor> {
    dataset.test().iter().map(|(x, _)| x.clone()).collect()
}

/// Correctly-classified labelled test samples.
pub fn correct_samples(network: &Network, dataset: &SyntheticDataset) -> Vec<(Tensor, usize)> {
    dataset
        .test()
        .iter()
        .filter(|(x, y)| network.predict(x).map(|p| p == *y).unwrap_or(false))
        .cloned()
        .collect()
}
