//! Integration tests spanning the core framework, compiler, ISA and hardware model:
//! the compiled programs execute on the simulator with the cost ordering the paper
//! reports, the ISA artifacts round-trip, and the hardware-side trade-offs
//! (recompute, pipelining, provisioning) move the numbers in the right direction.

mod common;

use ptolemy::accel::{area_report, dram_space_report, HardwareConfig, Simulator};
use ptolemy::compiler::{Compiler, OptimizationFlags};
use ptolemy::core::variants;
use ptolemy::isa::Instruction;
use ptolemy::nn::zoo;
use ptolemy::tensor::Rng64;

fn conv_network() -> ptolemy::nn::Network {
    zoo::conv_net(10, &mut Rng64::new(0xCAFE)).unwrap()
}

#[test]
fn variant_cost_ordering_matches_fig11() {
    let network = conv_network();
    let sim = Simulator::new(HardwareConfig::default()).unwrap();
    let density = 0.08;

    let cost = |program| {
        let compiled = Compiler::default().compile(&network, &program).unwrap();
        sim.simulate(&network, &compiled, density).unwrap()
    };
    let bwcu = cost(variants::bw_cu(&network, 0.5).unwrap());
    let bwab = cost(variants::bw_ab(&network, 0.1).unwrap());
    let fwab = cost(variants::fw_ab(&network, 0.1).unwrap());
    let hybrid = cost(variants::hybrid(&network, 0.1, 0.5).unwrap());

    // Fig. 11 shape: BwCu >> Hybrid > BwAb >= FwAb ~ 1, same for energy.
    assert!(bwcu.latency_factor() > hybrid.latency_factor());
    assert!(hybrid.latency_factor() >= bwab.latency_factor());
    assert!(bwab.latency_factor() >= fwab.latency_factor());
    assert!(
        fwab.latency_overhead() < 0.30,
        "FwAb overhead {}",
        fwab.latency_overhead()
    );
    assert!(bwcu.energy_factor() > bwab.energy_factor());
    assert!(bwcu.energy_factor() > fwab.energy_factor());
    // Every variant is at least as expensive as plain inference.
    for report in [&bwcu, &bwab, &fwab, &hybrid] {
        assert!(report.latency_factor() >= 1.0);
        assert!(report.energy_factor() >= 1.0);
        assert!(report.total_cycles >= report.inference_cycles);
    }
}

#[test]
fn deeper_networks_pay_more_for_cumulative_extraction() {
    let sim = Simulator::new(HardwareConfig::default()).unwrap();
    let shallow = conv_network();
    let deep = zoo::resnet_mini(10, &mut Rng64::new(0xCAFE)).unwrap();
    let factor = |network: &ptolemy::nn::Network| {
        let program = variants::bw_cu(network, 0.5).unwrap();
        let compiled = Compiler::default().compile(network, &program).unwrap();
        sim.simulate(network, &compiled, 0.08)
            .unwrap()
            .latency_factor()
    };
    assert!(factor(&deep) > factor(&shallow));
}

#[test]
fn compiled_isa_round_trips_and_stays_small() {
    let network = conv_network();
    for program in [
        variants::bw_cu(&network, 0.5).unwrap(),
        variants::bw_ab(&network, 0.1).unwrap(),
        variants::fw_ab(&network, 0.1).unwrap(),
        variants::hybrid(&network, 0.1, 0.5).unwrap(),
    ] {
        let compiled = Compiler::default().compile(&network, &program).unwrap();
        // Binary encode/decode round trip for every instruction.
        for inst in &compiled.isa.instructions {
            let word = inst.encode();
            assert_eq!(&Instruction::decode(word).unwrap(), inst);
            assert!(word <= 0x00FF_FFFF, "instruction must fit in 24 bits");
        }
        // The paper notes its largest compiled program stays around 30 static
        // instructions / under 100 bytes; ours stays within the same order.
        assert!(
            compiled.isa.instructions.len() < 128,
            "{} instructions",
            compiled.isa.instructions.len()
        );
        // Tasks reference valid dependences.
        for (index, task) in compiled.tasks.iter().enumerate() {
            for &dep in &task.depends_on {
                assert!(dep < index, "task {index} depends on later task {dep}");
            }
        }
    }
}

#[test]
fn layer_pipelining_never_hurts_and_recompute_saves_dram() {
    let network = conv_network();
    let sim = Simulator::new(HardwareConfig::default()).unwrap();
    let config = HardwareConfig::default();

    // Layer-level pipelining (forward extraction) never increases latency.
    let fwab = variants::fw_ab(&network, 0.1).unwrap();
    let pipelined = Compiler::default().compile(&network, &fwab).unwrap();
    let serial = Compiler::new(OptimizationFlags {
        layer_pipelining: false,
        ..OptimizationFlags::default()
    })
    .compile(&network, &fwab)
    .unwrap();
    assert!(
        sim.simulate(&network, &pipelined, 0.08)
            .unwrap()
            .total_cycles
            <= sim.simulate(&network, &serial, 0.08).unwrap().total_cycles
    );

    // The csps recompute optimisation eliminates the stored-partial-sum footprint.
    let bwcu = variants::bw_cu(&network, 0.5).unwrap();
    let recompute = Compiler::default().compile(&network, &bwcu).unwrap();
    let store = Compiler::new(OptimizationFlags {
        recompute_partial_sums: false,
        ..OptimizationFlags::default()
    })
    .compile(&network, &bwcu)
    .unwrap();
    let space_recompute = dram_space_report(&network, &recompute, &config, 0.08).unwrap();
    let space_store = dram_space_report(&network, &store, &config, 0.08).unwrap();
    assert_eq!(space_recompute.partial_sum_bytes, 0);
    assert!(space_store.partial_sum_bytes > 0);
    assert!(space_recompute.total_bytes() < space_store.total_bytes());
}

#[test]
fn area_overhead_is_single_digit_and_grows_with_provisioning() {
    let base = area_report(&HardwareConfig::default()).unwrap();
    assert!(base.overhead_percent() > 1.0 && base.overhead_percent() < 10.0);
    // More sort units and a bigger array change the overhead in the right direction.
    let more_sort = area_report(&HardwareConfig::default().with_path_constructor(16, 16)).unwrap();
    assert!(more_sort.added_mm2() > base.added_mm2());
    let bigger_array = area_report(&HardwareConfig::default().with_array(32, 32)).unwrap();
    assert!(bigger_array.baseline_mm2 > base.baseline_mm2);
}

#[test]
fn selective_extraction_reduces_cost_monotonically() {
    let network = conv_network();
    let sim = Simulator::new(HardwareConfig::default()).unwrap();
    let layers = network.weight_layer_indices().len();
    let mut previous = 0.0f64;
    for extracted in 1..=layers {
        let program = variants::bw_cu_early_termination(&network, 0.5, extracted).unwrap();
        let compiled = Compiler::default().compile(&network, &program).unwrap();
        let report = sim.simulate(&network, &compiled, 0.08).unwrap();
        assert!(
            report.latency_factor() >= previous - 1e-9,
            "latency must not drop when extracting more layers"
        );
        previous = report.latency_factor();
    }
}
