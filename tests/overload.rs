//! Overload-survival tests of the serving runtime: zero-overload parity
//! (deadline-aware serving is bit-for-bit identical to plain serving for
//! every `variants::*` escalation engine), degraded-mode parity against the
//! screen engine, admission-control shedding, deadline expiry in the queue,
//! and degradation engaging/disengaging across a burst.

mod common;

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ptolemy::obs::{Clock, Registry};
use ptolemy::prelude::*;

/// Engines and a request pool shared by every test: building engines needs
/// training + profiling, far too slow to repeat per test.
struct Fixtures {
    screen: Arc<DetectionEngine>,
    /// One calibrated escalation engine per `variants::*` constructor.
    escalations: Vec<(&'static str, Arc<DetectionEngine>)>,
    inputs: Vec<Tensor>,
    /// An uncertainty band spanning the middle half of the pool's screening
    /// scores, so the escalation/degradation paths are guaranteed traffic.
    band: (f32, f32),
}

/// A deadline loose enough that no test machine can miss it.
const GENEROUS: Duration = Duration::from_secs(600);

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (network, dataset) = common::trained_lenet(0x0D10);
        let network = Arc::new(network);
        let benign = common::benign_inputs(&dataset);
        let attack = Fgsm::new(0.25);
        let adversarial: Vec<Tensor> = dataset
            .test()
            .iter()
            .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
            .collect();
        let build = |program: DetectionProgram| {
            let class_paths = Profiler::new(program.clone())
                .profile(&network, dataset.train())
                .unwrap();
            Arc::new(
                DetectionEngine::builder(network.clone(), program, class_paths)
                    .calibrate(&benign, &adversarial)
                    .build()
                    .unwrap(),
            )
        };
        let screen = build(variants::fw_ab(&network, 0.05).unwrap());
        let escalations = vec![
            ("bw_cu", build(variants::bw_cu(&network, 0.5).unwrap())),
            ("bw_ab", build(variants::bw_ab(&network, 0.2).unwrap())),
            ("fw_ab", build(variants::fw_ab(&network, 0.1).unwrap())),
            ("fw_cu", build(variants::fw_cu(&network, 0.5).unwrap())),
            (
                "hybrid",
                build(variants::hybrid(&network, 0.2, 0.5).unwrap()),
            ),
            (
                "bw_cu_early_termination",
                build(variants::bw_cu_early_termination(&network, 0.5, 2).unwrap()),
            ),
            (
                "fw_ab_late_start",
                build(variants::fw_ab_late_start(&network, 0.05, 1).unwrap()),
            ),
        ];
        let mut inputs = benign;
        inputs.extend(adversarial);
        let mut scores: Vec<f32> = inputs
            .iter()
            .map(|x| screen.detect(x).unwrap().score)
            .collect();
        scores.sort_by(f32::total_cmp);
        let band = (scores[scores.len() / 4], scores[scores.len() * 3 / 4]);
        Fixtures {
            screen,
            escalations,
            inputs,
            band,
        }
    })
}

fn assert_same_detection(a: &Detection, b: &Detection, context: &str) {
    assert_eq!(a.is_adversary, b.is_adversary, "{context}");
    assert_eq!(a.predicted_class, b.predicted_class, "{context}");
    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{context}");
    assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(), "{context}");
}

/// Zero overload ⇒ the overload machinery is inert: for every `variants::*`
/// escalation engine, a server with admission control, degradation and
/// generous per-request deadlines serves bit-for-bit the verdicts the plain
/// server serves, with every shed/degrade/miss counter at zero.
#[test]
fn zero_overload_deadline_serving_matches_plain_serving_for_every_variant() {
    let fx = fixtures();
    for (name, escalate) in &fx.escalations {
        let plain = Server::builder(fx.screen.clone())
            .escalate(escalate.clone(), fx.band.0, fx.band.1)
            .workers(2)
            .start()
            .unwrap();
        let guarded = Server::builder(fx.screen.clone())
            .escalate(escalate.clone(), fx.band.0, fx.band.1)
            .workers(2)
            .queue_capacity(1024)
            .admission(AdmissionPolicy::default())
            .degradation(DegradePolicy {
                high_watermark: 1.0,
                low_watermark: 0.25,
            })
            .start()
            .unwrap();

        let plain_tickets: Vec<Ticket> = fx
            .inputs
            .iter()
            .map(|x| plain.submit(x.clone()).unwrap())
            .collect();
        let guarded_tickets: Vec<Ticket> = fx
            .inputs
            .iter()
            .map(|x| guarded.submit_with_deadline(x.clone(), GENEROUS).unwrap())
            .collect();

        for (a, b) in plain_tickets.into_iter().zip(guarded_tickets) {
            let a = a.wait().unwrap();
            let b = b.wait().unwrap();
            assert_eq!(a.tier, b.tier, "{name}: routing must not change");
            assert!(!b.degraded, "{name}: no degradation under zero overload");
            assert_same_detection(&a.detection, &b.detection, name);
        }

        let stats = guarded.shutdown();
        assert_eq!(stats.completed, fx.inputs.len() as u64, "{name}");
        assert_eq!(stats.shed_admission, 0, "{name}");
        assert_eq!(stats.shed_expired, 0, "{name}");
        assert_eq!(stats.deadline_misses, 0, "{name}");
        assert_eq!(stats.degraded_served, 0, "{name}");
        assert_eq!(stats.degrade_entered, 0, "{name}");
        plain.shutdown();
    }
}

/// A permanently-degraded server (high watermark 0: any non-empty queue
/// counts as pressure) serves every request the screen engine's direct
/// `detect` verdict, bit for bit — in-band requests flagged `degraded`, no
/// escalations at all.
#[test]
fn degraded_verdicts_match_the_screen_engine_bit_for_bit() {
    let fx = fixtures();
    let (_, escalate) = &fx.escalations[0];
    let server = Server::builder(fx.screen.clone())
        .escalate(escalate.clone(), fx.band.0, fx.band.1)
        .workers(2)
        .degradation(DegradePolicy {
            high_watermark: 0.0,
            low_watermark: 0.0,
        })
        .start()
        .unwrap();

    let tickets: Vec<Ticket> = fx
        .inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    let mut degraded = 0u64;
    for (input, ticket) in fx.inputs.iter().zip(tickets) {
        let served = ticket.wait().unwrap();
        let expected = fx.screen.detect(input).unwrap();
        assert_eq!(served.tier, Tier::Screen);
        assert_same_detection(&served.detection, &expected, "degraded parity");
        let in_band = (fx.band.0..=fx.band.1).contains(&expected.score);
        assert_eq!(
            served.degraded, in_band,
            "exactly the would-have-escalated requests are flagged"
        );
        degraded += u64::from(served.degraded);
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, fx.inputs.len() as u64);
    assert_eq!(stats.escalated, 0, "degradation sheds all tier-2 work");
    assert_eq!(stats.degraded_served, degraded);
    assert!(degraded > 0, "the pool must exercise the uncertainty band");
    assert!(stats.degrade_entered >= 1);
}

/// Once the service-time EMA is seeded, submissions whose deadline the
/// backlog estimate already dooms are shed at submission — no ticket, no
/// queue slot, typed [`ServeError::Shed`].
#[test]
fn admission_control_sheds_doomed_submissions_at_the_door() {
    let fx = fixtures();
    let server = Server::builder(fx.screen.clone())
        .workers(1)
        .admission(AdmissionPolicy::default())
        .start()
        .unwrap();

    // Seed the EMA: plain submissions are never shed, and their batches time
    // the screen pass.
    for input in &fx.inputs[..4] {
        server.submit(input.clone()).unwrap().wait().unwrap();
    }

    // A 1 ns deadline budget is unmeetable next to a real screen pass: every
    // submission must shed at admission, before consuming a queue slot.
    let mut shed = 0u64;
    for input in &fx.inputs[4..12] {
        match server.submit_with_deadline(input.clone(), Duration::from_nanos(1)) {
            Err(ServeError::Shed(ShedReason::Admission)) => shed += 1,
            other => panic!("expected an admission shed, got {other:?}"),
        }
    }
    assert_eq!(shed, 8);

    // Generous deadlines still pass admission on the same server.
    server
        .submit_with_deadline(fx.inputs[0].clone(), GENEROUS)
        .unwrap()
        .wait()
        .unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.shed_admission, 8);
    assert_eq!(stats.submitted, 5, "shed submissions never enqueue");
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.shed_expired, 0);
}

/// A queued request whose deadline passes before a worker reaches it is
/// dropped at batch formation with [`ShedReason::DeadlineExpired`] — pinned
/// on a manual clock so the expiry is deterministic.
#[test]
fn expired_requests_are_dropped_in_the_queue() {
    let fx = fixtures();
    let registry = Arc::new(Registry::with_clock("overload-test", Clock::manual()));
    let server = Server::builder(fx.screen.clone())
        .workers(1)
        .batch_policy(BatchPolicy {
            max_batch: 1,
            ..BatchPolicy::default()
        })
        .instrument(registry.clone())
        .start()
        .unwrap();

    // Two deadline-less requests keep the single worker busy with real wall
    // time; once the first is cut, the deadlined request queues (at the EDF
    // front) and its manual clock expires long before the worker returns.
    let busy: Vec<Ticket> = fx.inputs[..2]
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    while server.pending() > 1 {
        std::thread::yield_now();
    }
    let doomed = server
        .submit_with_deadline(fx.inputs[2].clone(), Duration::from_nanos(10))
        .unwrap();
    registry.clock().advance(1_000_000);

    for ticket in busy {
        ticket.wait().unwrap();
    }
    match doomed.wait() {
        Err(ServeError::Shed(ShedReason::DeadlineExpired)) => {}
        other => panic!("expected a deadline-expiry shed, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1, "the expired request resolves as failed");
}

/// Degradation engages while a burst keeps the queue above the high
/// watermark and disengages as the tail drains below the low watermark; the
/// entry/exit counters pair up and degraded verdicts stay screen-tier.
#[test]
fn degradation_engages_and_disengages_across_a_burst() {
    let fx = fixtures();
    let (_, escalate) = &fx.escalations[0];
    // One worker, one request per batch, a tiny queue: blocking submissions
    // pile the queue to capacity (entering degraded mode at depth >= 6), and
    // the tail drains one request per cut so some cut must observe depth <= 2
    // and recover.
    let server = Server::builder(fx.screen.clone())
        .escalate(escalate.clone(), fx.band.0, fx.band.1)
        .workers(1)
        .queue_capacity(8)
        .batch_policy(BatchPolicy {
            max_batch: 1,
            ..BatchPolicy::default()
        })
        .degradation(DegradePolicy {
            high_watermark: 0.75,
            low_watermark: 0.25,
        })
        .start()
        .unwrap();

    let burst: Vec<&Tensor> = fx.inputs.iter().cycle().take(48).collect();
    let tickets: Vec<Ticket> = burst
        .iter()
        .map(|x| server.submit((*x).clone()).unwrap())
        .collect();
    for (input, ticket) in burst.iter().zip(tickets) {
        let served = ticket.wait().unwrap();
        if served.degraded {
            // A degraded verdict is the screen engine's, bit for bit.
            assert_eq!(served.tier, Tier::Screen);
            let expected = fx.screen.detect(input).unwrap();
            assert_same_detection(&served.detection, &expected, "burst degraded");
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, 48);
    assert!(
        stats.degrade_entered >= 1,
        "the burst must push the queue past the high watermark"
    );
    assert!(
        stats.degrade_exited >= 1,
        "the drain must recover below the low watermark"
    );
    assert_eq!(
        stats.degrade_entered, stats.degrade_exited,
        "the final cut drains the queue, so every entry has a paired exit"
    );
    assert!(stats.degraded_served >= 1, "the burst must degrade traffic");
    assert_eq!(stats.shed_admission, 0, "no admission policy configured");
}
