//! Cross-crate property-based tests: invariants of the detection pipeline that must
//! hold for arbitrary inputs and parameter settings, not just the hand-picked ones
//! used elsewhere.

mod common;

use proptest::prelude::*;
use ptolemy::core::{path_similarity, variants, Profiler};
use ptolemy::forest::auc;
use ptolemy::nn::{zoo, Network};
use ptolemy::tensor::{Rng64, Tensor};

fn small_network() -> Network {
    zoo::lenet(3, 4, &mut Rng64::new(0xB0B)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Path similarity is always in [0, 1] and the extracted path is never empty for
    /// any finite input, for both extraction directions.
    #[test]
    fn path_similarity_is_bounded_for_arbitrary_inputs(
        seed in 0u64..1_000,
        theta in 0.1f32..0.95,
        scale in 0.1f32..3.0,
    ) {
        let network = small_network();
        let mut rng = Rng64::new(seed);
        let input = Tensor::from_vec(
            (0..3 * 8 * 8).map(|_| scale * rng.normal()).collect(),
            &[3, 8, 8],
        ).unwrap();

        for program in [
            variants::bw_cu(&network, theta).unwrap(),
            variants::fw_ab(&network, 0.05).unwrap(),
        ] {
            let profiler = Profiler::new(program.clone());
            let (predicted, path) = profiler.extract(&network, &input).unwrap();
            prop_assert!(predicted < 4);
            prop_assert!(path.count_ones() > 0, "extracted path must not be empty");
            prop_assert!(path.density() > 0.0 && path.density() <= 1.0);
            // Self-similarity of a path aggregated into a class path is exactly 1.
            let mut class_path = ptolemy::core::ClassPath::empty(
                predicted,
                &path.segments().iter().map(|s| (s.layer, s.mask.len())).collect::<Vec<_>>(),
            );
            class_path.aggregate(&path).unwrap();
            let s = path.similarity(&class_path).unwrap();
            prop_assert!((s - 1.0).abs() < 1e-6, "self-similarity {s}");
        }
    }

    /// The cumulative threshold is monotone: a larger theta never selects fewer
    /// important neurons.
    #[test]
    fn larger_theta_never_selects_fewer_neurons(seed in 0u64..500) {
        let network = small_network();
        let mut rng = Rng64::new(seed);
        let input = Tensor::from_vec(
            (0..3 * 8 * 8).map(|_| rng.next_f32()).collect(),
            &[3, 8, 8],
        ).unwrap();
        let mut previous = 0usize;
        for theta in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
            let program = variants::bw_cu(&network, theta).unwrap();
            let (_, path) = Profiler::new(program).extract(&network, &input).unwrap();
            let ones = path.count_ones();
            prop_assert!(ones >= previous, "theta {theta}: {ones} < {previous}");
            previous = ones;
        }
    }

    /// AUC is bounded, symmetric under score negation, and 0.5 for constant scores.
    #[test]
    fn auc_invariants(scores in proptest::collection::vec(0.0f32..1.0, 4..40)) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let value = auc(&scores, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&value));
        let flipped: Vec<f32> = scores.iter().map(|s| 1.0 - s).collect();
        let complement = auc(&flipped, &labels).unwrap();
        prop_assert!((value + complement - 1.0).abs() < 1e-5);
        let constant = vec![0.5f32; scores.len()];
        let chance = auc(&constant, &labels).unwrap();
        prop_assert!((chance - 0.5).abs() < 1e-6);
    }

    /// Early-termination programs never extract more layers than requested and the
    /// resulting detector still produces bounded similarities.
    #[test]
    fn early_termination_extracts_exactly_the_requested_layers(extracted in 1usize..=4) {
        let network = small_network();
        let program = variants::bw_cu_early_termination(&network, 0.5, extracted).unwrap();
        prop_assert_eq!(program.enabled_layers().len(), extracted);
        let mut rng = Rng64::new(extracted as u64);
        let input = Tensor::from_vec(
            (0..3 * 8 * 8).map(|_| rng.next_f32()).collect(),
            &[3, 8, 8],
        ).unwrap();
        let (_, path) = Profiler::new(program).extract(&network, &input).unwrap();
        prop_assert!(path.density() <= 1.0);
    }
}

#[test]
fn detector_scores_match_between_runs() {
    // Determinism: the same detector applied to the same input twice returns the
    // same verdict (no hidden randomness at inference time).
    let (network, dataset) = common::trained_lenet(0xDE7);
    let program = variants::fw_ab(&network, 0.05).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();
    let input = &dataset.test()[0].0;
    let a = path_similarity(&network, &program, &class_paths, input).unwrap();
    let b = path_similarity(&network, &program, &class_paths, input).unwrap();
    assert_eq!(a, b);
}
