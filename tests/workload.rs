//! Property tests of the `ptolemy_data::workload` generator: seeded
//! determinism, Poisson interarrival calibration, UUniFast utilization
//! splitting and Weibull service-size sampling.

use proptest::prelude::*;
use ptolemy::data::workload::{uunifast, Weibull};
use ptolemy::prelude::*;
use ptolemy::tensor::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same spec (including seed) ⇒ bit-identical trace; the generator is a
    /// pure function of its spec.
    #[test]
    fn same_seed_yields_identical_traces(
        seed in any::<u64>(),
        requests in 1usize..=512,
        classes in 1usize..=8,
        burst in 0u64..=5_000_000,
    ) {
        // burst == 0 doubles as "plain Poisson" so one property covers both
        // open-loop arrival processes.
        let spec = WorkloadSpec {
            seed,
            requests,
            classes,
            arrivals: if burst > 0 {
                Arrivals::Bursty { burstiness: 4.0, mean_burst_ns: burst }
            } else {
                Arrivals::Poisson
            },
            ..WorkloadSpec::default()
        };
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        prop_assert_eq!(a.events().len(), requests);
        prop_assert_eq!(a.utilizations().len(), classes);
        for (x, y) in a.events().iter().zip(b.events()) {
            prop_assert_eq!(x.arrival_ns, y.arrival_ns);
            prop_assert_eq!(x.class, y.class);
            prop_assert_eq!(x.service_scale.to_bits(), y.service_scale.to_bits());
            prop_assert_eq!(x.deadline_ns, y.deadline_ns);
        }
        for (x, y) in a.utilizations().iter().zip(b.utilizations()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(a.class_deadline_ns(), b.class_deadline_ns());
    }

    /// Poisson interarrivals average out to the rate the spec implies:
    /// `rate = utilization / mean_service`, so the mean gap over a long trace
    /// lands within a loose statistical tolerance of `1 / rate`.
    #[test]
    fn poisson_interarrival_mean_matches_the_offered_rate(
        seed in any::<u64>(),
        utilization in 0.2f64..2.0,
    ) {
        let requests = 4096usize;
        let mean_service_ns = 1_000_000u64;
        let spec = WorkloadSpec {
            seed,
            requests,
            total_utilization: utilization,
            mean_service_ns,
            arrivals: Arrivals::Poisson,
            ..WorkloadSpec::default()
        };
        let trace = spec.generate().unwrap();
        let expected_gap = mean_service_ns as f64 / utilization;
        let mean_gap = trace.duration_ns() as f64 / (requests - 1) as f64;
        // Exponential gaps: the sample mean's relative error over n draws
        // concentrates around 1/sqrt(n) ≈ 1.6%; 15% is ~9 sigma.
        prop_assert!(
            (mean_gap - expected_gap).abs() / expected_gap < 0.15,
            "mean gap {mean_gap} vs expected {expected_gap}"
        );
        // Arrivals are ordered.
        for pair in trace.events().windows(2) {
            prop_assert!(pair[0].arrival_ns <= pair[1].arrival_ns);
        }
    }

    /// UUniFast splits the requested total utilization exactly (up to float
    /// rounding) across n non-negative class shares.
    #[test]
    fn uunifast_shares_sum_to_the_target(
        seed in any::<u64>(),
        n in 1usize..=32,
        total in 0.05f64..4.0,
    ) {
        let mut rng = Rng64::new(seed);
        let shares = uunifast(n, total, &mut rng).unwrap();
        prop_assert_eq!(shares.len(), n);
        for &share in &shares {
            prop_assert!(share >= 0.0 && share.is_finite());
        }
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9 * total.max(1.0), "sum {sum} vs {total}");
    }

    /// Weibull samples are strictly positive, finite and seed-stable.
    #[test]
    fn weibull_samples_are_positive_and_seed_stable(
        seed in any::<u64>(),
        shape in 0.5f64..5.0,
    ) {
        let weibull = Weibull::with_unit_mean(shape).unwrap();
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..256 {
            let x = weibull.sample(&mut a);
            let y = weibull.sample(&mut b);
            prop_assert!(x > 0.0 && x.is_finite());
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Every generated event is internally consistent: class in range,
    /// positive service scale, and the class-indexed deadline budget.
    #[test]
    fn events_are_internally_consistent(
        seed in any::<u64>(),
        classes in 1usize..=6,
    ) {
        let spec = WorkloadSpec {
            seed,
            requests: 128,
            classes,
            ..WorkloadSpec::default()
        };
        let trace = spec.generate().unwrap();
        for event in trace.events() {
            prop_assert!(event.class < classes);
            prop_assert!(event.service_scale > 0.0);
            prop_assert_eq!(event.deadline_ns, trace.class_deadline_ns()[event.class]);
        }
    }
}

/// Different seeds change the trace (not a property test: one deliberate
/// counterexample pair is enough, and a random pair could in principle
/// collide).
#[test]
fn different_seeds_change_the_trace() {
    let a = WorkloadSpec {
        seed: 1,
        ..WorkloadSpec::default()
    }
    .generate()
    .unwrap();
    let b = WorkloadSpec {
        seed: 2,
        ..WorkloadSpec::default()
    }
    .generate()
    .unwrap();
    assert_ne!(a.events(), b.events());
}
