//! Integration tests of the `DetectionEngine` serving API: batch/single parity
//! across every canned program variant, fingerprint validation at build time,
//! threshold plumbing, and the accelerator backend's per-batch estimates.

mod common;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use ptolemy::accel::AccelBackend;
use ptolemy::core::engine::DEFAULT_THRESHOLD;
use ptolemy::core::{variants, DetectionEngine, Profiler};
use ptolemy::prelude::{Attack, Fgsm, Tensor};
use ptolemy::tensor::Rng64;

/// One trained victim plus a calibrated engine per `variants::*` constructor.
struct Fixture {
    engines: Vec<(&'static str, DetectionEngine)>,
    inputs: Vec<Tensor>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (network, dataset) = common::trained_lenet(0xE46);
        let network = Arc::new(network);
        let benign = common::benign_inputs(&dataset);
        let attack = Fgsm::new(0.25);
        let adversarial: Vec<Tensor> = common::correct_samples(&network, &dataset)
            .iter()
            .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
            .collect();

        // One program per canned constructor, covering both directions, both
        // threshold kinds, the hybrid mix and both selective-extraction modes.
        let programs = vec![
            ("bw_cu", variants::bw_cu(&network, 0.5).unwrap()),
            ("bw_ab", variants::bw_ab(&network, 0.2).unwrap()),
            ("fw_ab", variants::fw_ab(&network, 0.05).unwrap()),
            ("fw_cu", variants::fw_cu(&network, 0.5).unwrap()),
            ("hybrid", variants::hybrid(&network, 0.2, 0.5).unwrap()),
            (
                "bw_cu_early_termination",
                variants::bw_cu_early_termination(&network, 0.5, 2).unwrap(),
            ),
            (
                "fw_ab_late_start",
                variants::fw_ab_late_start(&network, 0.05, 1).unwrap(),
            ),
        ];
        let engines = programs
            .into_iter()
            .map(|(name, program)| {
                let class_paths = Profiler::new(program.clone())
                    .profile(&network, dataset.train())
                    .unwrap();
                let engine = DetectionEngine::builder(network.clone(), program, class_paths)
                    .calibrate(&benign, &adversarial)
                    .build()
                    .unwrap();
                (name, engine)
            })
            .collect();

        let mut inputs = benign;
        inputs.extend(adversarial);
        Fixture { engines, inputs }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `detect_batch(xs)?[i]` is bit-for-bit identical to `detect(&xs[i])?` for
    /// programs from every `variants::*` constructor, for batches mixing real
    /// test inputs with arbitrary finite tensors.
    #[test]
    fn detect_batch_matches_detect_bit_for_bit(
        seed in 0u64..10_000,
        batch_len in 1usize..8,
        scale in 0.1f32..2.0,
    ) {
        let fx = fixture();
        let mut rng = Rng64::new(seed);
        for (name, engine) in &fx.engines {
            let mut batch: Vec<Tensor> = (0..batch_len)
                .map(|_| fx.inputs[rng.below(fx.inputs.len())].clone())
                .collect();
            // One arbitrary (not dataset-drawn) input per batch.
            batch.push(Tensor::from_vec(
                (0..3 * 8 * 8).map(|_| scale * rng.normal()).collect(),
                &[3, 8, 8],
            ).unwrap());

            let batched = engine.detect_batch(&batch).unwrap();
            prop_assert_eq!(batched.len(), batch.len());
            for (input, b) in batch.iter().zip(&batched) {
                let single = engine.detect(input).unwrap();
                prop_assert!(
                    b.score.to_bits() == single.score.to_bits()
                        && b.similarity.to_bits() == single.similarity.to_bits()
                        && b.is_adversary == single.is_adversary
                        && b.predicted_class == single.predicted_class,
                    "variant {}: batch {:?} != single {:?}",
                    name,
                    b,
                    single
                );
            }
        }
    }

    /// The streaming path agrees with the batch path.
    #[test]
    fn detect_stream_matches_detect_batch(seed in 0u64..10_000, len in 1usize..6) {
        let fx = fixture();
        let mut rng = Rng64::new(seed);
        let (_, engine) = &fx.engines[rng.below(fx.engines.len())];
        let batch: Vec<Tensor> = (0..len)
            .map(|_| fx.inputs[rng.below(fx.inputs.len())].clone())
            .collect();
        let batched = engine.detect_batch(&batch).unwrap();
        let streamed: Vec<_> = engine
            .detect_stream(batch.clone())
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(batched, streamed);
    }
}

#[test]
fn builder_rejects_mismatched_fingerprints_at_construction() {
    let (network, dataset) = common::trained_lenet(0xF16);
    let network = Arc::new(network);
    let program = variants::bw_cu(&network, 0.5).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();

    // Same-constructor, different-parameter program: fingerprints differ.
    let other_theta = variants::bw_cu(&network, 0.7).unwrap();
    assert!(
        DetectionEngine::builder(network.clone(), other_theta, class_paths.clone())
            .build()
            .is_err()
    );
    // Different-direction program.
    let other_direction = variants::fw_ab(&network, 0.05).unwrap();
    assert!(
        DetectionEngine::builder(network.clone(), other_direction, class_paths.clone())
            .build()
            .is_err()
    );
    // The matching program builds fine.
    assert!(DetectionEngine::builder(network, program, class_paths)
        .build()
        .is_ok());
}

#[test]
fn builder_rejects_class_paths_from_a_different_network() {
    // Two networks with identical program fingerprints (same direction,
    // thresholds and weight-layer count) but different feature-map sizes: the
    // fingerprint alone cannot tell them apart, so the builder must compare
    // the canary-path layout structurally.
    let mut rng = ptolemy::tensor::Rng64::new(0x1A1);
    let small = ptolemy::nn::zoo::mlp_net(&[8], 2, &mut rng).unwrap();
    let large = Arc::new(ptolemy::nn::zoo::mlp_net(&[16], 2, &mut rng).unwrap());

    let small_program = variants::bw_cu(&small, 0.5).unwrap();
    let large_program = variants::bw_cu(&large, 0.5).unwrap();
    assert_eq!(small_program.fingerprint(), large_program.fingerprint());

    let samples: Vec<(Tensor, usize)> = (0..8)
        .map(|i| (Tensor::full(&[8], (i % 2) as f32), i % 2))
        .collect();
    let small_paths = Profiler::new(small_program)
        .profile(&small, &samples)
        .unwrap();

    let err = DetectionEngine::builder(large, large_program, small_paths).build();
    assert!(
        err.is_err(),
        "class paths profiled on a different network must be rejected at build"
    );
}

#[test]
fn accel_backend_prices_batches_on_the_same_call_path() {
    let (network, dataset) = common::trained_lenet(0xACC);
    let network = Arc::new(network);
    let benign = common::benign_inputs(&dataset);
    let attack = Fgsm::new(0.25);
    let adversarial: Vec<Tensor> = common::correct_samples(&network, &dataset)
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
        .collect();

    let program = variants::fw_ab(&network, 0.05).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();

    let software = DetectionEngine::builder(network.clone(), program.clone(), class_paths.clone())
        .calibrate(&benign, &adversarial)
        .build()
        .unwrap();
    let accel = DetectionEngine::builder(network, program, class_paths)
        .backend(Box::new(AccelBackend::new(
            ptolemy::accel::HardwareConfig::default(),
        )))
        .calibrate(&benign, &adversarial)
        .build()
        .unwrap();
    assert_eq!(accel.backend_name(), "accel");

    // The functional result is backend-independent...
    let (sw_verdicts, sw_estimate) = software.detect_batch_with_estimate(&benign).unwrap();
    let (hw_verdicts, hw_estimate) = accel.detect_batch_with_estimate(&benign).unwrap();
    assert_eq!(sw_verdicts, hw_verdicts);

    // ...but the estimates model different substrates: the accel backend returns
    // nonzero latency/energy for the batch, the software backend op counts.
    assert_eq!(hw_estimate.batch_size, benign.len());
    assert!(hw_estimate.latency_ms.unwrap() > 0.0);
    assert!(hw_estimate.energy_pj.unwrap() > 0.0);
    assert!(hw_estimate.latency_factor.unwrap() >= 1.0);
    assert!(sw_estimate.software.unwrap().inference_macs > 0);
    assert!(sw_estimate.latency_ms.is_none());
}

#[test]
fn threshold_knob_is_respected_end_to_end() {
    let (network, dataset) = common::trained_lenet(0x7BE);
    let network = Arc::new(network);
    let benign = common::benign_inputs(&dataset);
    let attack = Fgsm::new(0.25);
    let adversarial: Vec<Tensor> = common::correct_samples(&network, &dataset)
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
        .collect();
    let program = variants::fw_ab(&network, 0.05).unwrap();
    let class_paths = Profiler::new(program.clone())
        .profile(&network, dataset.train())
        .unwrap();

    for threshold in [0.0f32, 0.25, DEFAULT_THRESHOLD, 0.75, 1.0] {
        let engine =
            DetectionEngine::builder(network.clone(), program.clone(), class_paths.clone())
                .threshold(threshold)
                .calibrate(&benign, &adversarial)
                .build()
                .unwrap();
        assert_eq!(engine.threshold(), threshold);
        for verdict in engine.detect_batch(&benign).unwrap() {
            assert_eq!(verdict.is_adversary, verdict.score >= threshold);
        }
    }
}
