//! Property-based parity suite for the fused NCHW batch pipeline: across every
//! `variants::*` program and batch sizes 1..8, `forward_batch`,
//! `forward_trace_batch` and the fused `detect_batch` must be **bit-for-bit
//! identical** to the per-input path — each output column depends only on its
//! own input column, and every fused kernel preserves the per-input reduction
//! order.

mod common;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use ptolemy::core::{variants, DetectionEngine, Profiler};
use ptolemy::nn::Network;
use ptolemy::prelude::{Attack, Fgsm, Tensor};
use ptolemy::tensor::Rng64;

/// One trained victim plus a calibrated engine per `variants::*` constructor.
struct Fixture {
    network: Arc<Network>,
    engines: Vec<(&'static str, DetectionEngine)>,
    inputs: Vec<Tensor>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (network, dataset) = common::trained_lenet(0xBF5);
        let network = Arc::new(network);
        let benign = common::benign_inputs(&dataset);
        let attack = Fgsm::new(0.25);
        let adversarial: Vec<Tensor> = common::correct_samples(&network, &dataset)
            .iter()
            .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
            .collect();

        // Every canned program constructor: both directions, both threshold
        // kinds, the hybrid mix and both selective-extraction modes.
        let programs = vec![
            ("bw_cu", variants::bw_cu(&network, 0.5).unwrap()),
            ("bw_ab", variants::bw_ab(&network, 0.2).unwrap()),
            ("fw_ab", variants::fw_ab(&network, 0.05).unwrap()),
            ("fw_cu", variants::fw_cu(&network, 0.5).unwrap()),
            ("hybrid", variants::hybrid(&network, 0.2, 0.5).unwrap()),
            (
                "bw_cu_early_termination",
                variants::bw_cu_early_termination(&network, 0.5, 2).unwrap(),
            ),
            (
                "fw_ab_late_start",
                variants::fw_ab_late_start(&network, 0.05, 1).unwrap(),
            ),
        ];
        let engines = programs
            .into_iter()
            .map(|(name, program)| {
                let class_paths = Profiler::new(program.clone())
                    .profile(&network, dataset.train())
                    .unwrap();
                let engine = DetectionEngine::builder(network.clone(), program, class_paths)
                    .calibrate(&benign, &adversarial)
                    .build()
                    .unwrap();
                (name, engine)
            })
            .collect();

        let mut inputs = benign;
        inputs.extend(adversarial);
        Fixture {
            network,
            engines,
            inputs,
        }
    })
}

/// A batch of 1..=8 inputs mixing dataset draws with one arbitrary tensor.
fn batch(seed: u64, len: usize, scale: f32) -> Vec<Tensor> {
    let fx = fixture();
    let mut rng = Rng64::new(seed);
    let mut batch: Vec<Tensor> = (0..len.saturating_sub(1))
        .map(|_| fx.inputs[rng.below(fx.inputs.len())].clone())
        .collect();
    batch.push(
        Tensor::from_vec(
            (0..3 * 8 * 8).map(|_| scale * rng.normal()).collect(),
            &[3, 8, 8],
        )
        .unwrap(),
    );
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `forward_batch` row `b` is bit-for-bit `forward(&xs[b])`, and every
    /// layer activation of `forward_trace_batch(..).trace(b)` is bit-for-bit
    /// the per-input `forward_trace` — for batch sizes 1..8.
    #[test]
    fn fused_forward_and_trace_match_per_input_bit_for_bit(
        seed in 0u64..10_000,
        len in 1usize..=8,
        scale in 0.1f32..2.0,
    ) {
        let fx = fixture();
        let inputs = batch(seed, len, scale);

        let logits = fx.network.forward_batch(&inputs).unwrap();
        let batch_trace = fx.network.forward_trace_batch(&inputs).unwrap();
        prop_assert_eq!(batch_trace.batch_size(), inputs.len());
        prop_assert_eq!(batch_trace.num_layers(), fx.network.num_layers());

        for (b, input) in inputs.iter().enumerate() {
            let single_logits = fx.network.forward(input).unwrap();
            let fused_logits = logits.slice_batch(b).unwrap();
            prop_assert!(
                fused_logits
                    .as_slice()
                    .iter()
                    .zip(single_logits.as_slice())
                    .all(|(f, s)| f.to_bits() == s.to_bits()),
                "forward_batch row {} diverged from forward",
                b
            );

            let single = fx.network.forward_trace(input).unwrap();
            let sliced = batch_trace.trace(b).unwrap();
            for layer in 0..single.num_layers() {
                let outputs_match = sliced
                    .output(layer)
                    .as_slice()
                    .iter()
                    .zip(single.output(layer).as_slice())
                    .all(|(f, s)| f.to_bits() == s.to_bits());
                let inputs_match = sliced
                    .input(layer)
                    .as_slice()
                    .iter()
                    .zip(single.input(layer).as_slice())
                    .all(|(f, s)| f.to_bits() == s.to_bits());
                prop_assert!(
                    outputs_match && inputs_match,
                    "fused trace layer {} of sample {} diverged",
                    layer,
                    b
                );
            }
        }
    }

    /// Fused `detect_batch` (and `detect_batch_with_paths`) verdicts are
    /// bit-for-bit identical to per-input `detect` for every `variants::*`
    /// program and batch sizes 1..8.
    #[test]
    fn fused_detect_batch_matches_detect_bit_for_bit(
        seed in 0u64..10_000,
        len in 1usize..=8,
        scale in 0.1f32..2.0,
    ) {
        let fx = fixture();
        let inputs = batch(seed, len, scale);
        for (name, engine) in &fx.engines {
            let batched = engine.detect_batch(&inputs).unwrap();
            let with_paths = engine.detect_batch_with_paths(&inputs);
            prop_assert_eq!(batched.len(), inputs.len());
            prop_assert_eq!(with_paths.len(), inputs.len());
            for ((input, b), traced) in inputs.iter().zip(&batched).zip(with_paths) {
                let single = engine.detect(input).unwrap();
                prop_assert!(
                    b.score.to_bits() == single.score.to_bits()
                        && b.similarity.to_bits() == single.similarity.to_bits()
                        && b.is_adversary == single.is_adversary
                        && b.predicted_class == single.predicted_class,
                    "variant {}: fused batch {:?} != single {:?}",
                    name,
                    b,
                    single
                );
                // The with-paths surface agrees and its path reproduces the
                // per-input extraction (same prefix fingerprint at any depth).
                let (detection, path) = traced.unwrap();
                prop_assert_eq!(&detection, b);
                let (_, single_path) = engine.detect_with_path(input).unwrap();
                prop_assert_eq!(
                    path.prefix_fingerprint(usize::MAX),
                    single_path.prefix_fingerprint(usize::MAX)
                );
            }
        }
    }
}

/// One mis-shaped input fails alone through the fused batch surface; the rest
/// of the batch still serves.
#[test]
fn fused_batch_keeps_per_input_error_granularity() {
    let fx = fixture();
    let (_, engine) = &fx.engines[0];
    let mut inputs = batch(7, 3, 0.5);
    inputs.insert(1, Tensor::full(&[5], 0.1)); // wrong shape for the 3x8x8 net
    let results = engine.detect_batch_with_paths(&inputs);
    assert_eq!(results.len(), 4);
    assert!(results[1].is_err(), "mis-shaped input must fail alone");
    for (i, result) in results.iter().enumerate() {
        if i != 1 {
            let (detection, _) = result.as_ref().unwrap();
            let single = engine.detect(&inputs[i]).unwrap();
            assert_eq!(detection.score.to_bits(), single.score.to_bits());
        }
    }
    // The all-or-nothing surface reports the first error.
    assert!(engine.detect_batch(&inputs).is_err());
}
