//! Cross-crate tests of the serving runtime: bit-for-bit parity between served
//! and direct detection (including sharded tier-2 escalation vs the unsharded
//! engine, across every `variants::*` program and shard counts 1..4), cache
//! persistence across server restarts, and the property that every ticket
//! resolves exactly once with its own input's result under arbitrary
//! interleavings.

mod common;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use ptolemy::prelude::*;

/// Engines and a request pool shared by every test case: building engines
/// needs training + profiling, far too slow to repeat per property-test case.
struct Fixtures {
    network: Arc<Network>,
    screen: Arc<DetectionEngine>,
    expensive: Arc<DetectionEngine>,
    /// One calibrated escalation engine per `variants::*` constructor, used by
    /// the sharded-parity property.
    escalations: Vec<(&'static str, Arc<DetectionEngine>)>,
    inputs: Vec<Tensor>,
}

const BAND: (f32, f32) = (0.3, 0.7);

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (network, dataset) = common::trained_lenet(0x5E12);
        let network = Arc::new(network);
        let benign = common::benign_inputs(&dataset);
        let attack = Fgsm::new(0.25);
        let adversarial: Vec<Tensor> = dataset
            .test()
            .iter()
            .map(|(x, y)| attack.perturb(&network, x, *y).unwrap().input)
            .collect();
        let build = |program: DetectionProgram| {
            let class_paths = Profiler::new(program.clone())
                .profile(&network, dataset.train())
                .unwrap();
            Arc::new(
                DetectionEngine::builder(network.clone(), program, class_paths)
                    .calibrate(&benign, &adversarial)
                    .build()
                    .unwrap(),
            )
        };
        let screen = build(variants::fw_ab(&network, 0.05).unwrap());
        let expensive = build(variants::bw_cu(&network, 0.5).unwrap());
        // Every canned program constructor: both directions, both threshold
        // kinds, the hybrid mix and both selective-extraction modes — each a
        // potential tier-2 engine to shard.
        let escalations = vec![
            ("bw_cu", expensive.clone()),
            ("bw_ab", build(variants::bw_ab(&network, 0.2).unwrap())),
            ("fw_ab", build(variants::fw_ab(&network, 0.1).unwrap())),
            ("fw_cu", build(variants::fw_cu(&network, 0.5).unwrap())),
            (
                "hybrid",
                build(variants::hybrid(&network, 0.2, 0.5).unwrap()),
            ),
            (
                "bw_cu_early_termination",
                build(variants::bw_cu_early_termination(&network, 0.5, 2).unwrap()),
            ),
            (
                "fw_ab_late_start",
                build(variants::fw_ab_late_start(&network, 0.05, 1).unwrap()),
            ),
        ];
        let mut inputs = benign;
        inputs.extend(adversarial);
        Fixtures {
            network,
            screen,
            expensive,
            escalations,
            inputs,
        }
    })
}

/// Escalation shards built from `full`'s canary set, forest and threshold —
/// the recipe `ServerBuilder::escalate_sharded` documents.
fn shard_engines(fx: &Fixtures, full: &DetectionEngine, n: usize) -> Vec<Arc<DetectionEngine>> {
    full.class_paths()
        .shard(n)
        .unwrap()
        .into_iter()
        .map(|paths| {
            Arc::new(
                DetectionEngine::builder(fx.network.clone(), full.program().clone(), paths)
                    .forest(full.forest().expect("calibrated engine").clone())
                    .threshold(full.threshold())
                    .build()
                    .unwrap(),
            )
        })
        .collect()
}

/// The direct result of the engine the server's router picked for this tier.
fn direct(fx: &Fixtures, tier: Tier, input: &Tensor) -> Detection {
    match tier {
        Tier::Screen => fx.screen.detect(input).unwrap(),
        Tier::Escalated => fx.expensive.detect(input).unwrap(),
    }
}

/// Tentpole acceptance: with the cache disabled, served results are bit-for-bit
/// identical to calling `detect` directly on the engine each input was routed
/// to, and the routing decision itself is the screening score against the band.
#[test]
fn served_results_are_bit_for_bit_identical_to_direct_detection() {
    let fx = fixtures();
    let server = Server::builder(fx.screen.clone())
        .escalate(fx.expensive.clone(), BAND.0, BAND.1)
        .workers(4)
        .start()
        .unwrap();

    let tickets: Vec<Ticket> = fx
        .inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    for (input, ticket) in fx.inputs.iter().zip(tickets) {
        let served = ticket.wait().unwrap();
        assert!(!served.cache_hit, "cache is disabled");

        let screen_score = fx.screen.detect(input).unwrap().score;
        let expected_tier = if (BAND.0..=BAND.1).contains(&screen_score) {
            Tier::Escalated
        } else {
            Tier::Screen
        };
        assert_eq!(served.tier, expected_tier);

        let expected = direct(fx, served.tier, input);
        assert_eq!(served.detection.is_adversary, expected.is_adversary);
        assert_eq!(served.detection.predicted_class, expected.predicted_class);
        assert_eq!(served.detection.score.to_bits(), expected.score.to_bits());
        assert_eq!(
            served.detection.similarity.to_bits(),
            expected.similarity.to_bits()
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, fx.inputs.len() as u64);
    assert_eq!(
        stats.screen_served + stats.escalated,
        fx.inputs.len() as u64
    );
}

/// A duplicated workload served with the cache enabled reports hits, and the
/// cached verdicts replay the original ones.
#[test]
fn duplicated_workload_reports_cache_hits() {
    let fx = fixtures();
    let server = Server::builder(fx.screen.clone())
        .escalate(fx.expensive.clone(), BAND.0, BAND.1)
        .workers(2)
        .cache(CacheConfig {
            capacity: 256,
            prefix_segments: usize::MAX,
            persist_path: None,
        })
        .start()
        .unwrap();

    // First pass populates the cache; second pass replays the same inputs.
    let first: Vec<Served> = fx
        .inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.wait().unwrap())
        .collect();
    let second: Vec<Served> = fx
        .inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.wait().unwrap())
        .collect();

    for (a, b) in first.iter().zip(&second) {
        assert!(b.cache_hit, "second pass must be served from the cache");
        assert_eq!(a.detection, b.detection);
        assert_eq!(a.tier, b.tier);
    }
    let stats = server.shutdown();
    assert_eq!(stats.cache_hits, fx.inputs.len() as u64);
    assert!(stats.cache_hit_rate() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary request interleavings, worker counts and queue pressure,
    /// the server returns exactly one result per ticket, in submission order
    /// per submitter, equal to the direct `detect` result of the routed engine
    /// (cache disabled).
    #[test]
    fn every_ticket_resolves_to_its_own_direct_result(
        workers in 1usize..=4,
        submitters in 1usize..=3,
        per_submitter in 1usize..=10,
        queue_capacity in 2usize..=16,
        seed in 0u64..1_000,
    ) {
        let fx = fixtures();
        let server = Server::builder(fx.screen.clone())
            .escalate(fx.expensive.clone(), BAND.0, BAND.1)
            .workers(workers)
            .queue_capacity(queue_capacity)
            .start()
            .unwrap();

        // Each submitter thread draws its own pseudo-random request sequence,
        // submits in order, then waits on its tickets in submission order.
        let results: Vec<Vec<(usize, Served)>> = std::thread::scope(|scope| {
            let server = &server;
            let handles: Vec<_> = (0..submitters)
                .map(|s| {
                    scope.spawn(move || {
                        let mut state = seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let picks: Vec<usize> = (0..per_submitter)
                            .map(|_| {
                                state = state
                                    .wrapping_mul(6_364_136_223_846_793_005)
                                    .wrapping_add(1_442_695_040_888_963_407);
                                (state >> 33) as usize % fx.inputs.len()
                            })
                            .collect();
                        let tickets: Vec<Ticket> = picks
                            .iter()
                            .map(|&i| server.submit(fx.inputs[i].clone()).unwrap())
                            .collect();
                        picks
                            .into_iter()
                            .zip(tickets)
                            .map(|(i, ticket)| (i, ticket.wait().unwrap()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut total = 0u64;
        for per_thread in results {
            // Exactly one result per ticket.
            prop_assert_eq!(per_thread.len(), per_submitter);
            for (input_index, served) in per_thread {
                total += 1;
                prop_assert!(!served.cache_hit);
                let input = &fx.inputs[input_index];
                let expected = direct(fx, served.tier, input);
                prop_assert_eq!(served.detection, expected);
                prop_assert_eq!(
                    served.detection.score.to_bits(),
                    expected.score.to_bits()
                );
            }
        }

        let stats = server.shutdown();
        prop_assert_eq!(stats.submitted, total);
        prop_assert_eq!(stats.completed, total);
        prop_assert_eq!(stats.failed, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole acceptance: for every `variants::*` escalation program and
    /// shard counts 1..4, the union of shard verdicts is **bit-for-bit**
    /// identical to the unsharded escalation engine — whether the tier-2
    /// sliver runs inline or pipelined against the next batch's screening.
    #[test]
    fn sharded_escalation_is_bit_for_bit_identical_to_unsharded(
        variant in 0usize..7,
        shards in 1usize..=4,
        pipelined in any::<bool>(),
    ) {
        let fx = fixtures();
        let (_name, full) = &fx.escalations[variant % fx.escalations.len()];
        let shard_set = shard_engines(fx, full, shards);
        // Everything escalates, so every verdict exercises the shards.
        let unsharded = Server::builder(fx.screen.clone())
            .escalate(full.clone(), 0.0, 1.0)
            .workers(2)
            .pipeline_escalation(false)
            .start()
            .unwrap();
        let sharded = Server::builder(fx.screen.clone())
            .escalate_sharded(shard_set, 0.0, 1.0)
            .workers(2)
            .pipeline_escalation(pipelined)
            .start()
            .unwrap();

        let baseline: Vec<Ticket> = fx
            .inputs
            .iter()
            .map(|x| unsharded.submit(x.clone()).unwrap())
            .collect();
        let routed: Vec<Ticket> = fx
            .inputs
            .iter()
            .map(|x| sharded.submit(x.clone()).unwrap())
            .collect();
        for (a, b) in baseline.into_iter().zip(routed) {
            let a = a.wait().unwrap();
            let b = b.wait().unwrap();
            prop_assert_eq!(a.tier, b.tier);
            prop_assert_eq!(a.detection, b.detection);
            prop_assert_eq!(a.detection.score.to_bits(), b.detection.score.to_bits());
            prop_assert_eq!(
                a.detection.similarity.to_bits(),
                b.detection.similarity.to_bits()
            );
        }

        let reference = unsharded.shutdown();
        let stats = sharded.shutdown();
        prop_assert_eq!(reference.escalated, fx.inputs.len() as u64);
        prop_assert_eq!(stats.escalated, reference.escalated);
        prop_assert_eq!(stats.shard_escalations.len(), shards);
        prop_assert_eq!(
            stats.shard_escalations.iter().sum::<u64>(),
            stats.escalated
        );
        if !pipelined {
            prop_assert_eq!(stats.pipelined_batches, 0);
        }
        prop_assert_eq!(stats.failed, 0);
    }
}

fn persist_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ptolemy-serve-it-{}-{tag}.json",
        std::process::id()
    ))
}

/// Cache persistence: a restarted server (same engines, same config) replays
/// the warm server's hit/miss behaviour — every request that hit before the
/// restart hits again, with the bit-identical cached verdict.
#[test]
fn persisted_cache_replays_identical_hits_after_restart() {
    let fx = fixtures();
    let path = persist_file("roundtrip");
    let _ = std::fs::remove_file(&path);
    let config = CacheConfig {
        capacity: 256,
        prefix_segments: usize::MAX,
        persist_path: Some(path.clone()),
    };
    let build = || {
        Server::builder(fx.screen.clone())
            .escalate(fx.expensive.clone(), BAND.0, BAND.1)
            .workers(1)
            .cache(config.clone())
            .start()
            .unwrap()
    };

    // Run 1: a cold pass populates the cache, a second pass is served from it.
    // Waiting on each ticket keeps the hit/miss sequence deterministic.
    let server = build();
    for input in &fx.inputs {
        server.submit(input.clone()).unwrap().wait().unwrap();
    }
    let warm: Vec<Served> = fx
        .inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap().wait().unwrap())
        .collect();
    assert!(warm.iter().all(|served| served.cache_hit));
    let stats = server.shutdown();
    assert!(stats.cache_entries_persisted >= 1);
    assert_eq!(stats.cache_load_rejected, 0);

    // Run 2: the restarted server replays the warm hit/miss sequence.
    let server = build();
    let restarted = server.stats();
    assert_eq!(
        restarted.cache_entries_loaded,
        stats.cache_entries_persisted
    );
    assert_eq!(restarted.cache_load_rejected, 0);
    for (input, warm) in fx.inputs.iter().zip(&warm) {
        let replay = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(replay.cache_hit, warm.cache_hit);
        assert_eq!(replay.tier, warm.tier);
        assert_eq!(replay.detection, warm.detection);
        assert_eq!(
            replay.detection.score.to_bits(),
            warm.detection.score.to_bits()
        );
        assert_eq!(
            replay.detection.similarity.to_bits(),
            warm.detection.similarity.to_bits()
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.cache_hits, fx.inputs.len() as u64);
    assert_eq!(stats.cache_misses, 0);
    let _ = std::fs::remove_file(&path);
}

/// A cache file written under one engine fingerprint must not be replayed by a
/// server built around a different engine: the file is ignored, counted, and
/// serving starts cold.
#[test]
fn persisted_cache_written_by_another_engine_is_ignored() {
    let fx = fixtures();
    let path = persist_file("mismatch");
    let _ = std::fs::remove_file(&path);
    let config = CacheConfig {
        capacity: 64,
        prefix_segments: usize::MAX,
        persist_path: Some(path.clone()),
    };

    // Written by a server screening with the FwAb engine…
    let server = Server::builder(fx.screen.clone())
        .workers(1)
        .cache(config.clone())
        .start()
        .unwrap();
    server.submit(fx.inputs[0].clone()).unwrap().wait().unwrap();
    let stats = server.shutdown();
    assert!(stats.cache_entries_persisted >= 1);

    // …and offered to a server screening with the BwCu engine.
    let server = Server::builder(fx.expensive.clone())
        .workers(1)
        .cache(config)
        .start()
        .unwrap();
    let stats = server.stats();
    assert_eq!(stats.cache_load_rejected, 1);
    assert_eq!(stats.cache_entries_loaded, 0);
    let cold = server.submit(fx.inputs[0].clone()).unwrap().wait().unwrap();
    assert!(!cold.cache_hit, "a mismatched cache must not serve hits");
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
