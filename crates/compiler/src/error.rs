use std::fmt;

use ptolemy_core::CoreError;
use ptolemy_isa::IsaError;
use ptolemy_nn::NnError;

/// Error type for compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompilerError {
    /// The detection program cannot be compiled for this network.
    InvalidProgram(String),
    /// The detection framework reported an error.
    Core(CoreError),
    /// The DNN substrate reported an error.
    Nn(NnError),
    /// ISA generation failed.
    Isa(IsaError),
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::InvalidProgram(msg) => write!(f, "cannot compile program: {msg}"),
            CompilerError::Core(e) => write!(f, "detection framework error: {e}"),
            CompilerError::Nn(e) => write!(f, "dnn substrate error: {e}"),
            CompilerError::Isa(e) => write!(f, "isa error: {e}"),
        }
    }
}

impl std::error::Error for CompilerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompilerError::Core(e) => Some(e),
            CompilerError::Nn(e) => Some(e),
            CompilerError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CompilerError {
    fn from(e: CoreError) -> Self {
        CompilerError::Core(e)
    }
}

impl From<NnError> for CompilerError {
    fn from(e: NnError) -> Self {
        CompilerError::Nn(e)
    }
}

impl From<IsaError> for CompilerError {
    fn from(e: IsaError) -> Self {
        CompilerError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(!CompilerError::InvalidProgram("x".into())
            .to_string()
            .is_empty());
        let e: CompilerError = CoreError::InvalidInput("y".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CompilerError = NnError::EmptyDataset.into();
        assert!(e.to_string().contains("dnn"));
        let e: CompilerError = IsaError::InvalidRegister(99).into();
        assert!(e.to_string().contains("isa"));
    }
}
