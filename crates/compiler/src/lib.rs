//! # ptolemy-compiler
//!
//! Lowers a [`ptolemy_core::DetectionProgram`] plus a concrete network into the form
//! the Ptolemy hardware consumes (paper Sec. IV):
//!
//! * a **binary ISA program** (`ptolemy-isa` instructions) — per-layer `inf` /
//!   `infsp` instructions, per-layer extraction blocks built from `findneuron` /
//!   `findrf` / `sort` / `acum` / `genmasks` loops, and the final `cls`;
//! * a **static task schedule** with explicit dependence edges, which is where the
//!   compiler optimisations live:
//!   * **layer-level pipelining** — in forward extraction, layer *j*'s extraction
//!     depends only on layer *j*'s inference, so it can overlap with layer *j+1*'s
//!     inference (Fig. 7a);
//!   * **neuron-level pipelining** — sort and accumulate of different important
//!     neurons overlap inside one extraction block (Fig. 7b), modelled as a latency
//!     property of the extraction task;
//!   * **compute-for-memory trade-off** — with cumulative thresholds the compiler
//!     can emit `csps` recompute tasks instead of storing every partial sum during
//!     inference (Sec. IV-B).
//!
//! The cycle/energy consequences of the schedule are evaluated by `ptolemy-accel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod error;
mod schedule;

pub use codegen::generate_isa;
pub use error::CompilerError;
pub use schedule::{CompiledProgram, Compiler, HwTask, HwUnit, OptimizationFlags, ScheduledTask};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CompilerError>;
