//! ISA code generation: emits the per-layer instruction sequence the MCU dispatches.
//!
//! Register conventions (fixed by the code generator):
//!
//! | register | use |
//! |---|---|
//! | `r1` | receptive-field / sequence address |
//! | `r2` | current output-neuron position |
//! | `r3` | receptive-field size (from `.set`, via `mov`) |
//! | `r4` | current neuron address |
//! | `r5` | threshold |
//! | `r6` | sorted-sequence address |
//! | `r7` | current layer id |
//! | `r8` | input feature-map address |
//! | `r9` | weight address |
//! | `r10` | output feature-map address |
//! | `r11` | loop counter |
//! | `r12` | partial-sum / mask address |
//! | `r13` | class-path address |
//! | `r14` | activation-path address |
//! | `r15` | classification result |

use ptolemy_core::{DetectionProgram, ThresholdKind};
use ptolemy_isa::{Instruction, Program, Reg};

use crate::Result;

fn r(i: u8) -> Reg {
    // lint:allow(panic-in-worker): all call sites pass literal indices below 16
    Reg::new(i).expect("register indices below 16")
}

/// Generates the ISA program for a detection program (one `inf`/`infsp` per weight
/// layer, an extraction block per enabled layer, and a trailing `cls`).
///
/// # Errors
///
/// Currently infallible for valid [`DetectionProgram`]s; the `Result` is kept for
/// forward compatibility with immediate-range checks.
pub fn generate_isa(program: &DetectionProgram) -> Result<Program> {
    let mut code: Vec<Instruction> = Vec::new();
    let uses_cumulative = program.uses_cumulative_thresholds();

    for (ordinal, spec) in program.specs().iter().enumerate() {
        // Select the layer id.
        code.push(Instruction::Mov {
            dst: r(7),
            imm: ordinal as u16 & 0xFFF,
        });
        // Inference: `infsp` only when this layer's partial sums must be stored
        // (cumulative threshold without recompute is decided at schedule level; the
        // ISA always carries the more general `infsp` form for cumulative layers so
        // the FSM can choose).
        if spec.enabled && spec.threshold.is_cumulative() {
            code.push(Instruction::InfSp {
                input: r(8),
                weight: r(9),
                output: r(10),
                psum: r(12),
            });
        } else {
            code.push(Instruction::Inf {
                input: r(8),
                weight: r(9),
                output: r(10),
            });
        }
        if !spec.enabled {
            continue;
        }
        match spec.threshold {
            ThresholdKind::Cumulative { theta } => {
                // Scaled threshold constant and receptive-field size are compiler
                // constants loaded through `mov` (Listing 1).
                code.push(Instruction::Mov {
                    dst: r(5),
                    imm: ((theta * 1024.0) as u16).min(0xFFF),
                });
                code.push(Instruction::Mov {
                    dst: r(3),
                    imm: 0x200,
                });
                // Loop over important output neurons:
                //   findneuron -> findrf -> (csps) -> sort -> acum -> dec -> jne
                code.push(Instruction::FindNeuron {
                    layer: r(7),
                    position: r(2),
                    target: r(4),
                });
                code.push(Instruction::FindRf {
                    neuron: r(4),
                    rf: r(1),
                });
                code.push(Instruction::Csps {
                    output_neuron: r(4),
                    layer: r(7),
                    psum: r(12),
                });
                code.push(Instruction::Sort {
                    src: r(1),
                    len: r(3),
                    dst: r(6),
                });
                code.push(Instruction::Acum {
                    input: r(6),
                    output: r(1),
                    threshold: r(5),
                });
                code.push(Instruction::Dec { reg: r(11) });
                code.push(Instruction::Jne {
                    reg: r(11),
                    offset: -6,
                });
                code.push(Instruction::GenMasks {
                    input: r(1),
                    output: r(14),
                });
            }
            ThresholdKind::Absolute { phi } => {
                code.push(Instruction::Mov {
                    dst: r(5),
                    imm: ((phi * 1024.0) as u16).min(0xFFF),
                });
                // Masks were produced during inference; only mask aggregation runs.
                code.push(Instruction::GenMasks {
                    input: r(12),
                    output: r(14),
                });
            }
        }
    }

    code.push(Instruction::Cls {
        class_path: r(13),
        activation_path: r(14),
        result: r(15),
    });
    code.push(Instruction::Halt);

    // Programs must stay tiny (the paper quotes ~30 static instructions / <100 bytes
    // for its largest BwCu program); cumulative programs share one loop body per
    // layer, so this holds by construction, but keep an eye on it in debug builds.
    debug_assert!(
        !uses_cumulative || code.len() <= 16 * program.num_weight_layers() + 2,
        "generated program unexpectedly large"
    );
    Ok(Program { instructions: code })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_core::Direction;
    use ptolemy_isa::InstructionClass;

    #[test]
    fn cumulative_layers_emit_sort_loops() {
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let isa = generate_isa(&program).unwrap();
        let mnemonics: Vec<&str> = isa.instructions.iter().map(|i| i.mnemonic()).collect();
        assert!(mnemonics.contains(&"infsp"));
        assert!(mnemonics.contains(&"sort"));
        assert!(mnemonics.contains(&"acum"));
        assert!(mnemonics.contains(&"csps"));
        assert!(mnemonics.contains(&"jne"));
        assert_eq!(*mnemonics.last().unwrap(), "halt");
        assert_eq!(mnemonics[mnemonics.len() - 2], "cls");
    }

    #[test]
    fn absolute_layers_avoid_sorting_entirely() {
        let program = DetectionProgram::builder(Direction::Forward, 3)
            .all_layers(ThresholdKind::Absolute { phi: 0.3 })
            .build()
            .unwrap();
        let isa = generate_isa(&program).unwrap();
        let mnemonics: Vec<&str> = isa.instructions.iter().map(|i| i.mnemonic()).collect();
        assert!(!mnemonics.contains(&"sort"));
        assert!(!mnemonics.contains(&"acum"));
        assert!(!mnemonics.contains(&"infsp"));
        assert!(mnemonics.contains(&"genmasks"));
        // Three inference instructions, one per layer.
        assert_eq!(mnemonics.iter().filter(|m| **m == "inf").count(), 3);
    }

    #[test]
    fn disabled_layers_emit_plain_inference_only() {
        let program = DetectionProgram::builder(Direction::Forward, 4)
            .all_layers(ThresholdKind::Absolute { phi: 0.3 })
            .disable_before(3)
            .build()
            .unwrap();
        let isa = generate_isa(&program).unwrap();
        let genmasks = isa
            .instructions
            .iter()
            .filter(|i| i.mnemonic() == "genmasks")
            .count();
        assert_eq!(genmasks, 1);
    }

    #[test]
    fn programs_are_small_and_roundtrip_through_encoding() {
        let program = DetectionProgram::builder(Direction::Backward, 8)
            .all_layers(ThresholdKind::Cumulative { theta: 0.9 })
            .build()
            .unwrap();
        let isa = generate_isa(&program).unwrap();
        // Every instruction encodes and decodes.
        for inst in &isa.instructions {
            assert_eq!(
                ptolemy_isa::Instruction::decode(inst.encode()).unwrap(),
                *inst
            );
        }
        // Only valid instruction classes appear.
        assert!(isa
            .instructions
            .iter()
            .any(|i| i.class() == InstructionClass::PathConstruction));
    }
}
