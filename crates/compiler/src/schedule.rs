//! Task-level compilation: the static schedule with dependence edges.

use ptolemy_core::{DetectionProgram, Direction};
use ptolemy_isa::Program;
use ptolemy_nn::Network;

use crate::{codegen::generate_isa, CompilerError, Result};

/// Compiler optimisation switches (all enabled by default, matching the paper's
/// evaluation where "all the compiler optimizations are enabled when applicable").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationFlags {
    /// Overlap layer *j*'s extraction with layer *j+1*'s inference (forward only).
    pub layer_pipelining: bool,
    /// Overlap sort and accumulate of different important neurons within a layer.
    pub neuron_pipelining: bool,
    /// Re-compute partial sums of important receptive fields (`csps`) instead of
    /// storing every partial sum during inference (cumulative thresholds only).
    pub recompute_partial_sums: bool,
}

impl Default for OptimizationFlags {
    fn default() -> Self {
        OptimizationFlags {
            layer_pipelining: true,
            neuron_pipelining: true,
            recompute_partial_sums: true,
        }
    }
}

impl OptimizationFlags {
    /// All optimisations disabled (the unoptimised baseline for ablation benches).
    pub fn none() -> Self {
        OptimizationFlags {
            layer_pipelining: false,
            neuron_pipelining: false,
            recompute_partial_sums: false,
        }
    }
}

/// Hardware unit a task executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwUnit {
    /// The systolic MAC array.
    PeArray,
    /// The path constructor (sort units, merge tree, accumulator, mask generator).
    PathConstructor,
    /// The micro-controller running dispatch and the random forest.
    Mcu,
}

/// A coarse-grained hardware task (one CISC instruction's worth of work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwTask {
    /// Run one weight layer's inference on the PE array (`inf` / `infsp`).
    Inference {
        /// Network layer index.
        layer: usize,
        /// Whether every partial sum is written to memory (`infsp`).
        store_partial_sums: bool,
    },
    /// Re-compute the partial sums of the important receptive fields of one layer
    /// (`csps`, first PE row only).
    RecomputePartialSums {
        /// Network layer index.
        layer: usize,
    },
    /// Extract important neurons and generate the mask for one layer
    /// (`findneuron`/`findrf`/`sort`/`acum`/`genmasks` block).
    Extract {
        /// Network layer index.
        layer: usize,
        /// `true` for cumulative thresholds (sorting + accumulation needed).
        cumulative: bool,
        /// `true` for forward extraction.
        forward: bool,
    },
    /// Compute path similarity and run the random forest (`cls` + MCU work).
    Classify,
}

impl HwTask {
    /// The unit this task occupies.
    pub fn unit(&self) -> HwUnit {
        match self {
            HwTask::Inference { .. } | HwTask::RecomputePartialSums { .. } => HwUnit::PeArray,
            HwTask::Extract { .. } => HwUnit::PathConstructor,
            HwTask::Classify => HwUnit::Mcu,
        }
    }
}

/// A task with its dependence edges (indices into the task list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTask {
    /// The work to perform.
    pub task: HwTask,
    /// Indices of tasks that must finish before this one starts.
    pub depends_on: Vec<usize>,
}

/// The compiler output: ISA program + static task schedule.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Coarse-grained tasks with dependence edges (what the accelerator model runs).
    pub tasks: Vec<ScheduledTask>,
    /// The binary ISA program (what the MCU would dispatch).
    pub isa: Program,
    /// Optimisations that were applied.
    pub optimizations: OptimizationFlags,
    /// Extraction direction of the source program.
    pub direction: Direction,
}

impl CompiledProgram {
    /// Number of static instructions (the paper reports ≈ 30 for its largest
    /// program).
    pub fn static_instruction_count(&self) -> usize {
        self.isa.instructions.len()
    }

    /// Compiled program size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.isa.size_bytes()
    }

    /// Indices of inference tasks, in task order.
    pub fn inference_tasks(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.task, HwTask::Inference { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The Ptolemy compiler.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    optimizations: OptimizationFlags,
}

impl Compiler {
    /// Creates a compiler with explicit optimisation flags.
    pub fn new(optimizations: OptimizationFlags) -> Self {
        Compiler { optimizations }
    }

    /// The optimisation flags this compiler applies.
    pub fn optimizations(&self) -> OptimizationFlags {
        self.optimizations
    }

    /// Compiles a detection program for a concrete network.
    ///
    /// # Errors
    ///
    /// Returns [`CompilerError::InvalidProgram`] if the program does not describe
    /// the network's weight layers.
    pub fn compile(
        &self,
        network: &Network,
        program: &DetectionProgram,
    ) -> Result<CompiledProgram> {
        let weight_layers = network.weight_layer_indices();
        if weight_layers.len() != program.num_weight_layers() {
            return Err(CompilerError::InvalidProgram(format!(
                "program describes {} weight layers, network has {}",
                program.num_weight_layers(),
                weight_layers.len()
            )));
        }
        let tasks = match program.direction() {
            Direction::Forward => self.schedule_forward(&weight_layers, program),
            Direction::Backward => self.schedule_backward(&weight_layers, program),
        };
        let isa = generate_isa(program)?;
        Ok(CompiledProgram {
            tasks,
            isa,
            optimizations: self.optimizations,
            direction: program.direction(),
        })
    }

    fn schedule_forward(
        &self,
        weight_layers: &[usize],
        program: &DetectionProgram,
    ) -> Vec<ScheduledTask> {
        let mut tasks: Vec<ScheduledTask> = Vec::new();
        let mut prev_inference: Option<usize> = None;
        let mut prev_program_order: Option<usize> = None;
        let mut last_extract: Option<usize> = None;
        for (ordinal, &layer) in weight_layers.iter().enumerate() {
            let spec = program.specs()[ordinal];
            // Forward extraction with absolute thresholds never needs stored partial
            // sums (masks are produced inside the MAC units); cumulative forward
            // extraction needs partial sums unless recompute is enabled.
            let store = spec.enabled
                && spec.threshold.is_cumulative()
                && !self.optimizations.recompute_partial_sums;
            let inf_deps: Vec<usize> = match (
                self.optimizations.layer_pipelining,
                prev_inference,
                prev_program_order,
            ) {
                // Pipelined: inference only waits for the previous inference.
                (true, Some(p), _) => vec![p],
                // Unpipelined: strict program order (inference waits for the
                // previous layer's extraction too).
                (false, _, Some(p)) => vec![p],
                _ => Vec::new(),
            };
            tasks.push(ScheduledTask {
                task: HwTask::Inference {
                    layer,
                    store_partial_sums: store,
                },
                depends_on: inf_deps,
            });
            let inf_idx = tasks.len() - 1;
            prev_inference = Some(inf_idx);
            prev_program_order = Some(inf_idx);
            if spec.enabled {
                if spec.threshold.is_cumulative() && self.optimizations.recompute_partial_sums {
                    tasks.push(ScheduledTask {
                        task: HwTask::RecomputePartialSums { layer },
                        depends_on: vec![inf_idx],
                    });
                }
                let extract_deps = vec![tasks.len() - 1];
                tasks.push(ScheduledTask {
                    task: HwTask::Extract {
                        layer,
                        cumulative: spec.threshold.is_cumulative(),
                        forward: true,
                    },
                    depends_on: extract_deps,
                });
                last_extract = Some(tasks.len() - 1);
                prev_program_order = Some(tasks.len() - 1);
            }
        }
        let classify_deps = last_extract
            .or(prev_inference)
            .map(|i| vec![i])
            .unwrap_or_default();
        tasks.push(ScheduledTask {
            task: HwTask::Classify,
            depends_on: classify_deps,
        });
        tasks
    }

    fn schedule_backward(
        &self,
        weight_layers: &[usize],
        program: &DetectionProgram,
    ) -> Vec<ScheduledTask> {
        let mut tasks: Vec<ScheduledTask> = Vec::new();
        // Inference of every layer first (backward extraction can only start after
        // the prediction is known).
        let mut prev: Option<usize> = None;
        for (ordinal, &layer) in weight_layers.iter().enumerate() {
            let spec = program.specs()[ordinal];
            let store = spec.enabled
                && spec.threshold.is_cumulative()
                && !self.optimizations.recompute_partial_sums;
            tasks.push(ScheduledTask {
                task: HwTask::Inference {
                    layer,
                    store_partial_sums: store,
                },
                depends_on: prev.map(|p| vec![p]).unwrap_or_default(),
            });
            prev = Some(tasks.len() - 1);
        }
        // DetectionProgram::build rejects zero weight layers, and the mismatch
        // check above pins weight_layers to the program's layer count.
        // lint:allow(panic-in-worker): weight_layers is structurally non-empty
        let last_inference = prev.expect("network has at least one weight layer");
        // Extraction walks the enabled layers from last to first, each step depending
        // on the previous one (the important-neuron sets chain backwards).
        let mut prev_extract: Option<usize> = None;
        for (ordinal, &layer) in weight_layers.iter().enumerate().rev() {
            let spec = program.specs()[ordinal];
            if !spec.enabled {
                continue;
            }
            let mut deps = vec![last_inference];
            if let Some(p) = prev_extract {
                deps.push(p);
            }
            if spec.threshold.is_cumulative() && self.optimizations.recompute_partial_sums {
                tasks.push(ScheduledTask {
                    task: HwTask::RecomputePartialSums { layer },
                    depends_on: deps.clone(),
                });
                deps = vec![tasks.len() - 1];
            }
            tasks.push(ScheduledTask {
                task: HwTask::Extract {
                    layer,
                    cumulative: spec.threshold.is_cumulative(),
                    forward: false,
                },
                depends_on: deps,
            });
            prev_extract = Some(tasks.len() - 1);
        }
        tasks.push(ScheduledTask {
            task: HwTask::Classify,
            depends_on: prev_extract
                .or(Some(last_inference))
                .map(|i| vec![i])
                .unwrap_or_default(),
        });
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_core::variants;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    fn net() -> Network {
        zoo::conv_net(10, &mut Rng64::new(0)).unwrap()
    }

    #[test]
    fn forward_pipelined_extraction_depends_only_on_own_inference() {
        let net = net();
        let program = variants::fw_ab(&net, 0.3).unwrap();
        let compiled = Compiler::default().compile(&net, &program).unwrap();
        assert_eq!(compiled.direction, Direction::Forward);
        // Every extract task depends on exactly one task, which is an inference of
        // the same layer.
        for st in &compiled.tasks {
            if let HwTask::Extract { layer, forward, .. } = st.task {
                assert!(forward);
                assert_eq!(st.depends_on.len(), 1);
                match compiled.tasks[st.depends_on[0]].task {
                    HwTask::Inference { layer: l, .. } => assert_eq!(l, layer),
                    ref other => panic!("unexpected dependency {other:?}"),
                }
            }
        }
        // Classify is last.
        assert!(matches!(
            compiled.tasks.last().unwrap().task,
            HwTask::Classify
        ));
    }

    #[test]
    fn unpipelined_forward_serialises_program_order() {
        let net = net();
        let program = variants::fw_ab(&net, 0.3).unwrap();
        let compiled = Compiler::new(OptimizationFlags::none())
            .compile(&net, &program)
            .unwrap();
        // Without layer pipelining every inference (except the first) depends on the
        // task immediately preceding it in program order.
        for (i, st) in compiled.tasks.iter().enumerate() {
            if i == 0 {
                continue;
            }
            if matches!(st.task, HwTask::Inference { .. }) {
                assert_eq!(st.depends_on, vec![i - 1]);
            }
        }
    }

    #[test]
    fn backward_extraction_waits_for_all_inference_and_chains() {
        let net = net();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let compiled = Compiler::default().compile(&net, &program).unwrap();
        let inference_count = compiled.inference_tasks().len();
        assert_eq!(inference_count, 8);
        let last_inference = *compiled.inference_tasks().last().unwrap();
        let extracts: Vec<usize> = compiled
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.task, HwTask::Extract { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(extracts.len(), 8);
        // The first extraction (last layer) transitively depends on the last
        // inference; with recompute enabled the direct dependency is a csps task.
        let first_extract = &compiled.tasks[extracts[0]];
        let dep = first_extract.depends_on[0];
        let dep_ok =
            dep == last_inference || compiled.tasks[dep].depends_on.contains(&last_inference);
        assert!(dep_ok);
        // With recompute enabled there are csps tasks and no stored partial sums.
        assert!(compiled
            .tasks
            .iter()
            .any(|t| matches!(t.task, HwTask::RecomputePartialSums { .. })));
        assert!(compiled.tasks.iter().all(|t| !matches!(
            t.task,
            HwTask::Inference {
                store_partial_sums: true,
                ..
            }
        )));
    }

    #[test]
    fn disabling_recompute_stores_partial_sums_instead() {
        let net = net();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let compiled = Compiler::new(OptimizationFlags {
            recompute_partial_sums: false,
            ..OptimizationFlags::default()
        })
        .compile(&net, &program)
        .unwrap();
        assert!(compiled.tasks.iter().any(|t| matches!(
            t.task,
            HwTask::Inference {
                store_partial_sums: true,
                ..
            }
        )));
        assert!(!compiled
            .tasks
            .iter()
            .any(|t| matches!(t.task, HwTask::RecomputePartialSums { .. })));
    }

    #[test]
    fn absolute_threshold_programs_never_touch_partial_sums() {
        let net = net();
        let program = variants::bw_ab(&net, 0.3).unwrap();
        let compiled = Compiler::default().compile(&net, &program).unwrap();
        assert!(!compiled.tasks.iter().any(|t| matches!(
            t.task,
            HwTask::RecomputePartialSums { .. }
                | HwTask::Inference {
                    store_partial_sums: true,
                    ..
                }
        )));
    }

    #[test]
    fn compiled_isa_is_small_and_units_are_assigned() {
        let net = net();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let compiled = Compiler::default().compile(&net, &program).unwrap();
        assert!(compiled.static_instruction_count() > 8);
        // The generator unrolls the per-layer extraction blocks (the paper's ~30
        // instruction figure uses a layer loop); even unrolled the program stays
        // well below a kilobyte of instruction storage.
        assert!(compiled.size_bytes() < 512);
        for st in &compiled.tasks {
            match st.task {
                HwTask::Inference { .. } | HwTask::RecomputePartialSums { .. } => {
                    assert_eq!(st.task.unit(), HwUnit::PeArray)
                }
                HwTask::Extract { .. } => assert_eq!(st.task.unit(), HwUnit::PathConstructor),
                HwTask::Classify => assert_eq!(st.task.unit(), HwUnit::Mcu),
            }
        }
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let net = net();
        let other = zoo::lenet(3, 10, &mut Rng64::new(1)).unwrap();
        let program = variants::bw_cu(&other, 0.5).unwrap();
        assert!(Compiler::default().compile(&net, &program).is_err());
        assert!(Compiler::default().optimizations().layer_pipelining);
    }
}
