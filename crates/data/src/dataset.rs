use ptolemy_tensor::{Rng64, Tensor};

use crate::{DataError, Result};

/// Configuration for [`SyntheticDataset::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Human-readable dataset name (propagated into experiment reports).
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Per-sample input shape, e.g. `[3, 16, 16]`.
    pub shape: Vec<usize>,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Standard deviation of the per-sample perturbation around the class prototype.
    pub noise: f32,
    /// Seed controlling prototypes and perturbations.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            name: "synthetic".into(),
            num_classes: 10,
            shape: vec![3, 8, 8],
            train_per_class: 50,
            test_per_class: 10,
            noise: 0.15,
            seed: 7,
        }
    }
}

/// A seeded synthetic classification dataset with class-prototype structure.
///
/// See the crate docs for why this is an adequate stand-in for the natural-image
/// datasets of the paper.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    prototypes: Vec<Tensor>,
    train: Vec<(Tensor, usize)>,
    test: Vec<(Tensor, usize)>,
}

impl SyntheticDataset {
    /// Generates a dataset from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero classes, an empty shape, or a
    /// negative noise level.
    pub fn generate(config: DatasetConfig) -> Result<Self> {
        if config.num_classes == 0 {
            return Err(DataError::InvalidConfig(
                "num_classes must be non-zero".into(),
            ));
        }
        if config.shape.is_empty() || config.shape.iter().product::<usize>() == 0 {
            return Err(DataError::InvalidConfig("shape must be non-empty".into()));
        }
        if config.noise < 0.0 {
            return Err(DataError::InvalidConfig(
                "noise must be non-negative".into(),
            ));
        }
        let mut rng = Rng64::new(config.seed);
        let n: usize = config.shape.iter().product();

        // Class prototypes: smooth random images in [0, 1] that are well separated.
        let mut prototypes = Vec::with_capacity(config.num_classes);
        for _ in 0..config.num_classes {
            let base: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            prototypes.push(Tensor::from_vec(
                smooth(&base, &config.shape),
                &config.shape,
            )?);
        }

        let make_split = |per_class: usize, rng: &mut Rng64| -> Result<Vec<(Tensor, usize)>> {
            let mut samples = Vec::with_capacity(per_class * config.num_classes);
            for (class, proto) in prototypes.iter().enumerate() {
                for _ in 0..per_class {
                    let data: Vec<f32> = proto
                        .as_slice()
                        .iter()
                        .map(|v| (v + config.noise * rng.normal()).clamp(0.0, 1.0))
                        .collect();
                    samples.push((Tensor::from_vec(data, &config.shape)?, class));
                }
            }
            // Interleave classes so mini-batches are class balanced even without
            // shuffling.
            rng.shuffle(&mut samples);
            Ok(samples)
        };

        let train = make_split(config.train_per_class, &mut rng)?;
        let test = make_split(config.test_per_class, &mut rng)?;
        Ok(SyntheticDataset {
            config,
            prototypes,
            train,
            test,
        })
    }

    /// "ImageNet-class" preset: 100 classes of `[3, 16, 16]` images (a 100-class
    /// subsample standing in for ImageNet's 1000 classes, matching the paper's use
    /// of class subsamples in Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticDataset::generate`] errors.
    pub fn synth_imagenet(
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Result<Self> {
        SyntheticDataset::generate(DatasetConfig {
            name: "synth-imagenet".into(),
            num_classes: 100,
            shape: vec![3, 16, 16],
            train_per_class,
            test_per_class,
            noise: 0.12,
            seed,
        })
    }

    /// Like [`SyntheticDataset::synth_imagenet`] but with a configurable class count
    /// (the experiment harnesses profile 10-class subsets exactly as Fig. 5a does).
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticDataset::generate`] errors.
    pub fn synth_imagenet_subset(
        num_classes: usize,
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Result<Self> {
        SyntheticDataset::generate(DatasetConfig {
            name: format!("synth-imagenet-{num_classes}"),
            num_classes,
            shape: vec![3, 16, 16],
            train_per_class,
            test_per_class,
            noise: 0.12,
            seed,
        })
    }

    /// "CIFAR-10-class" preset: 10 visually similar classes of `[3, 8, 8]` images.
    ///
    /// CIFAR classes are more alike than ImageNet classes (the paper uses this to
    /// explain the higher inter-class path similarity in Fig. 5b), so this preset
    /// uses a larger noise level and prototypes drawn from a narrower distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticDataset::generate`] errors.
    pub fn synth_cifar10(train_per_class: usize, test_per_class: usize, seed: u64) -> Result<Self> {
        let mut ds = SyntheticDataset::generate(DatasetConfig {
            name: "synth-cifar10".into(),
            num_classes: 10,
            shape: vec![3, 8, 8],
            train_per_class,
            test_per_class,
            noise: 0.18,
            seed,
        })?;
        ds.squeeze_prototypes(0.55, seed)?;
        Ok(ds)
    }

    /// "CIFAR-100-class" preset: 100 classes of `[3, 8, 8]` images.
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticDataset::generate`] errors.
    pub fn synth_cifar100(
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Result<Self> {
        let mut ds = SyntheticDataset::generate(DatasetConfig {
            name: "synth-cifar100".into(),
            num_classes: 100,
            shape: vec![3, 8, 8],
            train_per_class,
            test_per_class,
            noise: 0.15,
            seed,
        })?;
        ds.squeeze_prototypes(0.6, seed)?;
        Ok(ds)
    }

    /// Assembles a dataset from pre-built prototypes and splits (used by the
    /// procedural generators such as [`crate::traffic_signs`]).
    pub(crate) fn from_parts(
        config: DatasetConfig,
        prototypes: Vec<Tensor>,
        train: Vec<(Tensor, usize)>,
        test: Vec<(Tensor, usize)>,
    ) -> Result<Self> {
        if prototypes.len() != config.num_classes {
            return Err(DataError::InvalidConfig(format!(
                "{} prototypes provided for {} classes",
                prototypes.len(),
                config.num_classes
            )));
        }
        Ok(SyntheticDataset {
            config,
            prototypes,
            train,
            test,
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.config.shape
    }

    /// Training split as `(input, label)` pairs.
    pub fn train(&self) -> &[(Tensor, usize)] {
        &self.train
    }

    /// Test split as `(input, label)` pairs.
    pub fn test(&self) -> &[(Tensor, usize)] {
        &self.test
    }

    /// Prototype image of a class.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SampleOutOfRange`] if `class` is out of range.
    pub fn prototype(&self, class: usize) -> Result<&Tensor> {
        self.prototypes
            .get(class)
            .ok_or(DataError::SampleOutOfRange {
                index: class,
                len: self.prototypes.len(),
            })
    }

    /// The configuration that generated this dataset.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Training samples of one class only.
    pub fn train_of_class(&self, class: usize) -> Vec<&(Tensor, usize)> {
        self.train.iter().filter(|(_, y)| *y == class).collect()
    }

    /// Pulls the class prototypes towards their common mean by `factor` (0 = no
    /// change, 1 = identical prototypes) and regenerates both splits.  Used by the
    /// CIFAR-style presets where classes are deliberately similar.
    fn squeeze_prototypes(&mut self, factor: f32, seed: u64) -> Result<()> {
        let n: usize = self.config.shape.iter().product();
        let mut mean = vec![0.0f32; n];
        for proto in &self.prototypes {
            for (m, v) in mean.iter_mut().zip(proto.as_slice()) {
                *m += v / self.prototypes.len() as f32;
            }
        }
        for proto in &mut self.prototypes {
            let squeezed: Vec<f32> = proto
                .as_slice()
                .iter()
                .zip(&mean)
                .map(|(v, m)| v + factor * (m - v))
                .collect();
            *proto = Tensor::from_vec(squeezed, &self.config.shape)?;
        }
        let mut rng = Rng64::new(seed ^ 0xD1CE);
        let regenerate = |per_class: usize, rng: &mut Rng64| -> Result<Vec<(Tensor, usize)>> {
            let mut samples = Vec::with_capacity(per_class * self.config.num_classes);
            for (class, proto) in self.prototypes.iter().enumerate() {
                for _ in 0..per_class {
                    let data: Vec<f32> = proto
                        .as_slice()
                        .iter()
                        .map(|v| (v + self.config.noise * rng.normal()).clamp(0.0, 1.0))
                        .collect();
                    samples.push((Tensor::from_vec(data, &self.config.shape)?, class));
                }
            }
            rng.shuffle(&mut samples);
            Ok(samples)
        };
        self.train = regenerate(self.config.train_per_class, &mut rng)?;
        self.test = regenerate(self.config.test_per_class, &mut rng)?;
        Ok(())
    }
}

/// Simple separable box blur over the spatial dimensions of a CHW (or flat) image;
/// gives prototypes spatial structure so convolutional models find them learnable.
fn smooth(data: &[f32], shape: &[usize]) -> Vec<f32> {
    if shape.len() != 3 {
        return data.to_vec();
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let mut out = data.to_vec();
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0;
                let mut count = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let ny = y as i32 + dy;
                        let nx = x as i32 + dx;
                        if ny >= 0 && nx >= 0 && (ny as usize) < h && (nx as usize) < w {
                            sum += data[(ch * h + ny as usize) * w + nx as usize];
                            count += 1.0;
                        }
                    }
                }
                out[(ch * h + y) * w + x] = sum / count;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_config() {
        let ds = SyntheticDataset::generate(DatasetConfig {
            num_classes: 4,
            train_per_class: 6,
            test_per_class: 2,
            ..DatasetConfig::default()
        })
        .unwrap();
        assert_eq!(ds.num_classes(), 4);
        assert_eq!(ds.train().len(), 24);
        assert_eq!(ds.test().len(), 8);
        assert_eq!(ds.input_shape(), &[3, 8, 8]);
        // All labels in range, all pixels in [0, 1].
        for (x, y) in ds.train() {
            assert!(*y < 4);
            assert!(x.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // Per-class splits contain only that class.
        assert!(ds.train_of_class(2).iter().all(|(_, y)| *y == 2));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = SyntheticDataset::synth_cifar10(5, 2, 99).unwrap();
        let b = SyntheticDataset::synth_cifar10(5, 2, 99).unwrap();
        let c = SyntheticDataset::synth_cifar10(5, 2, 100).unwrap();
        assert_eq!(a.train()[0].0.as_slice(), b.train()[0].0.as_slice());
        assert_ne!(a.train()[0].0.as_slice(), c.train()[0].0.as_slice());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SyntheticDataset::generate(DatasetConfig {
            num_classes: 0,
            ..DatasetConfig::default()
        })
        .is_err());
        assert!(SyntheticDataset::generate(DatasetConfig {
            shape: vec![],
            ..DatasetConfig::default()
        })
        .is_err());
        assert!(SyntheticDataset::generate(DatasetConfig {
            noise: -1.0,
            ..DatasetConfig::default()
        })
        .is_err());
    }

    #[test]
    fn samples_cluster_around_their_prototype() {
        let ds = SyntheticDataset::generate(DatasetConfig {
            num_classes: 3,
            train_per_class: 10,
            noise: 0.05,
            ..DatasetConfig::default()
        })
        .unwrap();
        for (x, y) in ds.train() {
            let own = x.mse(ds.prototype(*y).unwrap()).unwrap();
            // A sample should be closer to its own prototype than to some other.
            let other = (0..3).find(|c| c != y).unwrap();
            let cross = x.mse(ds.prototype(other).unwrap()).unwrap();
            assert!(
                own < cross,
                "sample of class {y}: own {own} vs cross {cross}"
            );
        }
        assert!(ds.prototype(5).is_err());
    }

    #[test]
    fn cifar_style_classes_are_more_similar_than_imagenet_style() {
        let imagenet = SyntheticDataset::synth_imagenet_subset(10, 2, 1, 3).unwrap();
        let cifar = SyntheticDataset::synth_cifar10(2, 1, 3).unwrap();
        let spread = |ds: &SyntheticDataset| {
            let mut total = 0.0;
            let mut count = 0;
            for a in 0..ds.num_classes() {
                for b in (a + 1)..ds.num_classes() {
                    total += ds
                        .prototype(a)
                        .unwrap()
                        .mse(ds.prototype(b).unwrap())
                        .unwrap();
                    count += 1;
                }
            }
            total / count as f32
        };
        assert!(
            spread(&cifar) < spread(&imagenet),
            "cifar prototypes should be closer together"
        );
    }

    #[test]
    fn presets_have_expected_shapes() {
        let imagenet = SyntheticDataset::synth_imagenet_subset(5, 2, 1, 0).unwrap();
        assert_eq!(imagenet.input_shape(), &[3, 16, 16]);
        let cifar100 = SyntheticDataset::synth_cifar100(1, 1, 0).unwrap();
        assert_eq!(cifar100.num_classes(), 100);
        assert_eq!(cifar100.input_shape(), &[3, 8, 8]);
        assert_eq!(cifar100.name(), "synth-cifar100");
        assert_eq!(cifar100.config().num_classes, 100);
    }
}
