use std::fmt;

use ptolemy_tensor::TensorError;

/// Error type for dataset generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The dataset configuration is invalid (zero classes, empty shape, …).
    InvalidConfig(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A sample index was out of range.
    SampleOutOfRange {
        /// Requested index.
        index: usize,
        /// Number of samples available.
        len: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::SampleOutOfRange { index, len } => {
                write!(f, "sample index {index} out of range ({len} samples)")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!DataError::InvalidConfig("x".into()).to_string().is_empty());
        assert!(!DataError::SampleOutOfRange { index: 1, len: 0 }
            .to_string()
            .is_empty());
        let e: DataError = TensorError::Empty("max").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
