//! Procedural traffic-sign dataset for the paper's motivating scenario
//! (a stop sign mis-classified as a yield sign under an adversarial sticker).

use ptolemy_tensor::{Rng64, Tensor};

use crate::dataset::DatasetConfig;
use crate::{DataError, Result, SyntheticDataset};

/// Classes of the traffic-sign dataset, in label order.
pub const TRAFFIC_CLASSES: [&str; 4] = ["stop", "yield", "speed-limit", "background"];

/// Generates the procedural traffic-sign dataset: four classes of `[3, 16, 16]`
/// images (stop sign, yield sign, speed-limit sign, background clutter), each drawn
/// as a simple geometric glyph plus noise.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero per-class counts.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ptolemy_data::DataError> {
/// let signs = ptolemy_data::traffic_signs(10, 4, 1)?;
/// assert_eq!(signs.num_classes(), 4);
/// assert_eq!(signs.input_shape(), &[3, 16, 16]);
/// # Ok(())
/// # }
/// ```
pub fn traffic_signs(
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> Result<SyntheticDataset> {
    if train_per_class == 0 {
        return Err(DataError::InvalidConfig(
            "traffic_signs requires at least one training sample per class".into(),
        ));
    }
    // Start from the generic generator (for the config bookkeeping), then replace
    // the prototypes and samples with the procedural glyphs.
    let config = DatasetConfig {
        name: "traffic-signs".into(),
        num_classes: TRAFFIC_CLASSES.len(),
        shape: vec![3, 16, 16],
        train_per_class,
        test_per_class,
        noise: 0.08,
        seed,
    };
    let mut rng = Rng64::new(seed);
    let prototypes: Vec<Tensor> = (0..TRAFFIC_CLASSES.len())
        .map(glyph)
        .collect::<Result<_>>()?;

    let make = |per_class: usize, rng: &mut Rng64| -> Result<Vec<(Tensor, usize)>> {
        let mut out = Vec::with_capacity(per_class * prototypes.len());
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let jitter = rng.uniform(-0.1, 0.1);
                let data: Vec<f32> = proto
                    .as_slice()
                    .iter()
                    .map(|v| (v + jitter + config.noise * rng.normal()).clamp(0.0, 1.0))
                    .collect();
                out.push((Tensor::from_vec(data, &config.shape)?, class));
            }
        }
        rng.shuffle(&mut out);
        Ok(out)
    };
    let train = make(train_per_class, &mut rng)?;
    let test = make(test_per_class.max(1), &mut rng)?;

    SyntheticDataset::from_parts(config, prototypes, train, test)
}

/// Draws the prototype glyph for a class as a `[3, 16, 16]` image in `[0, 1]`.
fn glyph(class: usize) -> Result<Tensor> {
    let (h, w) = (16usize, 16usize);
    let mut data = vec![0.2f32; 3 * h * w];
    let set = |data: &mut Vec<f32>, c: usize, y: usize, x: usize, v: f32| {
        data[(c * h + y) * w + x] = v;
    };
    let centre = 7.5f32;
    for y in 0..h {
        for x in 0..w {
            let dy = y as f32 - centre;
            let dx = x as f32 - centre;
            let r = (dy * dy + dx * dx).sqrt();
            match class {
                // Stop: filled red octagon (approximated by a disc) with a white band.
                0 => {
                    if r < 6.0 {
                        set(&mut data, 0, y, x, 0.9);
                        if (6..=9).contains(&y) {
                            set(&mut data, 1, y, x, 0.8);
                            set(&mut data, 2, y, x, 0.8);
                        }
                    }
                }
                // Yield: downward red triangle outline with white interior.
                1 => {
                    let width_at_row = (15 - y) as f32 * 0.45;
                    if (dx.abs() - width_at_row).abs() < 1.2 && y < 14 {
                        set(&mut data, 0, y, x, 0.9);
                    } else if dx.abs() < width_at_row && y < 14 {
                        set(&mut data, 0, y, x, 0.85);
                        set(&mut data, 1, y, x, 0.85);
                        set(&mut data, 2, y, x, 0.85);
                    }
                }
                // Speed limit: white disc with a red ring and dark digits band.
                2 => {
                    if (5.0..7.0).contains(&r) {
                        set(&mut data, 0, y, x, 0.9);
                    } else if r < 5.0 {
                        set(&mut data, 0, y, x, 0.9);
                        set(&mut data, 1, y, x, 0.9);
                        set(&mut data, 2, y, x, 0.9);
                        if (7..=8).contains(&y) && (5..=10).contains(&x) {
                            set(&mut data, 0, y, x, 0.1);
                            set(&mut data, 1, y, x, 0.1);
                            set(&mut data, 2, y, x, 0.1);
                        }
                    }
                }
                // Background: soft green/blue gradient.
                _ => {
                    set(&mut data, 1, y, x, 0.3 + 0.4 * (y as f32 / h as f32));
                    set(&mut data, 2, y, x, 0.3 + 0.4 * (x as f32 / w as f32));
                }
            }
        }
    }
    Ok(Tensor::from_vec(data, &[3, h, w])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_labels() {
        let ds = traffic_signs(5, 2, 11).unwrap();
        assert_eq!(ds.num_classes(), 4);
        assert_eq!(ds.train().len(), 20);
        assert_eq!(ds.test().len(), 8);
        for (x, y) in ds.train() {
            assert!(*y < 4);
            assert!(x.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
        assert!(traffic_signs(0, 2, 1).is_err());
    }

    #[test]
    fn classes_are_visually_distinct() {
        let ds = traffic_signs(2, 1, 5).unwrap();
        // Stop prototype has more red mass than the background prototype.
        let red = |t: &Tensor| t.as_slice()[..256].iter().sum::<f32>();
        let stop = red(ds.prototype(0).unwrap());
        let background = red(ds.prototype(3).unwrap());
        assert!(stop > background);
        // Prototypes differ pairwise.
        for a in 0..4 {
            for b in (a + 1)..4 {
                let d = ds
                    .prototype(a)
                    .unwrap()
                    .mse(ds.prototype(b).unwrap())
                    .unwrap();
                assert!(d > 0.01, "classes {a} and {b} too similar ({d})");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = traffic_signs(3, 1, 42).unwrap();
        let b = traffic_signs(3, 1, 42).unwrap();
        assert_eq!(a.train()[0].0.as_slice(), b.train()[0].0.as_slice());
        assert_eq!(a.train()[0].1, b.train()[0].1);
    }
}
