//! # ptolemy-data
//!
//! Synthetic, seeded datasets standing in for ImageNet / CIFAR-10 / CIFAR-100 and
//! for the traffic-sign scenario the paper's introduction motivates.
//!
//! The Ptolemy detection framework needs datasets with two properties:
//!
//! 1. inputs of the same class must activate similar network paths (so class paths
//!    are meaningful), and
//! 2. arbitrarily many i.i.d. samples per class must be available (offline class-path
//!    profiling aggregates ~100 inputs per class before saturating).
//!
//! Each class is generated from a fixed random *prototype image* plus structured
//! per-sample perturbations, which gives a dataset that small CNNs learn quickly and
//! whose per-class activation structure mirrors what the paper observes on natural
//! images.  Every dataset is fully determined by its seed.
//!
//! # Example
//!
//! ```
//! use ptolemy_data::SyntheticDataset;
//!
//! # fn main() -> Result<(), ptolemy_data::DataError> {
//! let data = SyntheticDataset::synth_cifar10(20, 5, 42)?;
//! assert_eq!(data.num_classes(), 10);
//! assert_eq!(data.train().len(), 200);
//! assert_eq!(data.input_shape(), &[3, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod traffic;
pub mod workload;

pub use dataset::{DatasetConfig, SyntheticDataset};
pub use error::DataError;
pub use traffic::{traffic_signs, TRAFFIC_CLASSES};
pub use workload::{Arrivals, RequestEvent, WorkloadSpec, WorkloadTrace};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
