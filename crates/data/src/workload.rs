//! Deterministic seeded workload generation for serving experiments.
//!
//! The serving benches historically drove `ptolemy-serve` with a closed,
//! uniform request loop — every request identical, submitted as fast as the
//! previous one completed.  Real deployments look nothing like that: arrivals
//! are open-loop (the world does not wait for the server), interarrival times
//! are Poisson at best and bursty/self-similar at worst, request classes
//! split the offered utilization unevenly, and per-request service demand has
//! a heavy-ish tail.  This module generates such traces deterministically
//! from a single seed, borrowing three standard shapes from the real-time
//! scheduling literature:
//!
//! * **UUniFast** ([`uunifast`]) — the unbiased algorithm for splitting a
//!   total utilization across `n` task classes, so per-class load shares are
//!   drawn uniformly from the simplex instead of clustering around the mean.
//! * **Weibull service variation** ([`Weibull`]) — per-request service-size
//!   multipliers drawn by inverse-CDF sampling, with the shape parameter
//!   sweeping from heavy-tailed (`shape < 1`) to near-deterministic
//!   (`shape ≫ 1`).
//! * **ON/OFF burst modulation** ([`Arrivals::Bursty`]) — Poisson arrivals
//!   gated by Pareto-distributed ON/OFF sojourns, the classic construction
//!   for self-similar-looking traffic, with the ON rate scaled so the mean
//!   offered rate matches the plain Poisson trace.
//!
//! A [`WorkloadTrace`] is a pure schedule: arrival offsets, class indices,
//! service-size multipliers, and per-class relative deadline budgets.  It
//! carries no tensors and no clock — the bench layer maps classes to actual
//! inputs and paces submissions against a real `ptolemy_obs::Clock`-style
//! timebase.  Same spec ⇒ same trace, bit for bit.

use ptolemy_tensor::Rng64;

use crate::{DataError, Result};

/// Draws a uniform `f64` in the open interval `(0, 1)`.
///
/// `Rng64` only exposes an `f32` unit sample; distribution inversion wants
/// the full 53-bit mantissa, and the half-ulp offset keeps 0 and 1 strictly
/// excluded so `ln` and negative powers stay finite.
fn unit_open_f64(rng: &mut Rng64) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Rejects non-finite or non-positive parameters with a uniform message.
fn require_positive(name: &str, value: f64) -> Result<()> {
    if !value.is_finite() || value <= 0.0 {
        return Err(DataError::InvalidConfig(format!(
            "{name} must be finite and > 0, got {value}"
        )));
    }
    Ok(())
}

/// Lanczos approximation of the gamma function Γ(x) for `x > 0.5`.
///
/// Only the right half-plane is needed here (the callers evaluate
/// `Γ(1 + 1/shape)` with `shape > 0`), which sidesteps the reflection
/// formula.  Accuracy is ~1e-13 relative over the range used — far below the
/// sampling noise of any trace this module produces.
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficient set (Godfrey/Pugh).
    #[allow(clippy::excessive_precision)]
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut acc = COEFFICIENTS[0];
    for (i, coefficient) in COEFFICIENTS.iter().enumerate().skip(1) {
        acc += coefficient / (x + i as f64);
    }
    let t = x + 7.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
}

/// Splits `total` utilization across `n` classes with the UUniFast algorithm.
///
/// Every returned share is non-negative and the shares sum to `total` (up to
/// floating-point rounding).  Unlike naive normalize-random-weights splits,
/// UUniFast draws uniformly from the `n-1` simplex, so extreme splits (one
/// class dominating) appear with their correct probability — the property
/// the real-time literature introduced it for.
///
/// # Errors
///
/// Rejects `n == 0` and non-finite or non-positive `total`.
pub fn uunifast(n: usize, total: f64, rng: &mut Rng64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(DataError::InvalidConfig(
            "uunifast needs at least one class".into(),
        ));
    }
    require_positive("total utilization", total)?;
    let mut shares = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let next = remaining * unit_open_f64(rng).powf(1.0 / (n - i) as f64);
        shares.push(remaining - next);
        remaining = next;
    }
    shares.push(remaining);
    Ok(shares)
}

/// A Weibull distribution sampled by inverse-CDF transform.
///
/// `sample = scale · (−ln(1−u))^(1/shape)` with `u ~ U(0,1)`.  `shape < 1`
/// gives a heavy tail (occasional huge requests), `shape = 1` is exponential,
/// `shape ≫ 1` concentrates near `scale` — the standard knob for service-size
/// variation in serving workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// A Weibull with the given shape `k` and scale `λ`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive parameters.
    pub fn new(shape: f64, scale: f64) -> Result<Weibull> {
        require_positive("weibull shape", shape)?;
        require_positive("weibull scale", scale)?;
        Ok(Weibull { shape, scale })
    }

    /// A Weibull with the given shape and the scale chosen so the mean is
    /// exactly 1 (`scale = 1 / Γ(1 + 1/shape)`) — the form used for
    /// service-size *multipliers*.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive `shape`.
    pub fn with_unit_mean(shape: f64) -> Result<Weibull> {
        require_positive("weibull shape", shape)?;
        Weibull::new(shape, 1.0 / gamma(1.0 + 1.0 / shape))
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The distribution mean, `scale · Γ(1 + 1/shape)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    /// Draws one sample; always finite and strictly positive.
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        let u = unit_open_f64(rng);
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }
}

/// Draws an exponential sample with the given mean (inverse CDF).
fn exponential(mean: f64, rng: &mut Rng64) -> f64 {
    -mean * (1.0 - unit_open_f64(rng)).ln()
}

/// Draws a Pareto(α) sample with the given mean (requires `α > 1`).
fn pareto(alpha: f64, mean: f64, rng: &mut Rng64) -> f64 {
    // mean = α·x_m / (α − 1) ⇒ x_m = mean·(α − 1)/α.
    let x_m = mean * (alpha - 1.0) / alpha;
    x_m * (1.0 - unit_open_f64(rng)).powf(-1.0 / alpha)
}

/// Pareto tail exponent for ON/OFF sojourns: infinite variance (`α < 2`) for
/// self-similar-looking burst structure, finite mean (`α > 1`) so the
/// modulation stays calibratable.
const SOJOURN_ALPHA: f64 = 1.5;

/// The arrival process shape of a [`WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Open-loop Poisson arrivals: i.i.d. exponential interarrivals at the
    /// aggregate rate implied by the spec's utilization and mean service
    /// size.
    Poisson,
    /// Open-loop bursty arrivals: Poisson arrivals gated by an ON/OFF
    /// modulator with Pareto(1.5) sojourn times.  During ON phases the
    /// instantaneous rate is `burstiness ×` the Poisson rate; OFF phases are
    /// silent and sized so the *mean* rate matches [`Arrivals::Poisson`].
    Bursty {
        /// Peak-to-mean rate ratio during ON phases; must be > 1.
        burstiness: f64,
        /// Mean ON-phase duration in nanoseconds; must be > 0.
        mean_burst_ns: u64,
    },
    /// Closed-loop arrivals: `concurrency` clients that each wait for their
    /// previous request before thinking for `think_ns` and submitting the
    /// next.  Arrival offsets are the *think-time schedule* (round ·
    /// `think_ns`); actual submission is gated by completions, which is what
    /// makes the loop closed — the trace just fixes class/size/deadline
    /// draws.
    Closed {
        /// Number of closed-loop clients; must be > 0.
        concurrency: usize,
        /// Per-client think time between requests, nanoseconds.
        think_ns: u64,
    },
}

/// Specification of a deterministic workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Seed; same spec (including seed) ⇒ identical trace.
    pub seed: u64,
    /// Number of request events to generate.
    pub requests: usize,
    /// Number of request classes the utilization is split across.
    pub classes: usize,
    /// Total offered utilization (1.0 ≈ one fully-busy server worker);
    /// > 1.0 models overload.
    pub total_utilization: f64,
    /// Mean per-request service size in nanoseconds (measured or assumed).
    pub mean_service_ns: u64,
    /// Weibull shape for per-request service-size multipliers (mean 1).
    pub weibull_shape: f64,
    /// Relative deadline budget as a multiple of each class's nominal period
    /// (`mean_service_ns / class_utilization`).
    pub deadline_factor: f64,
    /// The arrival process.
    pub arrivals: Arrivals,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            seed: 0x10AD,
            requests: 256,
            classes: 3,
            total_utilization: 0.5,
            mean_service_ns: 1_000_000,
            weibull_shape: 1.5,
            deadline_factor: 4.0,
            arrivals: Arrivals::Poisson,
        }
    }
}

/// One generated request event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEvent {
    /// Nominal arrival offset from the trace start, nanoseconds.
    pub arrival_ns: u64,
    /// Class index in `0..spec.classes`.
    pub class: usize,
    /// Per-request service-size multiplier (Weibull, mean 1, strictly > 0).
    pub service_scale: f64,
    /// Relative deadline budget for this request, nanoseconds after arrival.
    pub deadline_ns: u64,
}

/// A generated trace: ordered request events plus the per-class parameters
/// they were drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    events: Vec<RequestEvent>,
    utilizations: Vec<f64>,
    class_deadline_ns: Vec<u64>,
}

impl WorkloadTrace {
    /// The request events in arrival order.
    pub fn events(&self) -> &[RequestEvent] {
        &self.events
    }

    /// The UUniFast per-class utilization shares (sum ≈ total).
    pub fn utilizations(&self) -> &[f64] {
        &self.utilizations
    }

    /// Per-class relative deadline budgets, nanoseconds.
    pub fn class_deadline_ns(&self) -> &[u64] {
        &self.class_deadline_ns
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last nominal arrival offset (the trace's open-loop duration).
    pub fn duration_ns(&self) -> u64 {
        self.events.last().map_or(0, |event| event.arrival_ns)
    }
}

impl WorkloadSpec {
    /// Generates the trace: validates the spec, splits utilization with
    /// UUniFast, draws arrivals per the configured process, and attaches a
    /// class, a Weibull service multiplier, and a relative deadline to every
    /// event.
    ///
    /// # Errors
    ///
    /// Rejects zero `requests`/`classes`, non-positive utilization, service
    /// size, Weibull shape, or deadline factor, and malformed arrival
    /// parameters (`burstiness <= 1`, zero burst length, zero concurrency).
    pub fn generate(&self) -> Result<WorkloadTrace> {
        if self.requests == 0 {
            return Err(DataError::InvalidConfig(
                "workload needs at least one request".into(),
            ));
        }
        if self.mean_service_ns == 0 {
            return Err(DataError::InvalidConfig(
                "mean_service_ns must be > 0".into(),
            ));
        }
        require_positive("total_utilization", self.total_utilization)?;
        require_positive("deadline_factor", self.deadline_factor)?;
        match self.arrivals {
            Arrivals::Bursty {
                burstiness,
                mean_burst_ns,
            } => {
                if !burstiness.is_finite() || burstiness <= 1.0 {
                    return Err(DataError::InvalidConfig(format!(
                        "burstiness must be finite and > 1, got {burstiness}"
                    )));
                }
                if mean_burst_ns == 0 {
                    return Err(DataError::InvalidConfig("mean_burst_ns must be > 0".into()));
                }
            }
            Arrivals::Closed { concurrency, .. } => {
                if concurrency == 0 {
                    return Err(DataError::InvalidConfig(
                        "closed-loop concurrency must be > 0".into(),
                    ));
                }
            }
            Arrivals::Poisson => {}
        }

        let mut rng = Rng64::new(self.seed);
        let utilizations = uunifast(self.classes, self.total_utilization, &mut rng)?;
        let service = Weibull::with_unit_mean(self.weibull_shape)?;

        // Aggregate arrival rate: utilization = rate · mean service size, so
        // rate (per ns) = U_total / E[S].  Per-class nominal period is the
        // inverse of the class's own rate; the deadline budget is a multiple
        // of it, so lightly-loaded classes get proportionally looser
        // deadlines — the UUniFast/period coupling the rt literature uses.
        let mean_interarrival_ns = self.mean_service_ns as f64 / self.total_utilization;
        let class_deadline_ns: Vec<u64> = utilizations
            .iter()
            .map(|&share| {
                let period_ns = self.mean_service_ns as f64 / share.max(f64::MIN_POSITIVE);
                (self.deadline_factor * period_ns).min(u64::MAX as f64 / 2.0) as u64
            })
            .map(|deadline| deadline.max(1))
            .collect();

        let mut events = Vec::with_capacity(self.requests);
        let mut clock_ns = 0.0_f64;
        // ON/OFF modulator state for bursty arrivals: remaining ON time, and
        // the mean OFF length that keeps the duty cycle at 1/burstiness.
        let mut on_remaining_ns = 0.0_f64;
        for index in 0..self.requests {
            let arrival_ns = match self.arrivals {
                Arrivals::Poisson => {
                    clock_ns += exponential(mean_interarrival_ns, &mut rng);
                    clock_ns as u64
                }
                Arrivals::Bursty {
                    burstiness,
                    mean_burst_ns,
                } => {
                    let mut gap = exponential(mean_interarrival_ns / burstiness, &mut rng);
                    // Consume ON time; every exhausted ON phase inserts one
                    // silent OFF sojourn and redraws the phase pair.
                    while gap >= on_remaining_ns {
                        gap -= on_remaining_ns;
                        clock_ns += on_remaining_ns;
                        let mean_off_ns = mean_burst_ns as f64 * (burstiness - 1.0);
                        clock_ns += pareto(SOJOURN_ALPHA, mean_off_ns, &mut rng);
                        on_remaining_ns = pareto(SOJOURN_ALPHA, mean_burst_ns as f64, &mut rng);
                    }
                    on_remaining_ns -= gap;
                    clock_ns += gap;
                    clock_ns as u64
                }
                Arrivals::Closed {
                    concurrency,
                    think_ns,
                } => {
                    let round = (index / concurrency) as u64;
                    round.saturating_mul(think_ns)
                }
            };
            let class = pick_class(&utilizations, self.total_utilization, &mut rng);
            events.push(RequestEvent {
                arrival_ns,
                class,
                service_scale: service.sample(&mut rng),
                deadline_ns: class_deadline_ns[class],
            });
        }

        Ok(WorkloadTrace {
            events,
            utilizations,
            class_deadline_ns,
        })
    }
}

/// Picks a class index with probability proportional to its utilization
/// share (so offered load per class matches the UUniFast split in
/// expectation).
fn pick_class(utilizations: &[f64], total: f64, rng: &mut Rng64) -> usize {
    let mut target = unit_open_f64(rng) * total;
    for (class, &share) in utilizations.iter().enumerate() {
        if target < share {
            return class;
        }
        target -= share;
    }
    utilizations.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_shares_sum_to_total_and_stay_nonnegative() {
        let mut rng = Rng64::new(7);
        for &(n, total) in &[(1usize, 0.8f64), (4, 1.0), (16, 2.5)] {
            let shares = uunifast(n, total, &mut rng).expect("valid spec");
            assert_eq!(shares.len(), n);
            assert!(shares.iter().all(|&u| u >= 0.0));
            let sum: f64 = shares.iter().sum();
            assert!((sum - total).abs() < 1e-9, "sum {sum} != {total}");
        }
        assert!(uunifast(0, 1.0, &mut rng).is_err());
        assert!(uunifast(3, 0.0, &mut rng).is_err());
    }

    #[test]
    fn weibull_unit_mean_is_calibrated() {
        for &shape in &[0.7f64, 1.0, 1.5, 3.0] {
            let w = Weibull::with_unit_mean(shape).expect("valid shape");
            assert!((w.mean() - 1.0).abs() < 1e-9, "shape {shape}: {}", w.mean());
            let mut rng = Rng64::new(11);
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 0.05, "shape {shape}: sampled {mean}");
        }
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(1.5) = √π/2, Γ(4) = 6.
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
        assert!((gamma(4.0) - 6.0).abs() < 1e-8);
    }

    #[test]
    fn generate_is_deterministic_and_validates() {
        let spec = WorkloadSpec::default();
        let a = spec.generate().expect("valid spec");
        let b = spec.generate().expect("valid spec");
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.requests);
        assert!(a
            .events()
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));

        let mut reseeded = spec.clone();
        reseeded.seed ^= 1;
        assert_ne!(reseeded.generate().expect("valid spec"), a);

        assert!(WorkloadSpec {
            requests: 0,
            ..spec.clone()
        }
        .generate()
        .is_err());
        assert!(WorkloadSpec {
            arrivals: Arrivals::Bursty {
                burstiness: 1.0,
                mean_burst_ns: 1_000
            },
            ..spec.clone()
        }
        .generate()
        .is_err());
        assert!(WorkloadSpec {
            arrivals: Arrivals::Closed {
                concurrency: 0,
                think_ns: 0
            },
            ..spec
        }
        .generate()
        .is_err());
    }

    #[test]
    fn bursty_traces_keep_the_mean_rate_but_raise_variance() {
        let base = WorkloadSpec {
            requests: 4_096,
            ..WorkloadSpec::default()
        };
        let poisson = base.generate().expect("valid spec");
        let bursty = WorkloadSpec {
            arrivals: Arrivals::Bursty {
                burstiness: 8.0,
                mean_burst_ns: 20_000_000,
            },
            ..base
        }
        .generate()
        .expect("valid spec");
        // Mean rates agree within a factor of 2 (Pareto sojourns are noisy
        // at this length); burst structure shows up as a much larger
        // interarrival variance.
        let span = |t: &WorkloadTrace| t.duration_ns().max(1) as f64;
        let ratio = span(&bursty) / span(&poisson);
        assert!((0.5..2.0).contains(&ratio), "duration ratio {ratio}");
        let var = |t: &WorkloadTrace| {
            let gaps: Vec<f64> = t
                .events()
                .windows(2)
                .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64
        };
        assert!(
            var(&bursty) > 2.0 * var(&poisson),
            "bursty variance {} vs poisson {}",
            var(&bursty),
            var(&poisson)
        );
    }

    #[test]
    fn closed_loop_schedules_by_round() {
        let trace = WorkloadSpec {
            requests: 10,
            arrivals: Arrivals::Closed {
                concurrency: 4,
                think_ns: 1_000,
            },
            ..WorkloadSpec::default()
        }
        .generate()
        .expect("valid spec");
        let offsets: Vec<u64> = trace.events().iter().map(|e| e.arrival_ns).collect();
        assert_eq!(
            offsets,
            vec![0, 0, 0, 0, 1_000, 1_000, 1_000, 1_000, 2_000, 2_000]
        );
    }
}
