//! Fused int8 `im2col`: lowers convolution inputs straight into quantized
//! patch matrices, skipping the f32 column intermediate entirely.
//!
//! The f32 quantized-conv path materialised `im2col(input)` (a `[patch_len,
//! patches]` f32 tensor) and then quantized it element-wise.  These kernels
//! fuse the two: each in-bounds patch element is quantized as it is packed,
//! and padding positions are left at the quantized zero (`quantize(0.0)` is
//! exactly `0` for every scale).  The output is therefore **bit-for-bit**
//! `quantize_slice(im2col(input), params)` — same values, same column layout
//! — at a quarter of the write traffic and without the f32 allocation.
//!
//! This module is the second place (after [`crate::quant`]) allowed to
//! perform the lossy `as i8` saturating cast: the fused pack inlines the
//! exact [`QuantParams::quantize`] expression so the hot loop stays free of
//! any round-trip through a staging buffer.  The inline copy is pinned
//! bit-identical to [`QuantParams::quantize`] by the tests below.

use crate::im2col::Conv2dGeometry;
use crate::quant::QuantParams;
use crate::{Result, Tensor, TensorError};

/// The audited quantization step, inlined from [`QuantParams::quantize`]:
/// round-to-nearest (ties away from zero) then saturate to `[-127, 127]`.
/// Must stay expression-for-expression identical to the `quant` module's —
/// `inline_quantize_matches_quant_params` pins it.
#[inline(always)]
fn quantize(scale: f32, x: f32) -> i8 {
    // lint:allow(raw-numeric-cast): the audited saturating quantization cast
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

/// Lowers one CHW image into a quantized patch matrix of `[patch_len,
/// out_h * out_w]` layout (returned as a flat `Vec<i8>`).
///
/// Column `j` is the receptive field of output position `(j / out_w,
/// j % out_w)`, quantized with `params`; padding reads quantized zeros.  The
/// result is bit-for-bit `quantize_slice(im2col(image, geom), params)`.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if `image` does not have
/// `in_channels * in_h * in_w` elements (same contract as [`crate::im2col`]).
pub fn im2col_i8(image: &Tensor, geom: &Conv2dGeometry, params: QuantParams) -> Result<Vec<i8>> {
    let expected = geom.in_channels * geom.in_h * geom.in_w;
    if image.len() != expected {
        return Err(TensorError::IncompatibleShapes {
            lhs: image.dims().to_vec(),
            rhs: vec![geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col_i8",
        });
    }
    let src = image.as_slice();
    let scale = params.scale();
    let rows = geom.patch_len();
    let cols = geom.num_patches();
    let mut out = vec![0i8; rows * cols];
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let col = oy * geom.out_w + ox;
            for p in 0..rows {
                if let Some((c, y, x)) = geom.patch_source(oy, ox, p) {
                    out[p * cols + col] = quantize(scale, src[geom.input_index(c, y, x)]);
                }
            }
        }
    }
    Ok(out)
}

/// Lowers a stacked NCHW batch into one quantized patch matrix of
/// `[patch_len, batch * out_h * out_w]` layout (flat `Vec<i8>`).
///
/// Column `b * num_patches + j` is bit-for-bit column `j` of [`im2col_i8`]
/// applied to sample `b` alone — the same widening-only batch contract as
/// the f32 [`crate::im2col_batch`], so the fused quantized conv preserves
/// per-input results exactly.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if `batch` is empty or its
/// element count is not a multiple of `in_channels * in_h * in_w`.
pub fn im2col_i8_batch(
    batch: &Tensor,
    geom: &Conv2dGeometry,
    params: QuantParams,
) -> Result<Vec<i8>> {
    let sample_len = geom.in_channels * geom.in_h * geom.in_w;
    if sample_len == 0 || batch.is_empty() || batch.len() % sample_len != 0 {
        return Err(TensorError::IncompatibleShapes {
            lhs: batch.dims().to_vec(),
            rhs: vec![geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col_i8_batch",
        });
    }
    let batch_size = batch.len() / sample_len;
    let src = batch.as_slice();
    let scale = params.scale();
    let rows = geom.patch_len();
    let patches = geom.num_patches();
    let cols = batch_size * patches;
    let mut out = vec![0i8; rows * cols];
    for b in 0..batch_size {
        let sample = &src[b * sample_len..(b + 1) * sample_len];
        for oy in 0..geom.out_h {
            for ox in 0..geom.out_w {
                let col = b * patches + oy * geom.out_w + ox;
                for p in 0..rows {
                    if let Some((c, y, x)) = geom.patch_source(oy, ox, p) {
                        out[p * cols + col] = quantize(scale, sample[geom.input_index(c, y, x)]);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_slice;
    use crate::{im2col, Rng64};

    #[test]
    fn inline_quantize_matches_quant_params() {
        for max_abs in [0.5f32, 1.0, 3.7, 100.0] {
            let params = QuantParams::from_max_abs(max_abs);
            for i in -500..=500 {
                let x = i as f32 * max_abs / 400.0;
                assert_eq!(quantize(params.scale(), x), params.quantize(x), "{x}");
            }
            assert_eq!(
                quantize(params.scale(), f32::NAN),
                params.quantize(f32::NAN)
            );
        }
    }

    fn random_image(dims: &[usize], rng: &mut Rng64) -> Tensor {
        let len: usize = dims.iter().product();
        let data: Vec<f32> = (0..len)
            .map(|i| if i % 7 == 0 { 0.0 } else { rng.normal() })
            .collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn fused_matches_quantize_after_im2col() {
        let mut rng = Rng64::new(29);
        for (geom, dims) in [
            (Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap(), [1, 3, 3]),
            (Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap(), [2, 4, 4]),
            (Conv2dGeometry::new(3, 5, 5, 3, 2, 1).unwrap(), [3, 5, 5]),
        ] {
            let img = random_image(&dims, &mut rng);
            let params = QuantParams::from_max_abs(crate::quant::tensor_max_abs(&img));
            let fused = im2col_i8(&img, &geom, params).unwrap();
            let staged = quantize_slice(im2col(&img, &geom).unwrap().as_slice(), params);
            assert_eq!(fused, staged);
        }
    }

    #[test]
    fn batch_columns_match_per_sample_fused() {
        let mut rng = Rng64::new(31);
        let geom = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let samples: Vec<Tensor> = (0..3).map(|_| random_image(&[2, 4, 4], &mut rng)).collect();
        let batch = Tensor::stack(&samples).unwrap();
        let params = QuantParams::from_max_abs(1.3);
        let wide = im2col_i8_batch(&batch, &geom, params).unwrap();
        let patches = geom.num_patches();
        let cols = samples.len() * patches;
        for (b, sample) in samples.iter().enumerate() {
            let single = im2col_i8(sample, &geom, params).unwrap();
            for p in 0..geom.patch_len() {
                for j in 0..patches {
                    assert_eq!(
                        wide[p * cols + b * patches + j],
                        single[p * patches + j],
                        "({b},{p},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_misshaped_inputs() {
        let geom = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let params = QuantParams::from_max_abs(1.0);
        assert!(im2col_i8(&Tensor::zeros(&[1, 2, 2]), &geom, params).is_err());
        assert!(im2col_i8_batch(&Tensor::zeros(&[10]), &geom, params).is_err());
        assert!(im2col_i8_batch(&Tensor::zeros(&[0]), &geom, params).is_err());
    }
}
