//! `im2col`/`col2im` lowering used by the convolution layers.
//!
//! The Ptolemy detection algorithm needs per-output-neuron *partial sums* (Fig. 3 of
//! the paper): for an output feature-map element, the partial sums are the products
//! of each input element in its receptive field with the corresponding kernel
//! weight.  Lowering convolution to a matrix multiplication over `im2col` patches
//! makes those partial sums directly addressable — each column of the patch matrix
//! is exactly one receptive field — so both `ptolemy-nn` and the extraction code in
//! `ptolemy-core` share this geometry type.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution (single image, NCHW single batch entry).
///
/// # Example
///
/// ```
/// use ptolemy_tensor::Conv2dGeometry;
///
/// # fn main() -> Result<(), ptolemy_tensor::TensorError> {
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1)?;
/// assert_eq!(g.out_h, 32);
/// assert_eq!(g.out_w, 32);
/// assert_eq!(g.patch_len(), 27);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes the output geometry for the given input and kernel parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel/stride/padding
    /// combination produces an empty output or the stride is zero.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if stride == 0 || kernel == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel and stride must be non-zero".into(),
            ));
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if padded_h < kernel || padded_w < kernel {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel} larger than padded input {padded_h}x{padded_w}"
            )));
        }
        Ok(Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
            out_h: (padded_h - kernel) / stride + 1,
            out_w: (padded_w - kernel) / stride + 1,
        })
    }

    /// Number of elements in one receptive field (`in_channels * kernel²`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of output spatial positions (`out_h * out_w`).
    pub fn num_patches(&self) -> usize {
        self.out_h * self.out_w
    }

    /// For the output position `(oy, ox)` and patch element `p`, returns the
    /// corresponding input coordinate `(c, y, x)` if it lies inside the (unpadded)
    /// input, or `None` if the element reads from the zero padding.
    pub fn patch_source(&self, oy: usize, ox: usize, p: usize) -> Option<(usize, usize, usize)> {
        let c = p / (self.kernel * self.kernel);
        let rem = p % (self.kernel * self.kernel);
        let ky = rem / self.kernel;
        let kx = rem % self.kernel;
        let y = (oy * self.stride + ky) as isize - self.padding as isize;
        let x = (ox * self.stride + kx) as isize - self.padding as isize;
        if y < 0 || x < 0 || y >= self.in_h as isize || x >= self.in_w as isize {
            None
        } else {
            Some((c, y as usize, x as usize))
        }
    }

    /// Flat input-feature-map index (within one image, CHW order) for an in-bounds
    /// patch source.
    pub fn input_index(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.in_h + y) * self.in_w + x
    }
}

/// Lowers one CHW image into a patch matrix of shape `[patch_len, out_h * out_w]`.
///
/// Column `j` of the result is the receptive field of output position
/// `(j / out_w, j % out_w)`, padded with zeros where the field falls outside the
/// input.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if `image` does not have
/// `in_channels * in_h * in_w` elements.
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let expected = geom.in_channels * geom.in_h * geom.in_w;
    if image.len() != expected {
        return Err(TensorError::IncompatibleShapes {
            lhs: image.dims().to_vec(),
            rhs: vec![geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col",
        });
    }
    let src = image.as_slice();
    let rows = geom.patch_len();
    let cols = geom.num_patches();
    let mut out = vec![0.0f32; rows * cols];
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let col = oy * geom.out_w + ox;
            for p in 0..rows {
                if let Some((c, y, x)) = geom.patch_source(oy, ox, p) {
                    out[p * cols + col] = src[geom.input_index(c, y, x)];
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Lowers a stacked NCHW batch into one patch matrix of shape
/// `[patch_len, batch * out_h * out_w]`.
///
/// `batch` must have a leading batch dimension over CHW samples (shape
/// `[B, C, H, W]`, or any `[B, ...]` whose per-sample element count is
/// `in_channels * in_h * in_w`).  Column `b * num_patches + j` of the result is
/// **bit-for-bit identical** to column `j` of `im2col` applied to sample `b`
/// alone — batching only widens the matrix, it never re-associates any value —
/// which is what lets one matrix multiplication price a whole batch while
/// preserving per-input parity.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if `batch` is empty or its
/// element count is not a multiple of `in_channels * in_h * in_w`.
pub fn im2col_batch(batch: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let sample_len = geom.in_channels * geom.in_h * geom.in_w;
    if sample_len == 0 || batch.is_empty() || batch.len() % sample_len != 0 {
        return Err(TensorError::IncompatibleShapes {
            lhs: batch.dims().to_vec(),
            rhs: vec![geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col_batch",
        });
    }
    let batch_size = batch.len() / sample_len;
    let src = batch.as_slice();
    let rows = geom.patch_len();
    let patches = geom.num_patches();
    let cols = batch_size * patches;
    let mut out = vec![0.0f32; rows * cols];
    for b in 0..batch_size {
        let sample = &src[b * sample_len..(b + 1) * sample_len];
        for oy in 0..geom.out_h {
            for ox in 0..geom.out_w {
                let col = b * patches + oy * geom.out_w + ox;
                for p in 0..rows {
                    if let Some((c, y, x)) = geom.patch_source(oy, ox, p) {
                        out[p * cols + col] = sample[geom.input_index(c, y, x)];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Adjoint of [`im2col`]: scatters a patch matrix of shape
/// `[patch_len, out_h * out_w]` back onto a CHW image, *summing* values that map to
/// the same input element.  Used for convolution backward passes.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if `cols` does not have the shape
/// implied by the geometry.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let rows = geom.patch_len();
    let ncols = geom.num_patches();
    if cols.dims() != [rows, ncols] {
        return Err(TensorError::IncompatibleShapes {
            lhs: cols.dims().to_vec(),
            rhs: vec![rows, ncols],
            op: "col2im",
        });
    }
    let src = cols.as_slice();
    let mut out = vec![0.0f32; geom.in_channels * geom.in_h * geom.in_w];
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let col = oy * geom.out_w + ox;
            for p in 0..rows {
                if let Some((c, y, x)) = geom.patch_source(oy, ox, p) {
                    out[geom.input_index(c, y, x)] += src[p * ncols + col];
                }
            }
        }
    }
    Tensor::from_vec(out, &[geom.in_channels, geom.in_h, geom.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_rejects_degenerate_configs() {
        assert!(Conv2dGeometry::new(1, 4, 4, 0, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 4, 4, 3, 0, 0).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 0).is_err());
        // With enough padding the same kernel becomes valid.
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 2).is_ok());
    }

    #[test]
    fn geometry_output_sizes() {
        let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (32, 32));
        let g = Conv2dGeometry::new(3, 32, 32, 3, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (16, 16));
        let g = Conv2dGeometry::new(1, 5, 5, 5, 1, 0).unwrap();
        assert_eq!((g.out_h, g.out_w), (1, 1));
    }

    #[test]
    fn im2col_identity_kernel_matches_input() {
        // A 1x1 kernel with stride 1 and no padding produces the input itself.
        let g = Conv2dGeometry::new(1, 3, 3, 1, 1, 0).unwrap();
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[1, 9]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // First column is the top-left 2x2 patch [1,2,4,5].
        let c0: Vec<f32> = (0..4).map(|r| cols.get(&[r, 0]).unwrap()).collect();
        assert_eq!(c0, vec![1.0, 2.0, 4.0, 5.0]);
        // Last column is the bottom-right patch [5,6,8,9].
        let c3: Vec<f32> = (0..4).map(|r| cols.get(&[r, 3]).unwrap()).collect();
        assert_eq!(c3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_reads_zeros() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1).unwrap();
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        // Top-left output position: its receptive field's first row/col is padding.
        let c0: Vec<f32> = (0..9).map(|r| cols.get(&[r, 0]).unwrap()).collect();
        assert_eq!(c0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
        // Every element of the original image appears somewhere.
        let total: f32 = cols.as_slice().iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_counts() {
        // Scattering a matrix of ones counts how many receptive fields cover each
        // input element; with kernel=2/stride=1 on 3x3 the centre is covered 4 times.
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let ones = Tensor::ones(&[g.patch_len(), g.num_patches()]);
        let counts = col2im(&ones, &g).unwrap();
        assert_eq!(counts.get(&[0, 1, 1]).unwrap(), 4.0);
        assert_eq!(counts.get(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(counts.get(&[0, 0, 1]).unwrap(), 2.0);
    }

    #[test]
    fn im2col_rejects_wrong_input_size() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let img = Tensor::zeros(&[1, 2, 2]);
        assert!(im2col(&img, &g).is_err());
        let cols = Tensor::zeros(&[3, 3]);
        assert!(col2im(&cols, &g).is_err());
    }

    #[test]
    fn im2col_batch_columns_match_per_sample_im2col() {
        let g = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let samples: Vec<Tensor> = (0..3)
            .map(|b| {
                Tensor::from_vec(
                    (0..2 * 4 * 4)
                        .map(|v| (v + b * 100) as f32 * 0.37)
                        .collect(),
                    &[2, 4, 4],
                )
                .unwrap()
            })
            .collect();
        let batch = Tensor::stack(&samples).unwrap();
        let wide = im2col_batch(&batch, &g).unwrap();
        let patches = g.num_patches();
        assert_eq!(wide.dims(), &[g.patch_len(), 3 * patches]);
        for (b, sample) in samples.iter().enumerate() {
            let single = im2col(sample, &g).unwrap();
            for p in 0..g.patch_len() {
                for j in 0..patches {
                    let fused = wide.get(&[p, b * patches + j]).unwrap();
                    let lone = single.get(&[p, j]).unwrap();
                    assert_eq!(fused.to_bits(), lone.to_bits());
                }
            }
        }
    }

    #[test]
    fn im2col_batch_rejects_misaligned_batches() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        // Element count not a multiple of the sample size.
        assert!(im2col_batch(&Tensor::zeros(&[10]), &g).is_err());
        // Empty batch.
        assert!(im2col_batch(&Tensor::zeros(&[0]), &g).is_err());
        // A single-sample "batch" works and equals plain im2col.
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let wide = im2col_batch(&img, &g).unwrap();
        let single = im2col(&img.slice_batch(0).unwrap(), &g).unwrap();
        assert_eq!(wide.as_slice(), single.as_slice());
    }

    #[test]
    fn patch_source_consistency() {
        let g = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        // Every in-bounds patch source maps to a valid flat index.
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                for p in 0..g.patch_len() {
                    if let Some((c, y, x)) = g.patch_source(oy, ox, p) {
                        let idx = g.input_index(c, y, x);
                        assert!(idx < g.in_channels * g.in_h * g.in_w);
                    }
                }
            }
        }
    }
}
