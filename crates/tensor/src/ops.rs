//! Arithmetic operations on [`Tensor`]: element-wise maths, scalar maths and matrix
//! multiplication.  Everything here is shape-checked; the DNN substrate relies on
//! these checks as cheap internal assertions.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.check_same_shape(other, "add_scaled_inplace")?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|v| v * factor)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|v| v + value)
    }

    /// Clamps every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Element-wise sign (−1, 0 or 1).
    pub fn signum(&self) -> Tensor {
        self.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Runs the blocked, register-tiled kernel from [`crate::gemm`], fanning
    /// rows out over the cached core count for large products.  Every routing
    /// choice (blocked vs naive, serial vs parallel) is bit-for-bit identical
    /// to [`Tensor::matmul_naive`] — see the `gemm` module docs for why.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if either operand is not rank 2 and
    /// [`TensorError::IncompatibleShapes`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.shape().as_matrix()?;
        let (k2, n) = other.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul",
            });
        }
        if crate::gemm::parallel_worthwhile(m, k, n) {
            crate::gemm::matmul_parallel(self, other)
        } else {
            crate::gemm::matmul_blocked(self, other)
        }
    }

    /// Matrix multiplication via the original naive scalar triple loop.
    ///
    /// This is the reference kernel the workspace's bit-parity contract is
    /// defined against; [`Tensor::matmul`] must (and does, proptest-pinned)
    /// return bit-identical results.  Kept public for the parity suite and
    /// the `gemm_microkernel` benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if either operand is not rank 2 and
    /// [`TensorError::IncompatibleShapes`] if the inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.shape().as_matrix()?;
        let (k2, n) = other.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop contiguous over `b` and `out`.
        crate::gemm::matmul_naive_into(&mut out, self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        let (m, n) = self.shape().as_matrix()?;
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilised).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        let (m, n) = self.shape().as_matrix()?;
        let mut out = self.as_slice().to_vec();
        for row in out.chunks_mut(n) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        op: &'static str,
        f: F,
    ) -> Result<Tensor> {
        self.check_same_shape(other, op)?;
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| f(*a, *b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
        assert!(a.dot(&b).is_err());
        let mut a2 = a.clone();
        assert!(a2.add_scaled_inplace(&b, 1.0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let g = t(&[2.0, 4.0], &[2]);
        a.add_scaled_inplace(&g, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn clamp_and_sign() {
        let a = t(&[-2.0, 0.0, 5.0], &[3]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.0, 1.0]);
        assert_eq!(a.signum().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0, 2.0], &[2]);
        assert!(a.matmul(&Tensor::eye(2)).is_err());
        let b = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(b.matmul(&c).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.transpose().unwrap(), a);
        assert_eq!(at.get(&[2, 1]).unwrap(), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = a.softmax_rows().unwrap();
        for row in s.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|v| *v > 0.0));
        }
        // Uniform logits yield a uniform distribution.
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-5);
    }
}
