use std::fmt;

use crate::{Result, TensorError};

/// Dimension list of a tensor, stored in row-major order.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that adds the strided-indexing
/// arithmetic the rest of the workspace needs (offset computation, NCHW accessors,
/// element counting).
///
/// # Example
///
/// ```
/// use ptolemy_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank does not match or
    /// any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() || index.iter().zip(&self.0).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(i, s)| i * s).sum())
    }

    /// Converts a flat offset back to a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= self.len()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.0.clone(),
            });
        }
        let mut rem = offset;
        let mut index = Vec::with_capacity(self.0.len());
        for stride in self.strides() {
            index.push(rem / stride);
            rem %= stride;
        }
        Ok(index)
    }

    /// Interprets the shape as NCHW and returns `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] unless the rank is exactly 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.0.len() != 4 {
            return Err(TensorError::InvalidRank {
                expected: 4,
                actual: self.0.len(),
                op: "as_nchw",
            });
        }
        Ok((self.0[0], self.0[1], self.0[2], self.0[3]))
    }

    /// Interprets the shape as a matrix and returns `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] unless the rank is exactly 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.0.len() != 2 {
            return Err(TensorError::InvalidRank {
                expected: 2,
                actual: self.0.len(),
                op: "as_matrix",
            });
        }
        Ok((self.0[0], self.0[1]))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(&[1, 3, 8, 8]);
        assert_eq!(s.as_nchw().unwrap(), (1, 3, 8, 8));
        assert!(Shape::new(&[2, 2]).as_nchw().is_err());
    }

    #[test]
    fn matrix_accessor() {
        assert_eq!(Shape::new(&[4, 7]).as_matrix().unwrap(), (4, 7));
        assert!(Shape::new(&[4, 7, 1]).as_matrix().is_err());
    }

    #[test]
    fn conversions() {
        let from_slice: Shape = (&[1usize, 2][..]).into();
        let from_vec: Shape = vec![1usize, 2].into();
        assert_eq!(from_slice, from_vec);
        assert_eq!(from_slice.as_ref(), &[1, 2]);
        assert_eq!(format!("{from_slice}"), "[1, 2]");
    }
}
