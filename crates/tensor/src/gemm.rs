//! Blocked, register-tiled f32 GEMM — the compute core behind
//! [`Tensor::matmul`] and the fused layer kernels in `ptolemy-nn`.
//!
//! # Why blocking is bit-for-bit safe here
//!
//! The historical naive kernel ([`Tensor::matmul_naive`]) reduces every output
//! element in ascending-`k` order, skipping `a[i][k] == 0.0` terms.  The
//! blocked kernel tiles **M and N only** and walks `k` panels in ascending
//! order with the partial result held in (or reloaded into) the register
//! tile, so each output element still sees the exact same sequence of
//! `acc += a * b` operations — including the same sparsity skips (a skip is
//! observable when `b` holds an `inf`/`NaN`, since `0.0 * inf` is `NaN`).
//! M/N tiling and row-parallel partitioning assign every output element to
//! exactly one accumulator; nothing is ever re-associated, split into partial
//! trees, or contracted into FMAs.  That is the whole parity argument: the
//! blocked kernel performs the *identical* float operations in the
//! *identical* per-element order, so it is bit-for-bit the naive loop — a
//! property the proptest suite in `tests/gemm_parity.rs` pins.
//!
//! # Where the speed comes from
//!
//! The naive i-k-j loop re-reads and re-writes the whole output row on every
//! `k` step and streams all of B once per A row.  The microkernel instead
//! holds an `MR x NR` accumulator tile in registers across a whole `k` panel
//! (output traffic ~0) and packs A/B panels so the inner loop reads
//! contiguous, cache-resident memory (B traffic amortised over `MR` rows).
//! `NR` is chosen at build time by `build.rs` (16 on AVX/NEON targets, 8
//! otherwise); the choice affects speed only, never results.

use crate::parallel::{available_parallelism, par_row_chunks};
use crate::{Result, Tensor, TensorError};

/// Rows of the register tile.
pub(crate) const MR: usize = 4;

/// Columns of the register tile (build-time probe, see `build.rs`): wide
/// targets (256-bit vectors, or 32-register NEON) hold the 4x16 tile in
/// registers; baseline targets get 4x8 (eight 128-bit accumulators — enough
/// independent add chains to keep the FPU pipelined without spilling).
#[cfg(ptolemy_gemm_wide)]
pub(crate) const NR: usize = 16;
/// Columns of the register tile (build-time probe, see `build.rs`).
#[cfg(not(ptolemy_gemm_wide))]
pub(crate) const NR: usize = 8;

/// K-panel depth: one packed panel of B is `KC x NC` floats (L2-resident).
const KC: usize = 256;
/// Column-panel width of packed B.
const NC: usize = 256;
/// Row-panel height of packed A (`MC x KC` floats stay cache-resident).
const MC: usize = 64;

/// Below this `m * n * k` volume the packing setup outweighs its cache wins;
/// the naive loop is used instead (bit-identical results either way).
const SMALL_FLOPS: usize = 16 * 1024;

/// Above this `m * n * k` volume a standalone matmul fans rows out over the
/// cached core count (scoped-thread spawn costs dwarf smaller products).
const PARALLEL_FLOPS: usize = 1 << 20;

/// The shared accumulation core of both microkernel paths: `kc` ascending
/// steps of `acc[r][j] += a[k][r] * b[k][j]` over the full (zero-padded)
/// `MR x NR` tile.  Every bound is a compile-time constant so the accumulator
/// array is promoted to registers and the `j` loop vectorises.
///
/// With `SKIP`, `a == 0.0` rows are skipped exactly like the naive kernel's
/// sparsity skip; without it every term is accumulated (the dense-layer
/// contract, whose reference kernel never skipped).
#[inline(always)]
fn tile_accumulate<const SKIP: bool>(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    // chunks_exact gives the optimiser constant-length rows (no per-k bounds
    // checks in the hot loop).
    for (arow, brow) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let av = arow[r];
            // lint:allow(float-eq): sparsity skip mirroring the naive kernel bit-for-bit
            if SKIP && av == 0.0 {
                continue;
            }
            for j in 0..NR {
                acc[r][j] += av * brow[j];
            }
        }
    }
}

/// The register-tile microkernel: accumulates a `kc`-deep panel product into
/// an `mr x nr` corner of `c` (row stride `ldc`), loading the existing `c`
/// values first so accumulation stays in pure ascending-`k` order across
/// panels.  `a` is a packed `MR`-row micro-panel (`a[k * MR + r]`), `b` a
/// packed `NR`-column micro-panel (`b[k * NR + j]`), both zero-padded to full
/// tile size; the padded lanes are computed and discarded.
///
/// The full-tile path uses constant-size loads/stores: a dynamic-length
/// `copy_from_slice` takes the accumulator's address and pins it to the
/// stack, turning every `+=` into a memory round-trip — the constant-bound
/// loops below keep the tile in registers (this is where the kernel's speed
/// lives).  Edge tiles (`mr < MR` or `nr < NR`) take the dynamic-length path;
/// they are a vanishing fraction of the work at any profitable size.
fn microkernel<const SKIP: bool>(
    kc: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if mr == MR && nr == NR {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
        tile_accumulate::<SKIP>(kc, a, b, &mut acc);
        for (r, row) in acc.iter().enumerate() {
            c[r * ldc..r * ldc + NR].copy_from_slice(row);
        }
    } else {
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            row[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
        tile_accumulate::<SKIP>(kc, a, b, &mut acc);
        for (r, row) in acc.iter().enumerate().take(mr) {
            c[r * ldc..r * ldc + nr].copy_from_slice(&row[..nr]);
        }
    }
}

/// Packs `kc x jw` of B (starting at `(k0, j0)`) into `NR`-column micro-panels
/// (`into[(jr/NR) * kc * NR + k * NR + j]`), zero-padding the last panel.
/// With `TRANS`, B is `[n, k]` row-major and element `(kk, j)` reads
/// `b[j * ldb + kk]` — the pack does the transpose, so callers never
/// materialise Bᵀ.
fn pack_b<const TRANS: bool>(
    b: &[f32],
    ldb: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    jw: usize,
    into: &mut [f32],
) {
    for (panel, jr) in (0..jw).step_by(NR).enumerate() {
        let nr = NR.min(jw - jr);
        let dst = &mut into[panel * kc * NR..(panel + 1) * kc * NR];
        if nr < NR {
            dst.fill(0.0);
        }
        for k in 0..kc {
            let row = &mut dst[k * NR..k * NR + nr];
            if TRANS {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = b[(j0 + jr + j) * ldb + k0 + k];
                }
            } else {
                row.copy_from_slice(&b[(k0 + k) * ldb + j0 + jr..][..nr]);
            }
        }
    }
}

/// Packs `mc x kc` of A (starting at `(i0, k0)`, row stride `lda`) into
/// `MR`-row micro-panels (`into[(ir/MR) * kc * MR + k * MR + r]`),
/// zero-padding the last panel.
fn pack_a(a: &[f32], lda: usize, i0: usize, mc: usize, k0: usize, kc: usize, into: &mut [f32]) {
    for (panel, ir) in (0..mc).step_by(MR).enumerate() {
        let mr = MR.min(mc - ir);
        let dst = &mut into[panel * kc * MR..(panel + 1) * kc * MR];
        if mr < MR {
            dst.fill(0.0);
        }
        for r in 0..mr {
            let src = &a[(i0 + ir + r) * lda + k0..][..kc];
            for (k, v) in src.iter().enumerate() {
                dst[k * MR + r] = *v;
            }
        }
    }
}

/// The blocked GEMM driver: accumulates `A · op(B)` into `out` (row-major
/// `[m, n]`, already initialised by the caller — zeros for a plain product,
/// biases for the dense-layer kernel).  `k` panels run in ascending order and
/// every panel accumulates on top of the previous partials, so each output
/// element's reduction is one sequential ascending-`k` chain.
fn gemm_into<const SKIP: bool, const TRANS_B: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_max = KC.min(k);
    let mut apack = vec![0.0f32; MC.min(m).next_multiple_of(MR) * kc_max];
    let mut bpack = vec![0.0f32; NC.min(n).next_multiple_of(NR) * kc_max];
    let ldb = if TRANS_B { k } else { n };
    for j0 in (0..n).step_by(NC) {
        let jw = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            pack_b::<TRANS_B>(b, ldb, k0, kc, j0, jw, &mut bpack);
            for i0 in (0..m).step_by(MC) {
                let mc = MC.min(m - i0);
                pack_a(a, k, i0, mc, k0, kc, &mut apack);
                for (bpanel, jr) in (0..jw).step_by(NR).enumerate() {
                    let nr = NR.min(jw - jr);
                    let bmicro = &bpack[bpanel * kc * NR..(bpanel + 1) * kc * NR];
                    for (apanel, ir) in (0..mc).step_by(MR).enumerate() {
                        let mr = MR.min(mc - ir);
                        let amicro = &apack[apanel * kc * MR..(apanel + 1) * kc * MR];
                        microkernel::<SKIP>(
                            kc,
                            amicro,
                            bmicro,
                            &mut out[(i0 + ir) * n + j0 + jr..],
                            n,
                            mr,
                            nr,
                        );
                    }
                }
            }
        }
    }
}

/// The naive scalar reference kernel (the pre-microkernel [`Tensor::matmul`]
/// body): i-k-j loops with the ascending-`k`, zero-skipping reduction the
/// whole workspace's bit-parity contract is defined against.
pub(crate) fn matmul_naive_into(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            // lint:allow(float-eq): sparsity skip; +/-0.0 both contribute nothing
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

/// Serial blocked product `A · B` into a zeroed buffer, with the naive
/// kernel's sparsity skip.  Bit-for-bit identical to [`matmul_naive_into`].
pub(crate) fn matmul_blocked_into(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m * n * k <= SMALL_FLOPS {
        // Packing overhead dominates tiny products; same bits either way.
        matmul_naive_into(out, a, b, m, k, n);
    } else {
        gemm_into::<true, false>(out, a, b, m, k, n);
    }
}

/// Accumulates `A · Bᵀ` into `out` **on top of its existing contents** with
/// plain ascending-`k` accumulation and **no** sparsity skip — the
/// dense-layer kernel: `out` arrives pre-filled with broadcast biases, `b` is
/// the `[n, k]` row-major weight matrix (packed transposed on the fly).
///
/// Per element this is exactly `out[s][j] = bias[j] + Σ_k a[s][k] * b[j][k]`
/// in ascending `k` — bit-for-bit the historical dense loop, which
/// accumulated bias-first and never skipped zero activations.
pub fn gemm_nt_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_into::<false, true>(out, a, b, m, k, n);
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::IncompatibleShapes {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    Ok((m, k, n))
}

/// Serial blocked matrix product (rank-2 tensors) — the kernel behind
/// [`Tensor::matmul`], exposed for benchmarks that compare the serial and
/// parallel paths explicitly.
///
/// # Errors
///
/// Same shape errors as [`Tensor::matmul`].
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b)?;
    let mut out = vec![0.0f32; m * n];
    matmul_blocked_into(&mut out, a.as_slice(), b.as_slice(), m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Row-parallel blocked matrix product: output rows are partitioned over the
/// cached core count ([`available_parallelism`]) and each chunk runs the
/// serial blocked kernel — per-element arithmetic is untouched, so the result
/// is bit-for-bit [`matmul_blocked`] (and therefore the naive kernel).
///
/// Used by the fused batched conv kernel in `ptolemy-nn` and by
/// [`Tensor::matmul`] for large products; benchmarks call it directly.
///
/// # Errors
///
/// Same shape errors as [`Tensor::matmul`].
pub fn matmul_parallel(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b)?;
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    par_row_chunks(&mut out, m, n, |first_row, chunk| {
        let rows = chunk.len() / n.max(1);
        matmul_blocked_into(
            chunk,
            &av[first_row * k..(first_row + rows) * k],
            bv,
            rows,
            k,
            n,
        );
    });
    Tensor::from_vec(out, &[m, n])
}

/// `true` when a standalone `m x k x n` product is worth fanning out over
/// scoped threads (enough arithmetic to amortise the spawns, more than one
/// core cached).
pub(crate) fn parallel_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m >= 2 && m * n * k >= PARALLEL_FLOPS && available_parallelism() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn random(m: usize, n: usize, rng: &mut Rng64, zero_every: usize) -> Tensor {
        let data: Vec<f32> = (0..m * n)
            .enumerate()
            .map(|(i, _)| {
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    rng.normal()
                }
            })
            .collect();
        Tensor::from_vec(data, &[m, n]).unwrap()
    }

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = matmul_dims(a, b).unwrap();
        let mut out = vec![0.0f32; m * n];
        matmul_naive_into(&mut out, a.as_slice(), b.as_slice(), m, k, n);
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    fn assert_bits_equal(x: &Tensor, y: &Tensor) {
        assert_eq!(x.dims(), y.dims());
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn blocked_matches_naive_across_awkward_shapes() {
        let mut rng = Rng64::new(7);
        // Shapes straddling every tile boundary: tails in m, n and k panels.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC + 3, NR),
            (MR + 1, 2, NR + 1),
            (MC + 5, 19, NC + 9),
            (2 * MR, 300, 2 * NR + 3),
            (1, 64, 129),
            (65, 300, 1),
        ] {
            let a = random(m, k, &mut rng, 5);
            let b = random(k, n, &mut rng, 0);
            assert_bits_equal(&matmul_blocked(&a, &b).unwrap(), &naive(&a, &b));
            assert_bits_equal(&matmul_parallel(&a, &b).unwrap(), &naive(&a, &b));
        }
    }

    #[test]
    fn sparsity_skip_is_replicated_even_for_non_finite_b() {
        // The skip is observable: 0.0 * inf = NaN, so a kernel that "optimised
        // away" the skip (or failed to skip) would change bits here.
        let a = Tensor::from_vec(vec![0.0, 2.0, 1.0, 0.0], &[2, 2]).unwrap();
        let b =
            Tensor::from_vec(vec![f32::INFINITY, 1.0, 3.0, f32::NEG_INFINITY], &[2, 2]).unwrap();
        let reference = naive(&a, &b);
        assert_bits_equal(&matmul_blocked(&a, &b).unwrap(), &reference);
        assert_bits_equal(&matmul_parallel(&a, &b).unwrap(), &reference);
    }

    #[test]
    fn gemm_nt_accumulates_on_top_of_bias() {
        // out[s][j] = bias[j] + sum_k a[s][k] * b[j][k], ascending k.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bt = Tensor::from_vec(vec![1.0, 0.0, 1.0, 2.0, 1.0, 0.0], &[2, 3]).unwrap();
        let mut out = vec![0.5, -0.5, 0.5, -0.5];
        gemm_nt_into(&mut out, a.as_slice(), bt.as_slice(), 2, 3, 2);
        assert_eq!(out, vec![4.5, 3.5, 10.5, 12.5]);
    }

    #[test]
    fn gemm_nt_matches_scalar_reference_on_larger_shapes() {
        let mut rng = Rng64::new(11);
        let (m, k, n) = (9, 130, 17);
        let a = random(m, k, &mut rng, 4);
        let b = random(n, k, &mut rng, 0);
        let bias: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mut blocked = vec![0.0f32; m * n];
        for row in blocked.chunks_mut(n) {
            row.copy_from_slice(&bias);
        }
        gemm_nt_into(&mut blocked, a.as_slice(), b.as_slice(), m, k, n);
        for s in 0..m {
            for j in 0..n {
                let mut acc = bias[j];
                for kk in 0..k {
                    acc += a.as_slice()[s * k + kk] * b.as_slice()[j * k + kk];
                }
                assert_eq!(blocked[s * n + j].to_bits(), acc.to_bits(), "({s},{j})");
            }
        }
    }

    #[test]
    fn parallel_threshold_requires_size_and_cores() {
        assert!(!parallel_worthwhile(1, 4096, 4096));
        assert!(!parallel_worthwhile(8, 2, 2));
    }
}
