//! Blocked, register-tiled i8→i32 GEMM — the integer twin of [`crate::gemm`]
//! and the compute core of the quantized inference path.
//!
//! # Why blocking is bit-for-bit *free* here
//!
//! The f32 kernel in [`crate::gemm`] earns its parity the hard way: float
//! addition is non-associative, so the blocked kernel must replicate the
//! naive loop's ascending-`k` order and sparsity skips exactly.  Integer
//! addition is associative and the i8·i8→i32 accumulation is **exact** (no
//! rounding, ever), so this kernel has full freedom to reorder `k`, split
//! panels, skip zero terms or not — any schedule produces the same i32s as
//! the naive [`crate::quant::matmul_i8`] / [`crate::quant::matmul_i8_nt`]
//! loops.  Parity is by exactness, not by order replication; the proptest
//! suite in `tests/proptests.rs` pins it across shapes, sparsity and the
//! `i8::MIN` extreme anyway.
//!
//! # Where the speed comes from
//!
//! Same shape as the f32 kernel: an `MR x NR` i32 accumulator tile held in
//! registers across a whole `k` panel, with A/B packed into contiguous
//! i8 micro-panels.  Packed i8 panels are 4x denser than f32 ones, so the
//! same cache footprint covers 4x the operands — the bandwidth win that
//! makes int8 the serving fast path.

use crate::gemm::{parallel_worthwhile, MR, NR};
use crate::parallel::par_row_chunks;
use crate::quant::check_i8_dims;
use crate::Result;

/// K-panel depth (i8 panels are 4x denser than f32, but the deeper panel
/// keeps the packing loop structure identical to the f32 kernel).
const KC: usize = 256;
/// Column-panel width of packed B.
const NC: usize = 256;
/// Row-panel height of packed A.
const MC: usize = 64;

/// Below this `m * n * k` volume the packing setup outweighs its cache wins;
/// the naive loops run instead (same i32s either way — exactness).
const SMALL_IOPS: usize = 16 * 1024;

/// The accumulation core: `kc` steps of `acc[r][j] += a[k][r] * b[k][j]` over
/// the full zero-padded `MR x NR` tile, widening each i8 operand to i32.
/// Constant bounds keep the accumulator in registers and let the `j` loop
/// vectorise.  The `a == 0` skip mirrors the naive kernel's; with exact
/// integer accumulation it is a pure speed choice (skipped terms add 0).
#[inline(always)]
fn tile_accumulate_i8(kc: usize, a: &[i8], b: &[i8], acc: &mut [[i32; NR]; MR]) {
    for (arow, brow) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let av = i32::from(arow[r]);
            if av == 0 {
                continue;
            }
            for j in 0..NR {
                acc[r][j] += av * i32::from(brow[j]);
            }
        }
    }
}

/// The register-tile microkernel: accumulates a `kc`-deep panel product into
/// an `mr x nr` corner of `c` (row stride `ldc`), loading the existing i32
/// partials first.  `a` is a packed `MR`-row micro-panel (`a[k * MR + r]`),
/// `b` a packed `NR`-column micro-panel (`b[k * NR + j]`), both zero-padded;
/// padded lanes are computed and discarded.  Full tiles take the
/// constant-size load/store path (the accumulator stays in registers), edge
/// tiles the dynamic path.
fn microkernel_i8(kc: usize, a: &[i8], b: &[i8], c: &mut [i32], ldc: usize, mr: usize, nr: usize) {
    let mut acc = [[0i32; NR]; MR];
    if mr == MR && nr == NR {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
        tile_accumulate_i8(kc, a, b, &mut acc);
        for (r, row) in acc.iter().enumerate() {
            c[r * ldc..r * ldc + NR].copy_from_slice(row);
        }
    } else {
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            row[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
        tile_accumulate_i8(kc, a, b, &mut acc);
        for (r, row) in acc.iter().enumerate().take(mr) {
            c[r * ldc..r * ldc + nr].copy_from_slice(&row[..nr]);
        }
    }
}

/// Packs `kc x jw` of B (starting at `(k0, j0)`) into `NR`-column micro-panels,
/// zero-padding the last panel.  With `TRANS`, B is `[n, k]` row-major and
/// element `(kk, j)` reads `b[j * ldb + kk]` — the pack does the transpose,
/// so callers never materialise Bᵀ.
fn pack_b_i8<const TRANS: bool>(
    b: &[i8],
    ldb: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    jw: usize,
    into: &mut [i8],
) {
    for (panel, jr) in (0..jw).step_by(NR).enumerate() {
        let nr = NR.min(jw - jr);
        let dst = &mut into[panel * kc * NR..(panel + 1) * kc * NR];
        if nr < NR {
            dst.fill(0);
        }
        for k in 0..kc {
            let row = &mut dst[k * NR..k * NR + nr];
            if TRANS {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = b[(j0 + jr + j) * ldb + k0 + k];
                }
            } else {
                row.copy_from_slice(&b[(k0 + k) * ldb + j0 + jr..][..nr]);
            }
        }
    }
}

/// Packs `mc x kc` of A (starting at `(i0, k0)`, row stride `lda`) into
/// `MR`-row micro-panels, zero-padding the last panel.
fn pack_a_i8(a: &[i8], lda: usize, i0: usize, mc: usize, k0: usize, kc: usize, into: &mut [i8]) {
    for (panel, ir) in (0..mc).step_by(MR).enumerate() {
        let mr = MR.min(mc - ir);
        let dst = &mut into[panel * kc * MR..(panel + 1) * kc * MR];
        if mr < MR {
            dst.fill(0);
        }
        for r in 0..mr {
            let src = &a[(i0 + ir + r) * lda + k0..][..kc];
            for (k, v) in src.iter().enumerate() {
                dst[k * MR + r] = *v;
            }
        }
    }
}

/// The blocked integer GEMM driver: accumulates `A · op(B)` into `out`
/// (row-major `[m, n]` i32, caller-initialised — zeros for both public entry
/// points).  Panel order is a pure cache choice; exact i32 accumulation makes
/// every schedule produce identical results.
fn gemm_i8_into<const TRANS_B: bool>(
    out: &mut [i32],
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_max = KC.min(k);
    let mut apack = vec![0i8; MC.min(m).next_multiple_of(MR) * kc_max];
    let mut bpack = vec![0i8; NC.min(n).next_multiple_of(NR) * kc_max];
    let ldb = if TRANS_B { k } else { n };
    for j0 in (0..n).step_by(NC) {
        let jw = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            pack_b_i8::<TRANS_B>(b, ldb, k0, kc, j0, jw, &mut bpack);
            for i0 in (0..m).step_by(MC) {
                let mc = MC.min(m - i0);
                pack_a_i8(a, k, i0, mc, k0, kc, &mut apack);
                for (bpanel, jr) in (0..jw).step_by(NR).enumerate() {
                    let nr = NR.min(jw - jr);
                    let bmicro = &bpack[bpanel * kc * NR..(bpanel + 1) * kc * NR];
                    for (apanel, ir) in (0..mc).step_by(MR).enumerate() {
                        let mr = MR.min(mc - ir);
                        let amicro = &apack[apanel * kc * MR..(apanel + 1) * kc * MR];
                        microkernel_i8(
                            kc,
                            amicro,
                            bmicro,
                            &mut out[(i0 + ir) * n + j0 + jr..],
                            n,
                            mr,
                            nr,
                        );
                    }
                }
            }
        }
    }
}

/// Naive i-k-j reference loop (the [`crate::quant::matmul_i8`] body), used
/// below the blocking threshold — identical i32s either way.
fn naive_i8_into(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let aik = i32::from(a[i * k + kk]);
            if aik == 0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += aik * i32::from(*bv);
            }
        }
    }
}

/// Naive dot-product reference loop (the [`crate::quant::matmul_i8_nt`]
/// body), used below the blocking threshold.
fn naive_i8_nt_into(out: &mut [i32], a: &[i8], b: &[i8], k: usize, n: usize) {
    for (s, orow) in out.chunks_mut(n).enumerate() {
        let arow = &a[s * k..(s + 1) * k];
        for (o, brow) in orow.iter_mut().zip(b.chunks(k)) {
            let mut acc = 0i32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += i32::from(*av) * i32::from(*bv);
            }
            *o = acc;
        }
    }
}

/// Blocked integer product `A [m, k] · B [k, n]` accumulated into a zeroed
/// caller buffer.  Equal to [`crate::quant::matmul_i8`] by exactness.
pub fn matmul_i8_blocked_into(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m * n * k <= SMALL_IOPS {
        naive_i8_into(out, a, b, m, k, n);
    } else {
        gemm_i8_into::<false>(out, a, b, m, k, n);
    }
}

/// Blocked integer product `A [m, k] · Bᵀ` (B is `[n, k]` row-major, packed
/// transposed on the fly) accumulated into a zeroed caller buffer.  Equal to
/// [`crate::quant::matmul_i8_nt`] by exactness.
pub fn matmul_i8_blocked_nt_into(
    out: &mut [i32],
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    if m * n * k <= SMALL_IOPS {
        naive_i8_nt_into(out, a, b, k, n);
    } else {
        gemm_i8_into::<true>(out, a, b, m, k, n);
    }
}

/// Blocked integer GEMM: `A [m, k] · B [k, n]`, both row-major i8,
/// accumulated exactly in i32 — **bit-for-bit equal** to the naive
/// [`crate::quant::matmul_i8`] (integer accumulation is exact, so the blocked
/// schedule cannot change any result).
///
/// # Errors
///
/// Returns [`crate::TensorError::IncompatibleShapes`] if the slice lengths do
/// not match the stated dimensions (same contract as the naive kernel).
pub fn matmul_i8_blocked(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [k, n], "matmul_i8_blocked")?;
    let mut out = vec![0i32; m * n];
    matmul_i8_blocked_into(&mut out, a, b, m, k, n);
    Ok(out)
}

/// Blocked integer GEMM against a transposed right operand: `A [m, k] · Bᵀ`
/// where `B` is `[n, k]` row-major (the quantized dense kernel's natural
/// weight layout) — bit-for-bit equal to [`crate::quant::matmul_i8_nt`].
///
/// # Errors
///
/// Returns [`crate::TensorError::IncompatibleShapes`] if the slice lengths do
/// not match the stated dimensions.
pub fn matmul_i8_blocked_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [n, k], "matmul_i8_blocked_nt")?;
    let mut out = vec![0i32; m * n];
    matmul_i8_blocked_nt_into(&mut out, a, b, m, k, n);
    Ok(out)
}

/// Row-parallel blocked integer GEMM `A · B`: output rows are partitioned
/// over the cached core count and each chunk runs the serial blocked kernel.
/// Rows are independent, so this equals [`matmul_i8_blocked`] — which equals
/// the naive kernel by exactness.  Falls back to the serial kernel below the
/// parallel threshold.
///
/// # Errors
///
/// Returns [`crate::TensorError::IncompatibleShapes`] if the slice lengths do
/// not match the stated dimensions.
pub fn matmul_i8_parallel(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [k, n], "matmul_i8_parallel")?;
    let mut out = vec![0i32; m * n];
    if parallel_worthwhile(m, k, n) {
        par_row_chunks(&mut out, m, n, |first_row, chunk| {
            let rows = chunk.len() / n.max(1);
            matmul_i8_blocked_into(
                chunk,
                &a[first_row * k..(first_row + rows) * k],
                b,
                rows,
                k,
                n,
            );
        });
    } else {
        matmul_i8_blocked_into(&mut out, a, b, m, k, n);
    }
    Ok(out)
}

/// Row-parallel blocked integer GEMM `A · Bᵀ` (B `[n, k]` row-major): the
/// quantized batched-dense kernel, partitioning the batch rows of `A` over
/// the cached core count.  Equal to [`matmul_i8_blocked_nt`] by exactness.
///
/// # Errors
///
/// Returns [`crate::TensorError::IncompatibleShapes`] if the slice lengths do
/// not match the stated dimensions.
pub fn matmul_i8_parallel_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [n, k], "matmul_i8_parallel_nt")?;
    let mut out = vec![0i32; m * n];
    if parallel_worthwhile(m, k, n) {
        par_row_chunks(&mut out, m, n, |first_row, chunk| {
            let rows = chunk.len() / n.max(1);
            matmul_i8_blocked_nt_into(
                chunk,
                &a[first_row * k..(first_row + rows) * k],
                b,
                rows,
                k,
                n,
            );
        });
    } else {
        matmul_i8_blocked_nt_into(&mut out, a, b, m, k, n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{matmul_i8, matmul_i8_nt};
    use crate::Rng64;

    fn random_i8(len: usize, rng: &mut Rng64, zero_every: usize) -> Vec<i8> {
        (0..len)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    0
                } else {
                    // Full i8 range including -128: the kernel must handle
                    // values the quantizer itself never produces.
                    let byte = (rng.next_u64() & 0xff) as i64;
                    i8::try_from(byte - 128).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_across_awkward_shapes() {
        let mut rng = Rng64::new(17);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC + 3, NR),
            (MR + 1, 2, NR + 1),
            (MC + 5, 19, NC + 9),
            (2 * MR, 300, 2 * NR + 3),
            (1, 64, 129),
            (65, 300, 1),
        ] {
            let a = random_i8(m * k, &mut rng, 5);
            let b = random_i8(k * n, &mut rng, 0);
            let bt = random_i8(n * k, &mut rng, 3);
            assert_eq!(
                matmul_i8_blocked(&a, &b, m, k, n).unwrap(),
                matmul_i8(&a, &b, m, k, n).unwrap(),
                "({m},{k},{n})"
            );
            assert_eq!(
                matmul_i8_parallel(&a, &b, m, k, n).unwrap(),
                matmul_i8(&a, &b, m, k, n).unwrap(),
                "parallel ({m},{k},{n})"
            );
            assert_eq!(
                matmul_i8_blocked_nt(&a, &bt, m, k, n).unwrap(),
                matmul_i8_nt(&a, &bt, m, k, n).unwrap(),
                "nt ({m},{k},{n})"
            );
            assert_eq!(
                matmul_i8_parallel_nt(&a, &bt, m, k, n).unwrap(),
                matmul_i8_nt(&a, &bt, m, k, n).unwrap(),
                "parallel nt ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn i8_min_saturation_is_handled() {
        // -128 * -128 = 16384 per term; widening to i32 before the multiply
        // must keep every partial exact.
        let k = 64;
        let a = vec![i8::MIN; k];
        let b = vec![i8::MIN; k];
        let out = matmul_i8_blocked(&a, &b, 1, k, 1).unwrap();
        assert_eq!(out, vec![16384 * k as i32]);
        let out_nt = matmul_i8_blocked_nt(&a, &b, 1, k, 1).unwrap();
        assert_eq!(out_nt, vec![16384 * k as i32]);
    }

    #[test]
    fn shape_errors_match_the_naive_contract() {
        let a = vec![0i8; 6];
        let b = vec![0i8; 6];
        assert!(matmul_i8_blocked(&a, &b, 2, 2, 2).is_err());
        assert!(matmul_i8_blocked_nt(&a, &b, 3, 3, 2).is_err());
        assert!(matmul_i8_parallel(&a, &b, 2, 2, 2).is_err());
        assert!(matmul_i8_parallel_nt(&a, &b, 3, 3, 2).is_err());
    }
}
