use std::fmt;

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the single numerical container used throughout the workspace: images,
/// feature maps, kernels, partial sums and gradients are all `Tensor`s.  The type is
/// deliberately simple — owned storage, no views, no broadcasting beyond the few
/// operations the DNN substrate needs — which keeps the inference and extraction
/// code easy to audit against the paper's description.
///
/// # Example
///
/// ```
/// use ptolemy_tensor::Tensor;
///
/// # fn main() -> Result<(), ptolemy_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from existing data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal the
    /// number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let shape = Shape::new(shape);
        if shape.len() != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.dims().to_vec(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Reshapes in place, consuming the tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data, shape)
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().copied().map(f).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Index of the largest element (ties resolved to the first occurrence).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has no elements.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::Empty("argmax"));
        }
        let mut best = 0;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has no elements.
    pub fn max(&self) -> Result<f32> {
        if self.data.is_empty() {
            return Err(TensorError::Empty("max"));
        }
        Ok(self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max))
    }

    /// Smallest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has no elements.
    pub fn min(&self) -> Result<f32> {
        if self.data.is_empty() {
            return Err(TensorError::Empty("min"));
        }
        Ok(self.data.iter().copied().fold(f32::INFINITY, f32::min))
    }

    /// Euclidean (L2) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Largest absolute value (L∞ norm); 0.0 for an empty tensor.
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f32::max)
    }

    /// Mean squared difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "mse")?;
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok(sum / self.data.len() as f32)
    }

    /// Stacks same-shaped samples into one batched tensor with a new leading
    /// batch dimension (`[B, ...sample_shape]`, NCHW convention for images).
    ///
    /// The samples are copied back-to-back, so `slice_batch(b)` recovers
    /// sample `b` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty sample list and
    /// [`TensorError::IncompatibleShapes`] if the samples disagree on shape.
    pub fn stack(samples: &[Tensor]) -> Result<Tensor> {
        let first = samples.first().ok_or(TensorError::Empty("stack"))?;
        let mut data = Vec::with_capacity(samples.len() * first.len());
        for sample in samples {
            first.check_same_shape(sample, "stack")?;
            data.extend_from_slice(sample.as_slice());
        }
        let mut dims = Vec::with_capacity(first.dims().len() + 1);
        dims.push(samples.len());
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Copies sample `index` out of a batched tensor (`[B, ...]`), dropping the
    /// leading batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if the tensor is rank 0 and
    /// [`TensorError::IndexOutOfBounds`] if `index` exceeds the batch size.
    pub fn slice_batch(&self, index: usize) -> Result<Tensor> {
        let dims = self.dims();
        let (&batch, sample_dims) = dims.split_first().ok_or(TensorError::InvalidRank {
            expected: 1,
            actual: 0,
            op: "slice_batch",
        })?;
        if index >= batch {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![index],
                shape: dims.to_vec(),
            });
        }
        let sample_len = sample_dims.iter().product::<usize>();
        let data = self.data[index * sample_len..(index + 1) * sample_len].to_vec();
        Tensor::from_vec(data, sample_dims)
    }

    /// Splits a batched tensor (`[B, ...]`) back into its `B` samples
    /// (the inverse of [`Tensor::stack`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] if the tensor is rank 0.
    pub fn unstack(&self) -> Result<Vec<Tensor>> {
        let batch = *self.dims().first().ok_or(TensorError::InvalidRank {
            expected: 1,
            actual: 0,
            op: "unstack",
        })?;
        (0..batch).map(|b| self.slice_batch(b)).collect()
    }

    pub(crate) fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.len() > 8 { ", …" } else { "" }
        )
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
        let eye = Tensor::eye(3);
        assert_eq!(eye.get(&[1, 1]).unwrap(), 1.0);
        assert_eq!(eye.get(&[1, 2]).unwrap(), 0.0);
        assert_eq!(eye.sum(), 3.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.min().unwrap(), -2.0);
        assert_eq!(t.argmax().unwrap(), 2);
        assert_eq!(t.l1_norm(), 6.0);
        assert_eq!(t.linf_norm(), 3.0);
        assert!((t.l2_norm() - 14.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0]);
        assert!(t.argmax().is_err());
        assert!(t.max().is_err());
        assert!(t.min().is_err());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn mse_between_tensors() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 2.0], &[2]).unwrap();
        assert_eq!(a.mse(&b).unwrap(), 2.0);
        let c = Tensor::zeros(&[3]);
        assert!(a.mse(&c).is_err());
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 2.0]);
        let mut u = t.clone();
        u.map_inplace(|v| v * 2.0);
        assert_eq!(u.as_slice(), &[-2.0, 4.0]);
    }

    #[test]
    fn stack_and_unstack_roundtrip() {
        let samples: Vec<Tensor> = (0..3).map(|b| Tensor::full(&[2, 2], b as f32)).collect();
        let batch = Tensor::stack(&samples).unwrap();
        assert_eq!(batch.dims(), &[3, 2, 2]);
        for (b, sample) in samples.iter().enumerate() {
            assert_eq!(batch.slice_batch(b).unwrap(), *sample);
        }
        assert_eq!(batch.unstack().unwrap(), samples);
        assert!(batch.slice_batch(3).is_err());
    }

    #[test]
    fn stack_rejects_empty_and_mismatched_samples() {
        assert!(Tensor::stack(&[]).is_err());
        let mixed = [Tensor::zeros(&[2]), Tensor::zeros(&[3])];
        assert!(Tensor::stack(&mixed).is_err());
        // Rank-0 tensors cannot be unstacked.
        assert!(Tensor::from_vec(vec![1.0], &[]).unwrap().unstack().is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[10]);
        assert!(format!("{t}").contains("Tensor"));
        assert!(!format!("{:?}", Tensor::default()).is_empty());
    }
}
