//! # ptolemy-tensor
//!
//! A small, dependency-light tensor library used as the numerical substrate of the
//! Ptolemy reproduction.  It provides row-major `f32` tensors with NCHW helpers,
//! matrix multiplication, `im2col`/`col2im` lowering for convolutions, seeded random
//! initialisation, and the element-wise operations the DNN substrate
//! (`ptolemy-nn`) and the attack generators (`ptolemy-attacks`) need.
//!
//! The library intentionally avoids BLAS or SIMD back-ends: everything the paper's
//! evaluation needs runs at laptop scale, and a pure-Rust implementation keeps the
//! reproduction self-contained and portable.
//!
//! # Example
//!
//! ```
//! use ptolemy_tensor::Tensor;
//!
//! # fn main() -> Result<(), ptolemy_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod im2col;
mod init;
mod ops;
mod shape;
mod tensor;

pub use error::TensorError;
pub use im2col::{col2im, im2col, im2col_batch, Conv2dGeometry};
pub use init::{Initializer, Rng64};
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
