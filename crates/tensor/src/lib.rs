//! # ptolemy-tensor
//!
//! A small, dependency-light tensor library used as the numerical substrate of the
//! Ptolemy reproduction.  It provides row-major `f32` tensors with NCHW helpers,
//! matrix multiplication, `im2col`/`col2im` lowering for convolutions, seeded random
//! initialisation, and the element-wise operations the DNN substrate
//! (`ptolemy-nn`) and the attack generators (`ptolemy-attacks`) need.
//!
//! The library intentionally avoids external BLAS back-ends: a pure-Rust
//! implementation keeps the reproduction self-contained and portable.  Raw
//! speed comes from the in-tree blocked, register-tiled GEMM microkernel
//! ([`gemm`]) — bit-for-bit identical to the naive reference loop — plus a
//! symmetric int8 quantization module ([`quant`]) for the integer inference
//! path.
//!
//! # Example
//!
//! ```
//! use ptolemy_tensor::Tensor;
//!
//! # fn main() -> Result<(), ptolemy_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod gemm;
pub mod gemm_i8;
mod im2col;
mod im2col_i8;
mod init;
mod ops;
pub mod parallel;
pub mod quant;
mod shape;
mod tensor;

pub use error::TensorError;
pub use gemm::{gemm_nt_into, matmul_blocked, matmul_parallel};
pub use gemm_i8::{matmul_i8_blocked, matmul_i8_blocked_nt, matmul_i8_parallel};
pub use im2col::{col2im, im2col, im2col_batch, Conv2dGeometry};
pub use im2col_i8::{im2col_i8, im2col_i8_batch};
pub use init::{Initializer, Rng64};
pub use parallel::{available_parallelism, par_row_chunks};
pub use quant::{max_abs, quantize_slice, QuantParams};
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
