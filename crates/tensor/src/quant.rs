//! Symmetric int8 quantization: scales, saturating conversion, and the i32
//! integer GEMMs behind the quantized inference path.
//!
//! This module is the **only** place in the workspace allowed to perform the
//! lossy `as i8` / `as u8` saturating casts (enforced by the `ptolemy-lint`
//! `raw-numeric-cast` rule), so every rounding decision in the quantization
//! story is auditable in one file.
//!
//! The scheme is plain symmetric per-tensor quantization: a tensor with
//! max-abs `A` maps through `q = round(x / s)` with scale `s = A / 127`, so
//! values land in `[-127, 127]` (−128 is never produced, keeping the scheme
//! symmetric).  Products accumulate in `i32` — with `k` up to ~10⁵ the sum of
//! `127 * 127` terms stays far below `i32::MAX`, so integer accumulation is
//! exact and the quantized path is bit-deterministic across runs and thread
//! counts.  Accuracy is a *contract measured by benchmarks* (agreement rate,
//! AUC delta in `quantized_detect`), never bit parity with f32.

use crate::{Result, Tensor, TensorError};

/// Symmetric per-tensor quantization parameters (zero-point is always 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Builds parameters that map `[-max_abs, max_abs]` onto `[-127, 127]`.
    ///
    /// A non-finite or non-positive `max_abs` (an all-zero calibration
    /// tensor, say) degenerates to scale 1.0 so quantizing zeros stays a
    /// well-defined no-op.
    #[must_use]
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs / 127.0
        } else {
            1.0
        };
        QuantParams { scale }
    }

    /// The dequantization step size (`x ≈ q * scale`).
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value: round-to-nearest (ties away from zero, the
    /// `f32::round` contract) then saturate to `[-127, 127]`.
    #[must_use]
    pub fn quantize(&self, x: f32) -> i8 {
        // lint:allow(raw-numeric-cast): the audited saturating quantization cast
        (x / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one value.
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        f32::from(q) * self.scale
    }
}

/// Largest absolute value in a slice (0.0 for an empty slice; NaNs are
/// ignored so one poisoned activation cannot zero out a whole layer's range).
#[must_use]
pub fn max_abs(values: &[f32]) -> f32 {
    values
        .iter()
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0, f32::max)
}

/// Quantizes a slice with the given parameters.
#[must_use]
pub fn quantize_slice(values: &[f32], params: QuantParams) -> Vec<i8> {
    values.iter().map(|v| params.quantize(*v)).collect()
}

/// Dequantizes a slice with the given parameters.
#[must_use]
pub fn dequantize_slice(values: &[i8], params: QuantParams) -> Vec<f32> {
    values.iter().map(|q| params.dequantize(*q)).collect()
}

pub(crate) fn check_i8_dims(
    a_len: usize,
    b_len: usize,
    a_dims: [usize; 2],
    b_dims: [usize; 2],
    op: &'static str,
) -> Result<()> {
    if a_len != a_dims[0] * a_dims[1] || b_len != b_dims[0] * b_dims[1] {
        return Err(TensorError::IncompatibleShapes {
            lhs: a_dims.to_vec(),
            rhs: b_dims.to_vec(),
            op,
        });
    }
    Ok(())
}

/// Integer GEMM: `A [m, k] · B [k, n]`, both row-major i8, accumulated
/// exactly in i32.  The quantized conv kernel (`qweight · qcolumns`).
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if the slice lengths do not
/// match the stated dimensions.
pub fn matmul_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [k, n], "matmul_i8")?;
    let mut out = vec![0i32; m * n];
    // Same i-k-j order as the f32 kernels; integer adds are associative, so
    // order is a pure cache choice here.
    for i in 0..m {
        for kk in 0..k {
            let aik = i32::from(a[i * k + kk]);
            if aik == 0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += aik * i32::from(*bv);
            }
        }
    }
    Ok(out)
}

/// Integer GEMM against a transposed right operand: `A [m, k] · Bᵀ` where `B`
/// is `[n, k]` row-major — the quantized dense kernel (`B` is the weight
/// matrix in its natural layout).  Accumulated exactly in i32.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if the slice lengths do not
/// match the stated dimensions.
pub fn matmul_i8_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_i8_dims(a.len(), b.len(), [m, k], [n, k], "matmul_i8_nt")?;
    let mut out = vec![0i32; m * n];
    for (s, orow) in out.chunks_mut(n).enumerate() {
        let arow = &a[s * k..(s + 1) * k];
        for (o, brow) in orow.iter_mut().zip(b.chunks(k)) {
            let mut acc = 0i32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += i32::from(*av) * i32::from(*bv);
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// Convenience: max-abs of a tensor's elements.
#[must_use]
pub fn tensor_max_abs(t: &Tensor) -> f32 {
    max_abs(t.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let params = QuantParams::from_max_abs(4.0);
        for i in -400..=400 {
            let x = i as f32 / 100.0;
            let back = params.dequantize(params.quantize(x));
            assert!((x - back).abs() <= params.scale() / 2.0 + 1e-6, "{x}");
        }
    }

    #[test]
    fn quantize_saturates_and_stays_symmetric() {
        let params = QuantParams::from_max_abs(1.0);
        assert_eq!(params.quantize(10.0), 127);
        assert_eq!(params.quantize(-10.0), -127);
        assert_eq!(params.quantize(0.0), 0);
        assert_eq!(params.quantize(f32::NAN), 0);
    }

    #[test]
    fn degenerate_ranges_fall_back_to_unit_scale() {
        for bad in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            let params = QuantParams::from_max_abs(bad);
            assert_eq!(params.scale(), 1.0);
            assert_eq!(params.quantize(0.0), 0);
        }
    }

    #[test]
    fn max_abs_ignores_nans() {
        assert_eq!(max_abs(&[1.0, -3.0, f32::NAN, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn integer_gemms_match_a_scalar_reference() {
        let a: Vec<i8> = vec![1, -2, 3, 0, 5, -6];
        let b: Vec<i8> = vec![7, -8, 9, 10, -11, 12];
        // A [2,3] · B [3,2]
        let c = matmul_i8(&a, &b, 2, 3, 2).unwrap();
        assert_eq!(c, vec![-44, 8, 111, -22]);
        // A [2,3] · Bt where B is [2,3]: B rows are (7,-8,9), (10,-11,12).
        let c_nt = matmul_i8_nt(&a, &b, 2, 3, 2).unwrap();
        assert_eq!(c_nt, vec![50, 68, -94, -127]);
        assert!(matmul_i8(&a, &b, 2, 2, 2).is_err());
        assert!(matmul_i8_nt(&a, &b, 3, 3, 2).is_err());
    }

    #[test]
    fn slice_round_trip() {
        let params = QuantParams::from_max_abs(2.0);
        let xs = vec![-2.0, -1.0, 0.0, 0.5, 2.0];
        let qs = quantize_slice(&xs, params);
        assert_eq!(qs, vec![-127, -64, 0, 32, 127]);
        let back = dequantize_slice(&qs, params);
        for (x, b) in xs.iter().zip(&back) {
            assert!((x - b).abs() <= params.scale() / 2.0);
        }
    }
}
