use std::fmt;

/// Error type returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    ShapeMismatch {
        /// Shape that was requested.
        expected: Vec<usize>,
        /// Number of elements actually available.
        actual: usize,
    },
    /// Two tensors that must share a shape (or a compatible shape) do not.
    IncompatibleShapes {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Operation being attempted.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// Offending index.
        index: Vec<usize>,
        /// Tensor shape.
        shape: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    InvalidRank {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Operation being attempted.
        op: &'static str,
    },
    /// A convolution / pooling geometry is invalid (e.g. kernel larger than input).
    InvalidGeometry(String),
    /// The tensor is empty where a non-empty tensor is required.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => write!(
                f,
                "shape {expected:?} implies {} elements but {actual} were provided",
                expected.iter().product::<usize>()
            ),
            TensorError::IncompatibleShapes { lhs, rhs, op } => {
                write!(f, "incompatible shapes {lhs:?} and {rhs:?} for {op}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidRank {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, tensor has rank {actual}"),
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Empty(op) => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            TensorError::ShapeMismatch {
                expected: vec![2, 2],
                actual: 3,
            },
            TensorError::IncompatibleShapes {
                lhs: vec![2],
                rhs: vec![3],
                op: "add",
            },
            TensorError::IndexOutOfBounds {
                index: vec![5],
                shape: vec![2],
            },
            TensorError::InvalidRank {
                expected: 2,
                actual: 1,
                op: "matmul",
            },
            TensorError::InvalidGeometry("kernel too large".into()),
            TensorError::Empty("argmax"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
