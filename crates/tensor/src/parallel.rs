//! Shared scoped-thread helpers: the cached core count and the row-chunk
//! partitioner every parallel kernel in the workspace builds on.
//!
//! These lived in `ptolemy-nn` while only the fused batch kernels
//! parallelised; they moved down into the tensor crate so that large
//! standalone [`crate::Tensor::matmul`] calls can fan rows out too.
//! `ptolemy_nn::available_parallelism` remains the workspace-facing accessor
//! and delegates here.

use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

/// Cached [`std::thread::available_parallelism`] (clamped to at least 1).
///
/// The std lookup re-reads cgroup state on Linux — microseconds per call, far
/// too slow to query per GEMM or per layer on hot paths.  Every crate that
/// fans work out over scoped threads shares this single cached read.
pub fn available_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        // lint:allow(direct-available-parallelism): the cached accessor itself primes the cache
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` over contiguous row chunks of `out` (a row-major `[rows, row_len]`
/// buffer), fanning the chunks out over scoped threads.
///
/// `f(first_row, chunk)` fills rows `first_row ..` of its chunk.  Each row is
/// computed by exactly one invocation, so per-element arithmetic is identical
/// to a serial pass — threading partitions the output, never a reduction.
/// Falls back to one serial call when only one core is available (or the work
/// is a single row).
///
/// Generic over the element type so the f32 kernels (`&mut [f32]`) and the
/// int8 GEMM's i32 accumulator buffers (`&mut [i32]`) share one partitioner.
pub fn par_row_chunks<T, F>(out: &mut [T], rows: usize, row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    let threads = available_parallelism().min(rows);
    if threads <= 1 || row_len == 0 {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    thread::scope(|scope| {
        let f = &f;
        for (i, chunk) in out.chunks_mut(chunk_rows * row_len).enumerate() {
            scope.spawn(move || f(i * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_at_least_one_and_stable() {
        let first = available_parallelism();
        assert!(first >= 1);
        assert_eq!(first, available_parallelism());
    }

    #[test]
    fn par_row_chunks_covers_every_row_once() {
        let rows = 11;
        let row_len = 3;
        let mut out = vec![0.0f32; rows * row_len];
        par_row_chunks(&mut out, rows, row_len, |first_row, chunk| {
            for (local, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + local) as f32;
                }
            }
        });
        for (i, row) in out.chunks(row_len).enumerate() {
            assert!(row.iter().all(|v| *v == i as f32));
        }
    }

    #[test]
    fn zero_row_len_is_a_single_serial_call() {
        let mut out: Vec<f32> = Vec::new();
        // Serial fallback passes the whole (empty) buffer exactly once.
        par_row_chunks(&mut out, 0, 0, |first, chunk| {
            assert_eq!(first, 0);
            assert!(chunk.is_empty());
        });
    }
}
