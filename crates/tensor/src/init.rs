//! Seeded random number generation and weight initialisation.
//!
//! All randomness in the workspace flows through [`Rng64`], a small xoshiro-style
//! PRNG, so every experiment is reproducible from a single seed without pulling the
//! full `rand` machinery into the hot paths.  (`rand`/`rand_chacha` are still used
//! where distributions beyond uniform/normal are convenient.)

use crate::{Result, Tensor};

/// A deterministic 64-bit PRNG (splitmix64-seeded xorshift256**-style generator).
///
/// # Example
///
/// ```
/// use ptolemy_tensor::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: [u64; 4],
    cached_normal: Option<f32>,
}

impl Rng64 {
    /// Creates a generator from a seed.  Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into four non-zero words.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng64 {
            state: [next(), next(), next(), next()],
            cached_normal: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.  Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Standard normal sample (Box–Muller, cached pair).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.cached_normal.take() {
            return v;
        }
        let u1 = self.next_f32().max(1e-9);
        let u2 = self.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent generator (useful for per-worker streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

/// Weight-initialisation schemes for the DNN substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
    XavierUniform {
        /// Fan-in of the layer.
        fan_in: usize,
        /// Fan-out of the layer.
        fan_out: usize,
    },
    /// He/Kaiming normal: std = sqrt(2 / fan_in), suited to ReLU networks.
    HeNormal {
        /// Fan-in of the layer.
        fan_in: usize,
    },
}

impl Initializer {
    /// Creates a tensor of the requested shape using this scheme.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from tensor construction (cannot occur for valid
    /// shapes).
    pub fn build(&self, shape: &[usize], rng: &mut Rng64) -> Result<Tensor> {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = match self {
            Initializer::Zeros => vec![0.0; n],
            Initializer::Uniform(limit) => (0..n).map(|_| rng.uniform(-limit, *limit)).collect(),
            Initializer::XavierUniform { fan_in, fan_out } => {
                let limit = (6.0 / (*fan_in as f32 + *fan_out as f32)).sqrt();
                (0..n).map(|_| rng.uniform(-limit, limit)).collect()
            }
            Initializer::HeNormal { fan_in } => {
                let std = (2.0 / *fan_in as f32).sqrt();
                (0..n).map(|_| rng.normal() * std).collect()
            }
        };
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng64::new(1);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let u = rng.next_f32();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = Rng64::new(2);
        assert_eq!(rng.below(0), 0);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng64::new(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn initializers_produce_expected_statistics() {
        let mut rng = Rng64::new(5);
        let zeros = Initializer::Zeros.build(&[10, 10], &mut rng).unwrap();
        assert_eq!(zeros.sum(), 0.0);

        let he = Initializer::HeNormal { fan_in: 100 }
            .build(&[100, 100], &mut rng)
            .unwrap();
        let std_expected = (2.0f32 / 100.0).sqrt();
        let var: f32 = he.as_slice().iter().map(|v| v * v).sum::<f32>() / he.len() as f32;
        assert!((var.sqrt() - std_expected).abs() < 0.02);

        let xavier = Initializer::XavierUniform {
            fan_in: 50,
            fan_out: 50,
        }
        .build(&[50, 50], &mut rng)
        .unwrap();
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(xavier.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(11);
        let mut b = a.fork();
        // The forked stream should not simply mirror the parent.
        let pa: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_ne!(pa, pb);
    }
}
