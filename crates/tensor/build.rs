//! Build-time tile autodetect for the blocked GEMM microkernel.
//!
//! The microkernel accumulates an `MR x NR` register tile; `NR` should be
//! wide enough that the accumulator rows form enough independent add chains
//! to keep the FPU pipelined, without spilling the tile out of registers.
//! Targets with 256-bit vector units (or 32-register NEON) get 16-wide tiles
//! (`ptolemy_gemm_wide`), everything else the 8-wide tile.  The choice is a
//! pure performance knob: both tiles reduce every output element in the
//! identical sequential-k order, so results are bit-for-bit the same either
//! way.

fn main() {
    println!("cargo:rustc-check-cfg=cfg(ptolemy_gemm_wide)");
    let features = std::env::var("CARGO_CFG_TARGET_FEATURE").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    // avx => 256-bit f32 lanes on x86-64; NEON (always present on aarch64)
    // handles an 8-wide tile as two 128-bit registers.
    let wide = features.split(',').any(|f| f == "avx") || arch == "aarch64";
    if wide {
        println!("cargo:rustc-cfg=ptolemy_gemm_wide");
    }
    println!("cargo:rerun-if-changed=build.rs");
}
