//! Property-based bit-parity suite for the blocked GEMM microkernel and
//! error-bound checks for the int8 quantization round trip.
//!
//! These tests pin the workspace's central kernel invariant: the blocked,
//! register-tiled kernel (and its row-parallel variant) must be **bit-for-bit
//! identical** to the naive scalar triple loop — not approximately equal —
//! across shapes that straddle every tile boundary, including K ∈ {0 is
//! unrepresentable, 1}, M/N that are not multiples of the register tile, and
//! skinny row/column-vector products.

use proptest::prelude::*;
use ptolemy_tensor::gemm_i8::matmul_i8_parallel_nt;
use ptolemy_tensor::quant::{dequantize_slice, matmul_i8, matmul_i8_nt};
use ptolemy_tensor::{
    gemm_nt_into, matmul_blocked, matmul_i8_blocked, matmul_i8_blocked_nt, matmul_i8_parallel,
    matmul_parallel, quantize_slice, QuantParams, Rng64, Tensor,
};

/// Random `[rows, cols]` tensor with zeros sprinkled in so the sparsity-skip
/// branch of the kernel is exercised alongside the dense lanes.
fn random_matrix(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Tensor {
    let mut rng = Rng64::new(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                rng.uniform(-2.0, 2.0)
            }
        })
        .collect();
    Tensor::from_vec(data, &[rows, cols]).unwrap()
}

/// Random i8 operand mixing ordinary codes with sprinkled zeros (the naive
/// kernel's sparsity-skip branch) and `i8::MIN`/`i8::MAX` extremes, so the
/// parity suite covers the saturation corners the quantizer itself never
/// emits (codes are clamped to ±127, but raw GEMM operands are not).
fn random_i8(len: usize, seed: u64, zero_every: usize) -> Vec<i8> {
    let mut rng = Rng64::new(seed);
    (0..len)
        .map(|i| {
            if zero_every > 0 && i % zero_every == 0 {
                0
            } else if i % 13 == 4 {
                i8::MIN
            } else if i % 17 == 9 {
                i8::MAX
            } else {
                rng.uniform(-127.0, 127.0) as i32 as i8
            }
        })
        .collect()
}

fn assert_bits_equal(
    _label: &str,
    x: &Tensor,
    y: &Tensor,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(x.dims(), y.dims());
    for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked and row-parallel kernels are bit-identical to the naive loop
    /// for arbitrary small-to-medium shapes, including M/N far from tile
    /// multiples and K = 1.
    #[test]
    fn blocked_and_parallel_match_naive_bit_for_bit(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u64>(),
        zero_every in 0usize..6,
    ) {
        let a = random_matrix(m, k, seed, zero_every);
        let b = random_matrix(k, n, seed.wrapping_add(1), 0);
        let naive = a.matmul_naive(&b).unwrap();
        assert_bits_equal("matmul", &a.matmul(&b).unwrap(), &naive)?;
        assert_bits_equal("blocked", &matmul_blocked(&a, &b).unwrap(), &naive)?;
        assert_bits_equal("parallel", &matmul_parallel(&a, &b).unwrap(), &naive)?;
    }

    /// Skinny shapes: row vectors, column vectors and K=1 outer products all
    /// route through the same parity-pinned kernel.
    #[test]
    fn skinny_shapes_match_naive(dim in 1usize..200, seed in any::<u64>()) {
        for (m, k, n) in [(1, dim, 7), (7, dim, 1), (dim, 1, 5), (1, 1, dim)] {
            let a = random_matrix(m, k, seed, 3);
            let b = random_matrix(k, n, seed.wrapping_add(9), 0);
            let naive = a.matmul_naive(&b).unwrap();
            assert_bits_equal("skinny", &matmul_blocked(&a, &b).unwrap(), &naive)?;
            assert_bits_equal("skinny-par", &matmul_parallel(&a, &b).unwrap(), &naive)?;
        }
    }

    /// Shapes straddling the 64/256-sized cache panels: one past, one short.
    #[test]
    fn panel_boundary_shapes_match_naive(offset in 0usize..4, seed in any::<u64>()) {
        let (m, k, n) = (64 + offset, 256 + offset, 17);
        let a = random_matrix(m, k, seed, 7);
        let b = random_matrix(k, n, seed.wrapping_add(3), 0);
        let naive = a.matmul_naive(&b).unwrap();
        assert_bits_equal("panel", &a.matmul(&b).unwrap(), &naive)?;
    }

    /// The dense-layer kernel: `gemm_nt_into` over a bias-prefilled buffer is
    /// bit-identical to the scalar bias-first accumulation loop it replaced.
    #[test]
    fn gemm_nt_matches_bias_first_scalar_loop(
        m in 1usize..12,
        k in 1usize..48,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let a = random_matrix(m, k, seed, 4);
        let w = random_matrix(n, k, seed.wrapping_add(5), 0);
        let mut rng = Rng64::new(seed.wrapping_add(6));
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();

        let mut blocked = vec![0.0f32; m * n];
        for row in blocked.chunks_mut(n) {
            row.copy_from_slice(&bias);
        }
        gemm_nt_into(&mut blocked, a.as_slice(), w.as_slice(), m, k, n);

        for s in 0..m {
            for j in 0..n {
                let mut acc = bias[j];
                for kk in 0..k {
                    acc += a.as_slice()[s * k + kk] * w.as_slice()[j * k + kk];
                }
                prop_assert_eq!(blocked[s * n + j].to_bits(), acc.to_bits());
            }
        }
    }

    /// Quantize→dequantize error is bounded by half the scale step for every
    /// in-range value, and quantized codes stay in the symmetric [-127, 127].
    #[test]
    fn quantization_round_trip_error_is_bounded(
        values in prop::collection::vec(-8.0f32..8.0, 1..64),
    ) {
        let max_abs = ptolemy_tensor::max_abs(&values);
        let params = QuantParams::from_max_abs(max_abs);
        let qs = quantize_slice(&values, params);
        let back = dequantize_slice(&qs, params);
        for ((x, q), y) in values.iter().zip(&qs).zip(&back) {
            prop_assert!((-127..=127).contains(q));
            prop_assert!(
                (x - y).abs() <= params.scale() / 2.0 + 1e-6,
                "{} -> {} -> {} (scale {})", x, q, y, params.scale()
            );
        }
    }

    /// The blocked i8 kernel and both parallel wrappers are **bit-for-bit**
    /// the naive `matmul_i8` — i32 accumulation is exact, so any disagreement
    /// is an indexing bug, not rounding.  Operands mix sparsity (the naive
    /// kernel's zero-skip branch) with `i8::MIN`/`i8::MAX` extremes, and the
    /// shape ranges straddle the small-product threshold below which the
    /// blocked entry points delegate back to the naive loop.
    #[test]
    fn blocked_i8_matches_naive_bit_for_bit(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..24,
        seed in any::<u64>(),
        zero_every in 0usize..5,
    ) {
        let a = random_i8(m * k, seed, zero_every);
        let b = random_i8(k * n, seed.wrapping_add(1), 0);
        let naive = matmul_i8(&a, &b, m, k, n).unwrap();
        prop_assert_eq!(&matmul_i8_blocked(&a, &b, m, k, n).unwrap(), &naive);
        prop_assert_eq!(&matmul_i8_parallel(&a, &b, m, k, n).unwrap(), &naive);

        // The transposed-B entry points, against the same logical operands.
        let mut bt = vec![0i8; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        prop_assert_eq!(&matmul_i8_nt(&a, &bt, m, k, n).unwrap(), &naive);
        prop_assert_eq!(&matmul_i8_blocked_nt(&a, &bt, m, k, n).unwrap(), &naive);
        prop_assert_eq!(&matmul_i8_parallel_nt(&a, &bt, m, k, n).unwrap(), &naive);
    }

    /// The integer GEMMs agree with an exact i32 reference (and with each
    /// other through a transpose).
    #[test]
    fn integer_gemms_are_exact(
        m in 1usize..8,
        k in 1usize..16,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.uniform(-127.0, 127.0) as i32 as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.uniform(-127.0, 127.0) as i32 as i8).collect();
        let c = matmul_i8(&a, &b, m, k, n).unwrap();
        // Bt view of b: bt[j][kk] = b[kk][j].
        let mut bt = vec![0i8; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let c_nt = matmul_i8_nt(&a, &bt, m, k, n).unwrap();
        for i in 0..m {
            for j in 0..n {
                let expected: i32 = (0..k)
                    .map(|kk| i32::from(a[i * k + kk]) * i32::from(b[kk * n + j]))
                    .sum();
                prop_assert_eq!(c[i * n + j], expected);
                prop_assert_eq!(c_nt[i * n + j], expected);
            }
        }
    }
}

/// A shape well past the small-product threshold, saturated with `i8::MIN`
/// everywhere: the worst-case accumulation ((-128)² per k-step) must flow
/// through the blocked kernel's register tiles bit-identically to the naive
/// loop — and exercise the K-reordering freedom integer accumulation grants.
#[test]
fn blocked_i8_large_shape_with_min_saturation_matches_naive() {
    let (m, k, n) = (33, 70, 29); // 66 990 iops: the blocked path proper
    let a = vec![i8::MIN; m * k];
    let b = vec![i8::MIN; k * n];
    let naive = matmul_i8(&a, &b, m, k, n).unwrap();
    assert!(naive.iter().all(|&v| v == 128 * 128 * k as i32));
    assert_eq!(matmul_i8_blocked(&a, &b, m, k, n).unwrap(), naive);
    assert_eq!(matmul_i8_blocked_nt(&a, &b, m, k, n).unwrap(), naive);
    assert_eq!(matmul_i8_parallel(&a, &b, m, k, n).unwrap(), naive);
    assert_eq!(matmul_i8_parallel_nt(&a, &b, m, k, n).unwrap(), naive);
}

/// Non-finite values in B make the sparsity skip *observable* (0.0 · inf is
/// NaN): a kernel that dropped or added skips would flip bits here.
#[test]
fn sparsity_skip_parity_with_non_finite_b() {
    let mut a = random_matrix(9, 20, 33, 3);
    // Force a fully-zero row and a fully-dense row.
    for v in a.as_mut_slice()[..20].iter_mut() {
        *v = 0.0;
    }
    let mut b = random_matrix(20, 11, 44, 0);
    b.as_mut_slice()[5] = f32::INFINITY;
    b.as_mut_slice()[37] = f32::NEG_INFINITY;
    b.as_mut_slice()[100] = f32::NAN;
    let naive = a.matmul_naive(&b).unwrap();
    let blocked = matmul_blocked(&a, &b).unwrap();
    let parallel = matmul_parallel(&a, &b).unwrap();
    for ((x, y), z) in naive
        .as_slice()
        .iter()
        .zip(blocked.as_slice())
        .zip(parallel.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(x.to_bits(), z.to_bits());
    }
}
