//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use ptolemy_tensor::{col2im, im2col, Conv2dGeometry, Rng64, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// offset/unravel round-trips for every flat index of arbitrary small shapes.
    #[test]
    fn shape_offset_unravel_roundtrip(dims in small_dims()) {
        let shape = Shape::new(&dims);
        for flat in 0..shape.len() {
            let idx = shape.unravel(flat).unwrap();
            prop_assert_eq!(shape.offset(&idx).unwrap(), flat);
        }
    }

    /// Reshaping preserves the element sum for any compatible factorisation.
    #[test]
    fn reshape_preserves_sum(data in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]).unwrap();
        let reshaped = t.reshape(&[1, n]).unwrap();
        prop_assert!((t.sum() - reshaped.sum()).abs() < 1e-4);
    }

    /// Element-wise addition commutes and subtraction is its inverse.
    #[test]
    fn add_commutes_sub_inverts(
        a in prop::collection::vec(-100.0f32..100.0, 1..32),
        seed in any::<u64>(),
    ) {
        let n = a.len();
        let mut rng = Rng64::new(seed);
        let b: Vec<f32> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let ta = Tensor::from_vec(a, &[n]).unwrap();
        let tb = Tensor::from_vec(b, &[n]).unwrap();
        let ab = ta.add(&tb).unwrap();
        let ba = tb.add(&ta).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        let back = ab.sub(&tb).unwrap();
        for (x, y) in back.as_slice().iter().zip(ta.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Matrix multiplication by the identity is the identity transformation.
    #[test]
    fn matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let c = a.matmul(&Tensor::eye(cols)).unwrap();
        prop_assert_eq!(c.as_slice(), a.as_slice());
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::from_vec((0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[m, k]).unwrap();
        let b = Tensor::from_vec((0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[k, n]).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax rows are valid probability distributions.
    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let t = Tensor::from_vec(
            (0..rows * cols).map(|_| rng.uniform(-5.0, 5.0)).collect(),
            &[rows, cols],
        ).unwrap();
        let s = t.softmax_rows().unwrap();
        for row in s.as_slice().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    /// col2im(im2col(x)) scales each input element by its coverage count, so with a
    /// 1x1 kernel (coverage exactly one) the round-trip is the identity.
    #[test]
    fn im2col_col2im_identity_for_unit_kernel(h in 1usize..6, w in 1usize..6, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let geom = Conv2dGeometry::new(1, h, w, 1, 1, 0).unwrap();
        let img = Tensor::from_vec((0..h * w).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[1, h, w]).unwrap();
        let cols = im2col(&img, &geom).unwrap();
        let back = col2im(&cols, &geom).unwrap();
        prop_assert_eq!(back.as_slice(), img.as_slice());
    }

    /// im2col output contains every input element at least once when stride ≤ kernel.
    #[test]
    fn im2col_covers_input(h in 3usize..7, w in 3usize..7, k in 1usize..4, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let geom = Conv2dGeometry::new(1, h, w, k, 1, 0).unwrap();
        let img = Tensor::from_vec((0..h * w).map(|_| rng.uniform(0.5, 1.5)).collect(), &[1, h, w]).unwrap();
        let cols = im2col(&img, &geom).unwrap();
        let ones = Tensor::ones(&[geom.patch_len(), geom.num_patches()]);
        let coverage = col2im(&ones, &geom).unwrap();
        // Stride 1 and k ≤ h,w means every input element is inside ≥ 1 receptive field.
        prop_assert!(coverage.as_slice().iter().all(|c| *c >= 1.0));
        prop_assert!(cols.as_slice().iter().all(|v| v.is_finite()));
    }
}
