//! Property-based tests of the observability primitives: the algebraic
//! invariants the rest of the workspace leans on when it merges per-worker
//! histograms, reports percentiles, or persists metrics snapshots.

use proptest::prelude::*;
use ptolemy_obs::{json, Histogram};

/// Builds a histogram from a list of observations.
fn hist_of(values: &[u64]) -> Histogram {
    let mut hist = Histogram::new();
    for &v in values {
        hist.record(v);
    }
    hist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(0u64..2_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..2_000_000_000, 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..2_000_000_000, 0..30),
        b in proptest::collection::vec(0u64..2_000_000_000, 0..30),
        c in proptest::collection::vec(0u64..2_000_000_000, 0..30),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Every reported percentile lies within the exact recorded [min, max],
    /// and percentiles are monotone in q.
    #[test]
    fn percentiles_are_bounded_and_monotone(
        values in proptest::collection::vec(0u64..u64::MAX, 1..60),
    ) {
        let hist = hist_of(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(hist.min(), Some(min));
        prop_assert_eq!(hist.max(), Some(max));
        let mut last = min;
        for step in 0..=20u64 {
            let q = step as f64 / 20.0;
            let p = hist.percentile(q).unwrap();
            prop_assert!(p >= min && p <= max, "p{}={} outside [{}, {}]", q, p, min, max);
            prop_assert!(p >= last, "percentile not monotone at q={}", q);
            last = p;
        }
    }

    /// Bucket counts conserve the total number of observations.
    #[test]
    fn bucket_counts_conserve_total(
        values in proptest::collection::vec(0u64..u64::MAX, 0..80),
    ) {
        let hist = hist_of(&values);
        let bucket_sum: u64 = hist.bucket_counts().iter().sum();
        prop_assert_eq!(bucket_sum, values.len() as u64);
        prop_assert_eq!(hist.count(), values.len() as u64);
    }

    /// Serialising a histogram to JSON text and parsing it back is lossless,
    /// including exact min/max/sum.
    #[test]
    fn json_round_trip_is_lossless(
        values in proptest::collection::vec(0u64..u64::MAX, 0..60),
    ) {
        let hist = hist_of(&values);
        let text = hist.to_json().to_json();
        let parsed = json::parse(&text).expect("snapshot text parses");
        let back = Histogram::from_json(&parsed).expect("valid histogram JSON");
        prop_assert_eq!(back, hist);
    }

    /// Merging histograms never loses observations or tightens extrema.
    #[test]
    fn merge_conserves_counts_and_extrema(
        a in proptest::collection::vec(0u64..u64::MAX, 1..40),
        b in proptest::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.min(), ha.min().min(hb.min()));
        prop_assert_eq!(merged.max(), ha.max().max(hb.max()));
    }
}
