//! Span timing guards and per-request stage timelines.
//!
//! A [`Span`] is the RAII way to feed a histogram: start it around a stage,
//! and the elapsed nanoseconds land in the histogram when it drops — panic
//! included, so a stage that unwinds still accounts its time.  A [`Timeline`]
//! is the per-request (in `ptolemy-serve`, per-batch) record of *where* the
//! time went: an ordered list of [`Stage`] events with start offsets and
//! durations, renderable to JSON for the server's metrics export.

use crate::clock::Clock;
use crate::json::JsonValue;
use crate::registry::HistogramHandle;

/// The serving stages a [`Timeline`] can record.
///
/// The set mirrors the request path of `ptolemy-serve`: a request waits in
/// the bounded queue, a batch is formed, the cache is consulted, the batch is
/// screened by the tier-1 engine, suspicious inputs escalate to tier-2 shards
/// (possibly overlapped with the next batch's screen), and verdicts finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submission-to-batch-cut wait in the bounded queue.
    QueueWait,
    /// Forming the adaptive batch (cut decision + dequeue).
    BatchForm,
    /// Persisted/exact-input result cache lookups for the batch.
    CacheLookup,
    /// The tier-1 screening pass over the formed batch.
    Screen,
    /// The tier-1 screening pass when it runs the int8 quantized inference
    /// path (`ptolemy-serve`'s quantized screen mode) — kept distinct from
    /// [`Stage::Screen`] so dashboards and timelines never conflate the two
    /// screening variants' cost profiles.
    ScreenInt8,
    /// A tier-2 escalation pass on the given shard.
    Escalate(u32),
    /// Time an escalation spent executing overlapped with the next batch's
    /// screen (the cross-batch pipeline).
    Overlap,
    /// Deadline-expired requests being dropped (shed) from a formed batch
    /// before any inference ran on them — the admission-control companion
    /// stage: work the server refused to waste compute on.
    Shed,
    /// The routing phase of a batch served in **degraded** (screen-tier-only)
    /// mode: in-band requests that would have escalated were answered by the
    /// screening verdict because the server was shedding tier-2 work under
    /// overload.
    Degraded,
}

impl Stage {
    /// A stable snake_case label (`"escalate[3]"` for shard 3) used as the
    /// JSON key and the per-stage histogram name.
    pub fn label(&self) -> String {
        match self {
            Stage::QueueWait => "queue_wait".into(),
            Stage::BatchForm => "batch_form".into(),
            Stage::CacheLookup => "cache_lookup".into(),
            Stage::Screen => "screen".into(),
            Stage::ScreenInt8 => "screen_int8".into(),
            Stage::Escalate(shard) => format!("escalate[{shard}]"),
            Stage::Overlap => "overlap".into(),
            Stage::Shed => "shed".into(),
            Stage::Degraded => "degraded".into(),
        }
    }
}

/// An RAII timing guard: records the elapsed nanoseconds between
/// construction and drop into a histogram.
#[derive(Debug)]
pub struct Span<'a> {
    clock: &'a Clock,
    hist: HistogramHandle,
    start_ns: u64,
}

impl<'a> Span<'a> {
    /// Starts timing now; the observation is recorded when the span drops.
    pub fn start(clock: &'a Clock, hist: HistogramHandle) -> Span<'a> {
        Span {
            start_ns: clock.now_ns(),
            clock,
            hist,
        }
    }

    /// Nanoseconds since the span started (the value the drop will record).
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ns());
    }
}

/// One recorded stage interval within a [`Timeline`], offsets relative to the
/// timeline's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Which stage this interval belongs to.
    pub stage: Stage,
    /// Start offset from the timeline origin, nanoseconds.
    pub start_ns: u64,
    /// Interval duration, nanoseconds.
    pub dur_ns: u64,
}

/// An ordered record of where one request (or batch) spent its time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    label: String,
    origin_ns: u64,
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// A new empty timeline labelled `label`, with all recorded offsets
    /// relative to `origin_ns` (a [`Clock::now_ns`] reading).
    pub fn new(label: &str, origin_ns: u64) -> Timeline {
        Timeline {
            label: label.to_string(),
            origin_ns,
            events: Vec::new(),
        }
    }

    /// Records a stage interval from absolute clock readings; times before
    /// the origin clamp to it.
    pub fn record(&mut self, stage: Stage, start_ns: u64, end_ns: u64) {
        let start = start_ns.saturating_sub(self.origin_ns);
        self.events.push(TimelineEvent {
            stage,
            start_ns: start,
            dur_ns: end_ns.saturating_sub(start_ns.max(self.origin_ns)),
        });
    }

    /// The timeline's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The clock reading the event offsets are relative to.
    pub fn origin_ns(&self) -> u64 {
        self.origin_ns
    }

    /// The recorded events in insertion order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Renders the timeline as JSON:
    /// `{"label": …, "origin_ns": …, "events": [{"stage": "screen",
    /// "start_ns": …, "dur_ns": …}, …]}`.
    pub fn to_json(&self) -> JsonValue {
        let events = self
            .events
            .iter()
            .map(|event| {
                JsonValue::Object(vec![
                    ("stage".into(), JsonValue::String(event.stage.label())),
                    ("start_ns".into(), JsonValue::UInt(event.start_ns)),
                    ("dur_ns".into(), JsonValue::UInt(event.dur_ns)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("label".into(), JsonValue::String(self.label.clone())),
            ("origin_ns".into(), JsonValue::UInt(self.origin_ns)),
            ("events".into(), JsonValue::Array(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let registry = Registry::with_clock("spans", Clock::manual());
        let hist = registry.histogram("stage_ns");
        {
            let span = Span::start(registry.clock(), hist.clone());
            registry.clock().advance(250);
            assert_eq!(span.elapsed_ns(), 250);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.min(), Some(250));
    }

    #[test]
    fn span_records_even_when_the_stage_panics() {
        let registry = Registry::with_clock("spans", Clock::manual());
        let hist = registry.histogram("stage_ns");
        let clock = registry.clock();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = Span::start(clock, hist.clone());
            clock.advance(10);
            panic!("stage failed");
        }));
        assert!(result.is_err());
        assert_eq!(hist.snapshot().count(), 1);
    }

    #[test]
    fn stage_labels_are_stable() {
        assert_eq!(Stage::QueueWait.label(), "queue_wait");
        assert_eq!(Stage::Screen.label(), "screen");
        assert_eq!(Stage::ScreenInt8.label(), "screen_int8");
        assert_eq!(Stage::Escalate(3).label(), "escalate[3]");
        assert_eq!(Stage::Overlap.label(), "overlap");
        assert_eq!(Stage::Shed.label(), "shed");
        assert_eq!(Stage::Degraded.label(), "degraded");
    }

    #[test]
    fn timeline_records_relative_intervals_and_renders_json() {
        let mut timeline = Timeline::new("batch-7", 1_000);
        timeline.record(Stage::QueueWait, 400, 1_200); // starts before origin
        timeline.record(Stage::Screen, 1_200, 1_700);
        assert_eq!(timeline.events().len(), 2);
        assert_eq!(timeline.events()[0].start_ns, 0);
        assert_eq!(timeline.events()[0].dur_ns, 200);
        assert_eq!(timeline.events()[1].start_ns, 200);
        assert_eq!(timeline.events()[1].dur_ns, 500);
        let text = timeline.to_json().to_json();
        let parsed = crate::json::parse(&text).expect("parses");
        assert_eq!(
            parsed.get("label").and_then(JsonValue::as_str),
            Some("batch-7")
        );
        let events = parsed.get("events").and_then(JsonValue::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("stage").and_then(JsonValue::as_str),
            Some("screen")
        );
    }
}
