//! The workspace clock: monotonic nanoseconds behind a swappable source.
//!
//! Every timing measurement in the workspace flows through a [`Clock`] so that
//! (a) tests can substitute a manually-advanced source and make latency paths
//! deterministic, and (b) the `raw-instant` lint can forbid bare
//! `std::time::Instant::now()` everywhere else.  This module is the single
//! sanctioned call site (see `lint.toml`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Two sources exist: [`Clock::monotonic`] reads the OS monotonic clock
/// relative to a per-clock epoch, and [`Clock::manual`] reads an atomic
/// counter that only [`Clock::advance`] moves — the deterministic source
/// tests use to script queue waits and latency budgets.
///
/// Readings are plain `u64` nanoseconds since the clock's epoch, so they can
/// be stored in atomics, subtracted without `Duration` arithmetic, and fed
/// straight into [`crate::Histogram`]s.
#[derive(Debug)]
pub struct Clock {
    source: Source,
}

#[derive(Debug)]
enum Source {
    Monotonic(Instant),
    Manual(AtomicU64),
}

impl Clock {
    /// A clock backed by the OS monotonic clock; `now_ns` is the elapsed time
    /// since this constructor ran.
    pub fn monotonic() -> Clock {
        Clock {
            // lint:allow(raw-instant): the Clock is the sanctioned wrapper — the one place the workspace reads the OS clock
            source: Source::Monotonic(Instant::now()),
        }
    }

    /// A manually-advanced clock starting at 0; `now_ns` only moves when
    /// [`Clock::advance`] is called.  Deterministic by construction.
    pub fn manual() -> Clock {
        Clock {
            source: Source::Manual(AtomicU64::new(0)),
        }
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match &self.source {
            Source::Monotonic(epoch) => {
                let nanos = epoch.elapsed().as_nanos();
                u64::try_from(nanos).unwrap_or(u64::MAX)
            }
            Source::Manual(counter) => counter.load(Ordering::Acquire),
        }
    }

    /// Advances a [`Clock::manual`] clock by `ns` nanoseconds.
    ///
    /// On a monotonic clock this is a no-op: real time cannot be scripted,
    /// and tests that share timing code with production paths should not have
    /// to branch on the clock flavour.
    pub fn advance(&self, ns: u64) {
        if let Source::Manual(counter) = &self.source {
            counter.fetch_add(ns, Ordering::AcqRel);
        }
    }

    /// `true` when this clock is manually advanced (a test clock).
    pub fn is_manual(&self) -> bool {
        matches!(self.source, Source::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = Clock::monotonic();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        assert!(!clock.is_manual());
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = Clock::manual();
        assert!(clock.is_manual());
        assert_eq!(clock.now_ns(), 0);
        clock.advance(1_500);
        assert_eq!(clock.now_ns(), 1_500);
        clock.advance(0);
        assert_eq!(clock.now_ns(), 1_500);
    }

    #[test]
    fn advance_is_a_noop_on_monotonic_clocks() {
        let clock = Clock::monotonic();
        let before = clock.now_ns();
        clock.advance(u64::MAX / 2);
        // The reading keeps tracking real elapsed time, not the advance.
        assert!(clock.now_ns() < u64::MAX / 2 || before >= u64::MAX / 2);
    }
}
