//! The named metrics registry: atomic counters plus latency histograms behind
//! one enabled gate, snapshotted to the workspace JSON dialect.
//!
//! A [`Registry`] is the unit a subsystem threads through its hot path: the
//! serving runtime owns one, hands [`Counter`] and [`HistogramHandle`]s to
//! its workers, and renders the whole thing with [`Registry::snapshot`].
//! Instrumented code guards optional work with [`Registry::enabled`] — a
//! single relaxed atomic load — so a disabled registry costs essentially
//! nothing on the hot path (the `obs_overhead` bench experiment pins this).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::json::JsonValue;

/// A named bundle of counters and histograms sharing a clock and an enabled
/// gate.  Cheap to share via `Arc`; every handle it vends stays valid for the
/// registry's lifetime.
#[derive(Debug)]
pub struct Registry {
    name: String,
    enabled: AtomicBool,
    clock: Clock,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

/// A monotonically-increasing atomic counter vended by [`Registry::counter`].
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current counter value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A shared histogram vended by [`Registry::histogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    cell: Arc<Mutex<Histogram>>,
}

impl HistogramHandle {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        lock(&self.cell).record(value);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> Histogram {
        lock(&self.cell).clone()
    }
}

/// Poison-tolerant lock: a panicking instrumented thread must not take the
/// metrics plane down with it (histogram state is a plain value — any
/// interrupted `record` left it internally consistent).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    /// A new enabled registry named `name`, timing against the OS monotonic
    /// clock.
    pub fn new(name: &str) -> Registry {
        Registry::with_clock(name, Clock::monotonic())
    }

    /// A new enabled registry with an explicit clock — pass [`Clock::manual`]
    /// to make every timing this registry records deterministic under test.
    pub fn with_clock(name: &str, clock: Clock) -> Registry {
        Registry {
            name: name.to_string(),
            enabled: AtomicBool::new(true),
            clock,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The registry's name (the `"registry"` field of the snapshot).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock all of this registry's spans and timelines read.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// `true` when instrumentation guarded by this registry should run.  One
    /// relaxed atomic load — the entire cost of the disabled path.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns optional instrumentation on or off.  Counters and histograms a
    /// caller updates unconditionally keep recording either way; the gate is
    /// advisory for the expensive paths (timelines, per-layer timings).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock(&self.counters);
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Arc::clone(cell),
        }
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut histograms = lock(&self.histograms);
        let cell = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new())));
        HistogramHandle {
            cell: Arc::clone(cell),
        }
    }

    /// A point-in-time snapshot of every counter and histogram as a JSON
    /// value:
    ///
    /// ```json
    /// {"registry": "serve", "enabled": 1,
    ///  "counters": {"requests": 42, …},
    ///  "histograms": {"latency_ns": {"total": …, "buckets": […]}, …}}
    /// ```
    ///
    /// Keys are sorted, so two snapshots of identical state render
    /// identically.
    pub fn snapshot(&self) -> JsonValue {
        let counters = lock(&self.counters)
            .iter()
            .map(|(name, cell)| (name.clone(), JsonValue::UInt(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(name, cell)| (name.clone(), lock(cell).to_json()))
            .collect();
        JsonValue::Object(vec![
            ("registry".into(), JsonValue::String(self.name.clone())),
            ("enabled".into(), JsonValue::UInt(u64::from(self.enabled()))),
            ("counters".into(), JsonValue::Object(counters)),
            ("histograms".into(), JsonValue::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let registry = Registry::new("test");
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.incr();
        b.add(2);
        assert_eq!(registry.counter("requests").get(), 3);
        assert_eq!(registry.counter("other").get(), 0);
    }

    #[test]
    fn histograms_are_shared_by_name() {
        let registry = Registry::new("test");
        registry.histogram("lat").record(5);
        registry.histogram("lat").record(7);
        let snap = registry.histogram("lat").snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(5));
        assert_eq!(snap.max(), Some(7));
    }

    #[test]
    fn enabled_gate_toggles() {
        let registry = Registry::new("test");
        assert!(registry.enabled());
        registry.set_enabled(false);
        assert!(!registry.enabled());
        registry.set_enabled(true);
        assert!(registry.enabled());
    }

    #[test]
    fn snapshot_renders_parseable_json() {
        let registry = Registry::with_clock("snap", Clock::manual());
        registry.counter("b_counter").add(4);
        registry.counter("a_counter").incr();
        registry.histogram("lat_ns").record(1_000);
        let snapshot = registry.snapshot();
        let text = snapshot.to_json();
        let parsed = crate::json::parse(&text).expect("snapshot parses");
        assert_eq!(
            parsed.get("registry").and_then(JsonValue::as_str),
            Some("snap")
        );
        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(
            counters.get("a_counter").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            counters.get("b_counter").and_then(JsonValue::as_u64),
            Some(4)
        );
        let hist = parsed.get("histograms").and_then(|h| h.get("lat_ns"));
        let hist = Histogram::from_json(hist.expect("histogram present")).expect("valid");
        assert_eq!(hist.count(), 1);
    }
}
