//! A minimal JSON reader/writer for the workspace's on-disk artifacts.
//!
//! The workspace builds without crates.io access, so the `ClassPathSet`
//! serialisation in `ptolemy-core`, the `ptolemy-serve` persisted result
//! cache, the metrics snapshots in this crate and the `BENCH_*.json`
//! trajectory files all use this hand-rolled module instead of `serde_json`.
//! Only the subset the artifacts need is supported: objects, arrays, strings
//! and unsigned integers — floats are stored as hex-encoded IEEE-754 bit
//! patterns by the callers, which is what makes the artifacts round-trip
//! bit-exactly.
//!
//! The module lives at the bottom of the workspace dependency graph so every
//! crate can emit the same dialect; `ptolemy-core` re-exports it under the
//! original `ptolemy_core::json` path.

use std::fmt::Write as _;

/// A parsed JSON value (artifact subset: no floats, booleans or nulls).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string literal.
    String(String),
    /// An unsigned integer.
    UInt(u64),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this value is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::String(s) => write_string(s, out),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (artifact subset).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'"' => Ok(JsonValue::String(self.string()?)),
            b'{' => self.object(),
            b'[' => self.array(),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Re-assemble UTF-8 sequences byte-by-byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b)?;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_whitespace();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("non-UTF-8 number at byte {start}: {e}"))?;
        text.parse::<u64>()
            .map(JsonValue::UInt)
            .map_err(|e| format!("invalid integer '{text}': {e}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' but found '{}' at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                    self.skip_whitespace();
                }
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' but found '{}' at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err("invalid UTF-8 start byte".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("bw|cu0.50".into())),
            ("count".into(), JsonValue::UInt(42)),
            (
                "items".into(),
                JsonValue::Array(vec![
                    JsonValue::UInt(1),
                    JsonValue::String("a\"b\\c".into()),
                ]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": [1, 2], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            doc.get("b").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(doc.get("c").and_then(JsonValue::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("a").unwrap().as_str().is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "not json",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "[1 2]",
            "{\"a\":1}trailing",
            "\"unterminated",
            "18446744073709551616",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = parse(" { \"k\" : [ \"\\u0041\\n\" , 7 ] } ").unwrap();
        assert_eq!(
            doc.get("k").unwrap().as_array().unwrap()[0].as_str(),
            Some("A\n")
        );
    }
}
