//! Log-bucketed latency histograms: bounded memory, mergeable, JSON-portable.
//!
//! A [`Histogram`] buckets `u64` nanosecond observations into log₂ buckets
//! with 8 linear sub-buckets per power of two (≈12.5% relative resolution),
//! so memory is a fixed ~4 KiB however many observations are recorded — the
//! property that lets `ptolemy-serve` keep one histogram per stage per server
//! without a growth bound.  Bucket counts are exact; only the value within a
//! bucket is approximated, and reported percentiles are clamped to the exact
//! recorded `[min, max]` so they can never leave the observed range.
//!
//! Merging two histograms adds their bucket counts, which makes merge
//! associative and commutative (the property the proptest suite pins) — the
//! shape that lets per-shard or per-worker histograms be combined into one
//! workspace view without losing bucket-level precision.

use crate::json::JsonValue;

/// Linear sub-bucket bits per power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power of two (`2^SUB_BITS`).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: `SUB` exact buckets for
/// values below `SUB`, then `SUB` sub-buckets for each exponent
/// `SUB_BITS..=63`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// A mergeable log-bucketed histogram over `u64` observations.
///
/// Buckets are log₂ with 8 linear sub-buckets per power of two (≈12.5%
/// relative resolution) at a fixed ~4 KiB per histogram.  Equality is
/// structural (same buckets, same exact min/max/sum), which is what makes the
/// JSON round-trip property testable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The bucket index of observation `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) - SUB) as usize;
    (exp - SUB_BITS + 1) as usize * SUB as usize + sub
}

/// The inclusive `[lower, upper]` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if (index as u64) < SUB {
        return (index as u64, index as u64);
    }
    let k = index as u64 / SUB;
    let sub = index as u64 % SUB;
    let shift = (k - 1) as u32;
    let lower = (SUB + sub) << shift;
    let width = 1u64 << shift;
    (lower, lower + (width - 1))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations (bucket counts saturate rather than
    /// wrap at `u64::MAX`).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = bucket_index(value);
        self.counts[index] = self.counts[index].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self` bucket-by-bucket.  Associative and
    /// commutative: merging per-worker histograms in any order or grouping
    /// yields the same combined histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Exact largest recorded observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (integer division), `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (!self.is_empty()).then(|| self.sum / self.total)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) by nearest rank over the
    /// bucket counts, linearly interpolated by rank position within the
    /// matched bucket and clamped to the exact recorded `[min, max]`.
    /// Monotone in `q`, `None` when empty.
    ///
    /// The interpolation matters at the tails: the previous midpoint report
    /// biased every percentile toward its bucket centre, which on ≈12.5%-wide
    /// buckets drifted p99 by up to half a bucket on dense latency
    /// distributions.  Rank interpolation keeps the estimate inside the
    /// matched bucket (so the resolution bound is unchanged) while removing
    /// the systematic centre bias.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen.saturating_add(count) >= rank {
                let (lower, upper) = bucket_bounds(index);
                // Position of the target rank within this bucket, 1..=count;
                // spread the bucket's occupants evenly over its value range.
                let position = rank - seen;
                let estimate = if count <= 1 {
                    lower + (upper - lower) / 2
                } else {
                    // f64 rounding of huge bucket widths can overshoot by an
                    // ulp, so saturate and re-clamp to the bucket itself.
                    let fraction = (position - 1) as f64 / (count - 1) as f64;
                    let offset = ((upper - lower) as f64 * fraction).round() as u64;
                    lower.saturating_add(offset).min(upper)
                };
                return Some(estimate.clamp(self.min, self.max));
            }
            seen = seen.saturating_add(count);
        }
        // Unreachable when counts conserve total; fall back to the exact max.
        Some(self.max)
    }

    /// Exact per-bucket counts (index them with the scheme in the module
    /// docs; mostly useful to assert conservation in tests).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Serialises the histogram losslessly: exact min/max/sum/total plus the
    /// sparse list of non-empty buckets as `[index, count]` pairs.
    pub fn to_json(&self) -> JsonValue {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| {
                JsonValue::Array(vec![JsonValue::UInt(index as u64), JsonValue::UInt(count)])
            })
            .collect();
        JsonValue::Object(vec![
            ("total".into(), JsonValue::UInt(self.total)),
            ("sum".into(), JsonValue::UInt(self.sum)),
            ("min".into(), JsonValue::UInt(self.min)),
            ("max".into(), JsonValue::UInt(self.max)),
            ("buckets".into(), JsonValue::Array(buckets)),
        ])
    }

    /// Rebuilds a histogram from [`Histogram::to_json`] output.
    ///
    /// # Errors
    ///
    /// Rejects missing fields, out-of-range bucket indices, and bucket counts
    /// that do not conserve the recorded total.
    pub fn from_json(value: &JsonValue) -> Result<Histogram, String> {
        let field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("histogram JSON missing u64 field '{key}'"))
        };
        let mut hist = Histogram::new();
        hist.total = field("total")?;
        hist.sum = field("sum")?;
        hist.min = field("min")?;
        hist.max = field("max")?;
        let buckets = value
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("histogram JSON missing 'buckets' array")?;
        let mut conserved = 0u64;
        for pair in buckets {
            let pair = pair.as_array().ok_or("bucket entry must be an array")?;
            let [index, count] = pair else {
                return Err("bucket entry must be [index, count]".into());
            };
            let index = index.as_u64().ok_or("bucket index must be a u64")? as usize;
            let count = count.as_u64().ok_or("bucket count must be a u64")?;
            if index >= BUCKETS {
                return Err(format!("bucket index {index} out of range (< {BUCKETS})"));
            }
            hist.counts[index] = count;
            conserved = conserved.saturating_add(count);
        }
        if conserved != hist.total {
            return Err(format!(
                "bucket counts sum to {conserved} but total is {}",
                hist.total
            ));
        }
        Ok(hist)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut samples: Vec<u64> = vec![0];
        for exp in 0..64u32 {
            for off in [0u64, 1, 3] {
                samples.push(
                    (1u64 << exp).saturating_add(off.saturating_mul(1 << exp.saturating_sub(3))),
                );
            }
        }
        samples.sort_unstable();
        samples.dedup();
        let mut last = 0usize;
        for v in samples {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "index {index} for {v}");
            assert!(index >= last, "index went backwards at {v}");
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        for v in [0u64, 1, 7, 8, 9, 100, 4096, 1 << 30, u64::MAX] {
            let index = bucket_index(v);
            let (lower, upper) = bucket_bounds(index);
            assert!(lower <= v && v <= upper, "{v} outside [{lower}, {upper}]");
        }
        for index in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
        }
    }

    #[test]
    fn percentiles_are_exact_for_small_values_and_clamped() {
        let mut hist = Histogram::new();
        for v in 0..8u64 {
            hist.record(v);
        }
        // Values below SUB land in exact single-value buckets.
        assert_eq!(hist.percentile(0.0), Some(0));
        assert_eq!(hist.percentile(1.0), Some(7));
        assert_eq!(hist.min(), Some(0));
        assert_eq!(hist.max(), Some(7));

        let mut one = Histogram::new();
        one.record(1_000_003);
        // A single large value: every percentile clamps to the exact value.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(q), Some(1_000_003));
        }
    }

    #[test]
    fn percentiles_interpolate_within_buckets_on_a_known_sequence() {
        // Uniform 1..=1000: the true p50/p90/p99 are 500/900/990.  Rank
        // interpolation must land within one ≈12.5% bucket of the truth and
        // stay monotone in q; the old midpoint report is only guaranteed to
        // hit the containing bucket's centre.
        let mut hist = Histogram::new();
        for v in 1..=1_000u64 {
            hist.record(v);
        }
        let p50 = hist.percentile(0.50).expect("non-empty");
        let p90 = hist.percentile(0.90).expect("non-empty");
        let p99 = hist.percentile(0.99).expect("non-empty");
        assert!((460..=540).contains(&p50), "p50 drifted: {p50}");
        assert!((840..=960).contains(&p90), "p90 drifted: {p90}");
        assert!((930..=1_000).contains(&p99), "p99 drifted: {p99}");
        assert!(p50 <= p90 && p90 <= p99, "percentiles not monotone");
        // Evenly-spread occupants interpolate to (near-)exact answers.
        assert_eq!(p50, 500);
        assert_eq!(p90, 900);
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let hist = Histogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile(0.5), None);
        assert_eq!(hist.min(), None);
        assert_eq!(hist.max(), None);
        assert_eq!(hist.mean(), None);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        a.record(10);
        a.record(20);
        let mut b = Histogram::new();
        b.record(5);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(1_000));
        assert_eq!(a.sum(), 1_035);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut hist = Histogram::new();
        for v in [0u64, 3, 17, 17, 4096, u64::MAX] {
            hist.record(v);
        }
        let back = Histogram::from_json(&hist.to_json()).expect("round-trips");
        assert_eq!(back, hist);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let mut hist = Histogram::new();
        hist.record(9);
        let JsonValue::Object(mut fields) = hist.to_json() else {
            panic!("histogram JSON must be an object");
        };
        // Break conservation: claim a bigger total than the buckets hold.
        for (key, value) in &mut fields {
            if key == "total" {
                *value = JsonValue::UInt(2);
            }
        }
        let err = Histogram::from_json(&JsonValue::Object(fields)).unwrap_err();
        assert!(err.contains("sum to"), "{err}");
        assert!(Histogram::from_json(&JsonValue::UInt(1)).is_err());
    }
}
