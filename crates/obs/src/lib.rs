//! # ptolemy-obs
//!
//! The observability layer of the Ptolemy reproduction: a std-only,
//! dependency-free crate at the bottom of the workspace graph that every
//! other crate can instrument against.
//!
//! The paper's contribution is a measured accuracy/latency/cost trade-off,
//! so the workspace needs a first-class way to *see* where serving time goes
//! and how it drifts between commits.  This crate supplies the four pieces:
//!
//! * [`Clock`] — monotonic nanoseconds behind a swappable source, so tests
//!   can script time ([`Clock::manual`]) and the `raw-instant` lint can ban
//!   bare `std::time::Instant::now()` everywhere else;
//! * [`Histogram`] — mergeable log-bucketed latency histograms with bounded
//!   memory, exact bucket counts, and percentiles clamped to the recorded
//!   `[min, max]`;
//! * [`Registry`] — named [`Counter`]s and histograms behind one
//!   [`Registry::enabled`] gate (a single relaxed atomic load on the
//!   disabled path), snapshotted to the workspace [`json`] dialect;
//! * [`Span`] / [`Timeline`] — RAII stage timing and per-request timelines
//!   over the serving [`Stage`]s.
//!
//! The [`json`] module (hand-rolled reader/writer, u64-only numbers) moved
//! here from `ptolemy-core` so the whole workspace shares one dialect;
//! `ptolemy_core::json` re-exports it at its historical path.
//!
//! # Example
//!
//! ```
//! use ptolemy_obs::{Clock, Registry, Span};
//!
//! let registry = Registry::with_clock("demo", Clock::manual());
//! let requests = registry.counter("requests");
//! let latency = registry.histogram("latency_ns");
//!
//! requests.incr();
//! {
//!     let _span = Span::start(registry.clock(), latency.clone());
//!     registry.clock().advance(1_500); // the stage under measurement
//! }
//!
//! assert_eq!(latency.snapshot().percentile(0.5), Some(1_500));
//! let text = registry.snapshot().to_json();
//! assert!(text.contains("\"requests\":1"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clock;
mod hist;
pub mod json;
mod registry;
mod span;

pub use clock::Clock;
pub use hist::Histogram;
pub use registry::{Counter, HistogramHandle, Registry};
pub use span::{Span, Stage, Timeline, TimelineEvent};
