//! Fixture-driven integration tests: every snippet under `tests/fixtures/` is
//! lexed and checked with the strict (non-relaxed) rule set, pinning each
//! lint's positive, negative and suppressed behaviour against real files on
//! disk rather than inline strings.

use std::collections::HashSet;
use std::path::PathBuf;

use ptolemy_lint::lexer::lex;
use ptolemy_lint::lints::{check_file, FileContext};

/// Runs the strict rule set over one fixture, returning the sorted lint names.
fn check_fixture(name: &str) -> Vec<&'static str> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let context = FileContext {
        relaxed: false,
        allowed: HashSet::new(),
    };
    let mut lints: Vec<&'static str> = check_file(name, &lex(&source), &context)
        .into_iter()
        .map(|finding| finding.lint)
        .collect();
    lints.sort_unstable();
    lints
}

#[test]
fn positive_fixture_trips_every_lint() {
    assert_eq!(
        check_fixture("positive.rs"),
        vec![
            "direct-available-parallelism",
            "float-eq",
            "panic-in-worker", // input.unwrap()
            "panic-in-worker", // panic!("boom")
            "raw-instant",
            "raw-numeric-cast",
            "todo-marker",
            "unbounded-channel",
            "undocumented-unsafe",
        ]
    );
}

#[test]
fn negative_fixture_is_clean() {
    assert_eq!(check_fixture("negative.rs"), Vec::<&str>::new());
}

#[test]
fn suppressed_fixture_is_clean() {
    assert_eq!(check_fixture("suppressed.rs"), Vec::<&str>::new());
}

#[test]
fn malformed_suppressions_report_and_do_not_suppress() {
    assert_eq!(
        check_fixture("malformed_suppression.rs"),
        vec![
            "panic-in-worker", // the broken marker above it suppresses nothing
            "suppression",     // missing `: <reason>`
            "suppression",     // unknown lint name
            "todo-marker",
        ]
    );
}
