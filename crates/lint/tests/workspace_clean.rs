//! The self-check: the real workspace, scanned under the checked-in
//! `lint.toml`, must be violation-free.  This is what keeps the CI gate from
//! silently rotting — a new violation (or a lint regression that suddenly
//! misfires on existing code) fails `cargo test` before it fails CI.

use std::path::PathBuf;

use ptolemy_lint::{runner, Config};

#[test]
fn real_workspace_has_no_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected the workspace root at {}",
        root.display()
    );
    let config = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = runner::run(&root, &config).expect("scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — did the roots move?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
}
