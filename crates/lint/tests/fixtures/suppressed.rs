//! Violations carrying well-formed `lint:allow` suppressions — each names the
//! lint and gives a reason, so the file must produce **zero** findings.

fn trailing(input: Option<u32>) -> u32 {
    input.unwrap() // lint:allow(panic-in-worker): fixture demonstrates trailing form
}

fn line_above(input: Option<u32>) -> u32 {
    // lint:allow(panic-in-worker): fixture demonstrates the line-above form
    input.unwrap()
}

fn sentinel(a: f32) -> bool {
    // lint:allow(float-eq): comparing against an exact sentinel value
    a == 0.0
}

fn deliberate_todo() {
    // lint:allow(todo-marker): fixture demonstrates suppressing the marker
    todo!()
}

fn sanctioned_clock_source() {
    // lint:allow(raw-instant): fixture stands in for the Clock's own OS read
    let _epoch = std::time::Instant::now();
}

fn field_encoding(word: u32) -> u8 {
    // lint:allow(raw-numeric-cast): fixture stands in for an ISA word-field mask
    (word & 0xFF) as u8
}
