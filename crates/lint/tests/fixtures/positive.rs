//! Deliberate violations — one per lint — used by the fixture-driven
//! integration test.  This file is excluded from the workspace scan by
//! `lint.toml` and is never compiled (it is read as data, not as a module).

fn spawn_workers() -> usize {
    // direct-available-parallelism: must go through the cached accessor.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    threads
}

fn make_queue() {
    // unbounded-channel: the serving runtime is bounded end-to-end.
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
}

fn risky(input: Option<u32>) -> u32 {
    // panic-in-worker: bare unwrap in non-test library code.
    input.unwrap()
}

fn also_risky(flag: bool) {
    if flag {
        // panic-in-worker: explicit panic in non-test library code.
        panic!("boom");
    }
}

fn compare(a: f32) -> bool {
    // float-eq: accidental float equality instead of bit comparison.
    a == 0.5
}

fn touch(ptr: *const u8) -> u8 {
    // undocumented-unsafe: no SAFETY comment anywhere above.
    unsafe { *ptr }
}

fn later() {
    // todo-marker: unfinished code must not land.
    todo!()
}

fn hand_rolled_timer() {
    // raw-instant: library timings must flow through ptolemy_obs::Clock.
    let _start = std::time::Instant::now();
}

fn lossy_quantize(x: f32) -> i8 {
    // raw-numeric-cast: saturating rounding casts live in the quant module.
    (x * 127.0) as i8
}
