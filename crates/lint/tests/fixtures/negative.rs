//! Idiomatic look-alikes that must produce **zero** findings: the lints match
//! token adjacency, so strings, comments, documented unsafe, bounded channels
//! and `#[cfg(test)]` regions are all fine.

//! A doc comment mentioning std::thread::available_parallelism() is not a call.

fn bounded_handoff() {
    // sync_channel is the sanctioned bounded handoff.
    let (_tx, _rx) = std::sync::mpsc::sync_channel::<u32>(1);
}

fn message() -> &'static str {
    // The forbidden phrases inside literals are data, not code:
    "call channel() or unwrap() or panic!() — none of these count"
}

fn graceful(input: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else are the non-panicking cousins.
    input.unwrap_or_else(|| 0)
}

fn bits_equal(a: f32, b: f32) -> bool {
    // Bit comparison is the sanctioned float-equality idiom.
    a.to_bits() == b.to_bits()
}

fn int_compare(a: usize, b: usize) -> bool {
    a == b
}

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: the caller guarantees `ptr` points at a live, aligned byte.
    unsafe { *ptr }
}

fn clock_timing(clock: &ptolemy_obs::Clock) -> u64 {
    // now_ns() on a Clock is the sanctioned timing read; other now()s
    // (SystemTime::now()) are not Instant and stay legal.
    let _wall = std::time::SystemTime::now();
    clock.now_ns()
}

fn widening_casts_are_fine(x: i8, y: u8) -> (i32, u32, i8) {
    // Widening `as i32` / `as u32` and the checked conversions never lose
    // information; only `as i8` / `as u8` narrowing is policed.
    let wide = x as i32;
    let wider = y as u32;
    let checked = i8::try_from(wide).unwrap_or(0);
    (wide, wider, checked)
}

fn cast_in_string() -> &'static str {
    // The phrase inside a literal is data, not a cast:
    "quantize with `as i8` only inside crates/tensor/src/quant.rs"
}

fn range_not_float() -> u32 {
    // `1..8` must lex as ints + range, never as a float comparison operand.
    (1..8).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let nan = f32::NAN;
        assert!(!(nan == nan));
    }
}
