//! Ill-formed suppressions: a missing reason or an unknown lint name is itself
//! a finding, and the broken marker does **not** suppress the underlying
//! violation.

fn missing_reason(input: Option<u32>) -> u32 {
    // lint:allow(panic-in-worker)
    input.unwrap()
}

fn unknown_lint() {
    // lint:allow(no-such-lint): the name is not registered
    todo!()
}
