//! A hand-rolled Rust lexer: just enough tokenization for line-precise,
//! string/char/comment-aware lints, in the same offline spirit as
//! `ptolemy_core::json` (no proc-macro2/syn — the workspace has no crates.io
//! access, and the lints only need token adjacency, not a parse tree).
//!
//! The lexer understands the parts of Rust that break naive `grep`-style
//! scanning: line and (nested) block comments, string/char/byte/raw-string
//! literals (so `"unwrap()"` inside a string is not a call), lifetimes vs char
//! literals, float vs integer literals, and multi-character operators (so `==`
//! is distinguishable from `=>` and `<=`).

/// One lexed token with its 1-indexed source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-indexed line of the token's first character.
    pub line: usize,
    /// 1-indexed column (in bytes) of the token's first character.
    pub col: usize,
}

/// The token classes the lints care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `mpsc`, …).
    Ident(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// An integer literal (including hex/octal/binary forms).
    Int,
    /// A floating-point literal (`0.5`, `1e-3`, `2f32`, …).
    Float,
    /// A string, raw-string, byte-string or char literal (contents ignored).
    Literal,
    /// A `// …` comment (doc comments included); the text excludes the `//`.
    LineComment(String),
    /// A `/* … */` comment (nesting handled); the text excludes the delimiters.
    BlockComment(String),
    /// An operator or punctuation token (`==`, `::`, `.`, `#`, `{`, …).
    Punct(&'static str),
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// `true` for the given punctuation/operator token.
    pub fn is_punct(&self, op: &str) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == op)
    }

    /// `true` for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self, TokenKind::LineComment(_) | TokenKind::BlockComment(_))
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Single-character punctuation, interned as `&'static str`.
const SINGLE_OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "^", "&", "|", "!", "=", "<", ">", ".", ",", ";", ":", "#", "?", "@",
    "(", ")", "[", "]", "{", "}", "$", "~",
];

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// Lexes `source` into a token stream.  Unknown bytes are skipped (the lints
/// must degrade gracefully on exotic input rather than refuse to scan a file).
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(token) = lexer.next_token() {
        tokens.push(token);
    }
    tokens
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, tracking line/column.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        // Skip whitespace.
        while let b' ' | b'\t' | b'\r' | b'\n' = self.peek(0)? {
            self.bump();
        }
        let (line, col) = (self.line, self.col);
        let b = self.peek(0)?;
        let kind = match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' | b'c' if self.literal_prefix() => self.prefixed_literal(),
            b'0'..=b'9' => self.number(),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
            _ if !b.is_ascii() => {
                // Non-ASCII outside strings/comments (e.g. in a doc attribute
                // the lexer mis-entered): consume the byte and move on.
                self.bump();
                return self.next_token();
            }
            _ => self.punct(),
        };
        Some(Token { kind, line, col })
    }

    /// `true` if the `r`/`b`/`c` at the cursor starts a literal (`r"`, `r#"`,
    /// `b"`, `b'`, `br"`, `br#"`, `c"`, …) rather than an identifier.
    fn literal_prefix(&self) -> bool {
        let after = |i: usize| self.peek(i);
        match (self.peek(0), after(1)) {
            (Some(b'r'), Some(b'"' | b'#')) => true,
            (Some(b'b'), Some(b'"' | b'\'')) => true,
            (Some(b'b'), Some(b'r')) if matches!(after(2), Some(b'"' | b'#')) => true,
            (Some(b'c'), Some(b'"')) => true,
            _ => false,
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        self.bump_n(2); // "//"
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        TokenKind::LineComment(text)
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // "/*"
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump_n(2);
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break; // unterminated: tolerate
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        TokenKind::BlockComment(text)
    }

    /// A plain `"…"` string with escapes.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'"' => break,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        TokenKind::Literal
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'`, `c"…"` — anything
    /// [`Lexer::literal_prefix`] accepted.
    fn prefixed_literal(&mut self) -> TokenKind {
        // Consume the prefix letters: `r`, `b`, `c` or `br` — after them
        // [`Lexer::literal_prefix`] guarantees a quote or raw-string hash.
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            self.bump_n(2);
        } else {
            self.bump();
        }
        if self.peek(0) == Some(b'\'') {
            // b'x' byte char.
            self.bump();
            while let Some(b) = self.bump() {
                match b {
                    b'\'' => break,
                    b'\\' => {
                        self.bump();
                    }
                    _ => {}
                }
            }
            return TokenKind::Literal;
        }
        // Count raw-string hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` raw identifier: we consumed `r` and one `#`.
            return self.ident();
        }
        self.bump(); // opening quote
        if hashes == 0 {
            // Non-raw prefixed string (b"…", c"…") honors escapes; raw
            // strings (hashes == 0 via r"…") do not, but treating `\"` as an
            // escape inside r"…" only ever *extends* the literal over a
            // quote-backslash pair, which real code does not hit.
            while let Some(b) = self.bump() {
                match b {
                    b'"' => break,
                    b'\\' => {
                        self.bump();
                    }
                    _ => {}
                }
            }
        } else {
            // Raw with hashes: scan for `"` followed by `hashes` hashes.
            'outer: while let Some(b) = self.bump() {
                if b == b'"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some(b'#') {
                            continue 'outer;
                        }
                    }
                    self.bump_n(hashes);
                    break;
                }
            }
        }
        TokenKind::Literal
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                TokenKind::Literal
            }
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') => {
                if self.peek(1) == Some(b'\'') {
                    // 'x'
                    self.bump_n(2);
                    TokenKind::Literal
                } else {
                    // 'lifetime
                    while matches!(
                        self.peek(0),
                        Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
                    ) {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            _ => {
                // Char literal holding punctuation ('(', '{', …) or a
                // non-ASCII char; scan to the closing quote.
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                TokenKind::Literal
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: never a float.
            self.bump_n(2);
            while matches!(
                self.peek(0),
                Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_')
            ) {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                self.bump();
            }
            // A fractional part only when `.` is followed by a digit — `1..8`
            // is a range and `1.max(2)` a method call, not floats.
            if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
                float = true;
                self.bump();
                while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
                if matches!(self.peek(1 + sign), Some(b'0'..=b'9')) {
                    float = true;
                    self.bump_n(1 + sign);
                    while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …).
        let suffix_start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.bump();
        }
        let suffix = &self.bytes[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        TokenKind::Ident(text)
    }

    fn punct(&mut self) -> TokenKind {
        for op in MULTI_OPS {
            if self.bytes[self.pos..].starts_with(op.as_bytes()) {
                self.bump_n(op.len());
                return TokenKind::Punct(op);
            }
        }
        let b = self.peek(0).unwrap_or(b' ');
        for op in SINGLE_OPS {
            if op.as_bytes()[0] == b {
                self.bump();
                return TokenKind::Punct(op);
            }
        }
        // Unknown punctuation: consume and keep going.
        self.bump();
        TokenKind::Punct("?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_calls_and_ops() {
        let toks = kinds("x.unwrap() == y;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("unwrap".into()),
                TokenKind::Punct("("),
                TokenKind::Punct(")"),
                TokenKind::Punct("=="),
                TokenKind::Ident("y".into()),
                TokenKind::Punct(";"),
            ]
        );
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let toks = kinds("let s = \"x.unwrap() // not code\"; // trailing unwrap()\n/* panic! */");
        assert!(toks.iter().all(|t| t.ident() != Some("unwrap")));
        assert!(matches!(
            toks.iter().find(|t| t.is_comment()),
            Some(TokenKind::LineComment(text)) if text.contains("trailing")
        ));
        assert!(toks
            .iter()
            .any(|t| matches!(t, TokenKind::BlockComment(text) if text.contains("panic!"))));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let a = r#"quote " inside"#; let b = b"bytes"; let c = b'x';"####);
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Literal))
                .count(),
            3
        );
        // The identifiers before/after survive.
        assert!(toks.iter().any(|t| t.ident() == Some("a")));
        assert!(toks.iter().any(|t| t.ident() == Some("c")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Lifetime))
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Literal))
                .count(),
            1
        );
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Float]);
        assert_eq!(kinds("2f32"), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Float]);
        assert_eq!(kinds("0x1f"), vec![TokenKind::Int]);
        assert_eq!(
            kinds("1..8"),
            vec![TokenKind::Int, TokenKind::Punct(".."), TokenKind::Int]
        );
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                TokenKind::Int,
                TokenKind::Punct("."),
                TokenKind::Ident("max".into()),
                TokenKind::Punct("("),
                TokenKind::Int,
                TokenKind::Punct(")"),
            ]
        );
    }

    #[test]
    fn multi_char_ops_do_not_split() {
        assert_eq!(kinds("=>"), vec![TokenKind::Punct("=>")]);
        assert_eq!(kinds("!="), vec![TokenKind::Punct("!=")]);
        assert_eq!(kinds("::"), vec![TokenKind::Punct("::")]);
        assert_eq!(
            kinds("a!=b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("!="),
                TokenKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn positions_are_one_indexed() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("r#type");
        assert!(matches!(&toks[0], TokenKind::Ident(_)));
    }
}
