//! # ptolemy-lint
//!
//! An offline, dependency-free static-analysis pass that machine-checks the
//! conventions this workspace's concurrency, panic-safety and parity story
//! rests on.  PRs 2–5 built a concurrency-heavy serving runtime whose
//! correctness depends on invariants that used to live only in prose: bounded
//! channels everywhere, the cached `available_parallelism` accessor, panic-safe
//! worker code, bit-for-bit float comparisons.  The workspace builds without
//! crates.io access, so dylint/custom clippy drivers are off the table — this
//! crate hand-rolls the ~80 % of them that matters, in the same offline spirit
//! as `ptolemy_core::json`:
//!
//! * [`lexer`] — a string/char/comment-aware Rust tokenizer, so lints match
//!   token adjacency, never text inside literals or comments;
//! * [`lints`] — the registry ([`lints::LINTS`]) with per-line suppression
//!   (`// lint:allow(<name>): <reason>`, reason mandatory) and `#[cfg(test)]`
//!   region detection;
//! * [`config`] — `lint.toml` (a hand-rolled TOML subset) for path-scoped
//!   policy: excluded paths, relaxed (test/bench/example) paths, per-lint
//!   allowances;
//! * [`runner`] — the workspace walk plus human and JSON reports.
//!
//! The binary (`cargo run -p ptolemy-lint`) exits non-zero on any finding and
//! is wired into CI as a hard gate next to clippy/fmt; the crate's test-suite
//! runs every lint against fixture snippets **and** asserts the real workspace
//! is violation-free, so the gate cannot silently rot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod runner;

pub use config::Config;
pub use lints::{Finding, LINTS};
pub use runner::{run, Report};
