//! `lint.toml` parsing: a hand-rolled subset of TOML (sections, string values
//! and string arrays, `#` comments) — enough for path-scoped lint policy
//! without pulling a TOML crate into the offline workspace.
//!
//! ```toml
//! [scan]
//! roots = ["crates", "src", "examples", "tests"]
//! exclude = ["crates/lint/tests/fixtures"]
//!
//! [relaxed]
//! paths = ["crates/bench/"]
//!
//! [allow]
//! direct-available-parallelism = ["crates/nn/src/batch.rs"]
//! ```

use crate::lints;

/// Path-scoped lint policy loaded from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directories (relative to the workspace root) whose `.rs` files are
    /// scanned.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan entirely (fixtures, vendored
    /// shims, build output).
    pub exclude: Vec<String>,
    /// Path prefixes where only the always-on lints run (see
    /// [`crate::lints::relaxed_in_tests`]).  Any path with a `tests`,
    /// `examples` or `benches` component is relaxed implicitly.
    pub relaxed: Vec<String>,
    /// Per-lint allowances: `(lint name, path prefixes where it is off)`.
    pub allow: Vec<(String, Vec<String>)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec![
                "crates".into(),
                "src".into(),
                "examples".into(),
                "tests".into(),
            ],
            exclude: Vec::new(),
            relaxed: Vec::new(),
            allow: Vec::new(),
        }
    }
}

impl Config {
    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside the
    /// supported subset, and for `[allow]` keys that are not known lint names
    /// (a typo there would silently disable nothing).
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut pending = String::new();
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: buffer until brackets balance.
            let candidate = if pending.is_empty() {
                line
            } else {
                format!("{pending} {line}")
            };
            if unbalanced(&candidate) {
                pending = candidate;
                continue;
            }
            pending = String::new();
            let line = candidate;
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{line_no}: expected `key = value`"))?;
            let key = key.trim();
            let values =
                parse_values(value.trim()).map_err(|e| format!("lint.toml:{line_no}: {e}"))?;
            match (section.as_str(), key) {
                ("scan", "roots") => config.roots = values,
                ("scan", "exclude") => config.exclude = values,
                ("relaxed", "paths") => config.relaxed = values,
                ("allow", lint) => {
                    if !lints::is_known(lint) {
                        return Err(format!(
                            "lint.toml:{line_no}: unknown lint '{lint}' in [allow] (known: {})",
                            lints::known_names().join(", ")
                        ));
                    }
                    config.allow.push((lint.to_string(), values));
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{line_no}: unsupported key '{key}' in section [{section}]"
                    ))
                }
            }
        }
        if !pending.is_empty() {
            return Err("lint.toml: unterminated array".into());
        }
        Ok(config)
    }

    /// Loads the config from a file, or the defaults when the file is absent.
    ///
    /// # Errors
    ///
    /// Propagates read failures (other than the file being missing) and parse
    /// errors.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// `true` if `path` (workspace-relative, forward slashes) is excluded from
    /// the scan.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|prefix| path.starts_with(prefix))
    }

    /// `true` if `path` gets the relaxed rule set: a `tests`/`examples`/
    /// `benches` component, or a configured prefix.
    pub fn is_relaxed(&self, path: &str) -> bool {
        path.split('/')
            .any(|part| matches!(part, "tests" | "examples" | "benches"))
            || self.relaxed.iter().any(|prefix| path.starts_with(prefix))
    }

    /// The lints disabled for `path` via `[allow]` entries.
    pub fn allowed_lints(&self, path: &str) -> Vec<&str> {
        self.allow
            .iter()
            .filter(|(_, prefixes)| prefixes.iter().any(|prefix| path.starts_with(prefix)))
            .map(|(lint, _)| lint.as_str())
            .collect()
    }
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `true` while an array value still awaits its closing bracket.
fn unbalanced(line: &str) -> bool {
    let mut in_string = false;
    let mut depth = 0i64;
    for c in line.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// Parses `"v"` or `["a", "b", …]` into a list of strings.
fn parse_values(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("array value missing closing ']'")?;
        inner
            .split(',')
            .map(str::trim)
            .filter(|part| !part.is_empty())
            .map(parse_string)
            .collect()
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn parse_string(part: &str) -> Result<String, String> {
    part.strip_prefix('"')
        .and_then(|p| p.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got '{part}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let config = Config::parse(
            r#"
# workspace lint policy
[scan]
roots = ["crates", "src"]
exclude = [
    "crates/lint/tests/fixtures",  # fixture snippets are deliberate violations
    "vendor",
]

[relaxed]
paths = ["crates/bench/"]

[allow]
direct-available-parallelism = ["crates/nn/src/batch.rs", "crates/nn/src/lib.rs"]
"#,
        )
        .expect("parses");
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert_eq!(config.exclude, vec!["crates/lint/tests/fixtures", "vendor"]);
        assert!(config.is_excluded("vendor/proptest/src/lib.rs"));
        assert!(config.is_relaxed("crates/bench/src/lib.rs"));
        assert!(config.is_relaxed("crates/tensor/tests/proptests.rs"));
        assert!(!config.is_relaxed("crates/tensor/src/ops.rs"));
        assert_eq!(
            config.allowed_lints("crates/nn/src/batch.rs"),
            vec!["direct-available-parallelism"]
        );
        assert!(config
            .allowed_lints("crates/serve/src/server.rs")
            .is_empty());
    }

    #[test]
    fn rejects_unknown_lints_and_bad_syntax() {
        assert!(Config::parse("[allow]\nno-such-lint = [\"x\"]")
            .unwrap_err()
            .contains("unknown lint"));
        assert!(Config::parse("[scan]\nroots")
            .unwrap_err()
            .contains("key = value"));
        assert!(Config::parse("[scan]\nroots = [\"a\"")
            .unwrap_err()
            .contains("unterminated"));
        assert!(Config::parse("[scan]\nbogus = \"x\"")
            .unwrap_err()
            .contains("unsupported key"));
    }

    #[test]
    fn defaults_apply_without_a_file() {
        let config =
            Config::load(std::path::Path::new("/nonexistent/lint.toml")).expect("defaults");
        assert_eq!(config, Config::default());
    }
}
