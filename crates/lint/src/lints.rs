//! The lint registry: each lint guards one convention the runtime's
//! correctness or performance story rests on, grounded in a real past bug or a
//! parity invariant pinned by the test-suite (see `docs/ARCHITECTURE.md`,
//! "Enforced invariants").
//!
//! Lints run over the [`crate::lexer`] token stream, so strings, comments and
//! char literals never false-positive.  Test code — files with a
//! `tests`/`examples`/`benches` path component, configured relaxed paths, and
//! `#[cfg(test)]` / `#[test]` regions inside library files — gets the relaxed
//! rule set: only the always-on lints run there (see [`relaxed_in_tests`]).
//!
//! A finding is suppressed by an adjacent `// lint:allow(<name>): <reason>`
//! comment (same line, or the line directly above); the reason is mandatory —
//! a suppression without one is itself a finding, and the violation it tried
//! to cover stays reported.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Token, TokenKind};

/// `(name, what it guards)` for every lint, in reporting order.
pub const LINTS: &[(&str, &str)] = &[
    (
        "direct-available-parallelism",
        "std::thread::available_parallelism() re-reads cgroup state (~10µs/call); use the cached \
         ptolemy_nn::available_parallelism() accessor",
    ),
    (
        "unbounded-channel",
        "mpsc::channel() is unbounded; worker handoffs must use sync_channel so backlog applies \
         backpressure instead of piling up",
    ),
    (
        "panic-in-worker",
        "unwrap/expect/panic!/unreachable! in library code can strand serve tickets and poison \
         worker-shared mutexes; return an error or annotate the structural invariant",
    ),
    (
        "float-eq",
        "parity is pinned bit-for-bit via to_bits(); ==/!= against a float literal silently \
         depends on rounding (and -0.0 == 0.0)",
    ),
    (
        "undocumented-unsafe",
        "every unsafe block/fn/impl needs an adjacent // SAFETY: comment stating the invariant \
         that makes it sound",
    ),
    (
        "todo-marker",
        "todo!/unimplemented! must not reach library code; gate the feature or return an error",
    ),
    (
        "raw-instant",
        "Instant::now() in library code bypasses ptolemy_obs::Clock — timings become invisible \
         to the manual test clock and inconsistent with the metrics registry; take a Clock and \
         read now_ns()",
    ),
    (
        "raw-numeric-cast",
        "`as i8` / `as u8` are lossy saturating casts; all quantization rounding lives in the \
         audited crates/tensor/src/quant.rs module — call its QuantParams API instead",
    ),
    (
        "suppression",
        "malformed lint:allow comment (unknown lint name, or missing the mandatory ': reason')",
    ),
];

/// Lints that do **not** run in relaxed scope (test/bench/example code): tests
/// deliberately unwrap, compare floats and probe std's parallelism lookup.
/// `undocumented-unsafe` (and `suppression` well-formedness) stay on
/// everywhere.
pub const RELAXED_IN_TESTS: &[&str] = &[
    "direct-available-parallelism",
    "unbounded-channel",
    "panic-in-worker",
    "float-eq",
    "todo-marker",
    "raw-instant",
    "raw-numeric-cast",
];

/// `true` if `name` names a registered lint.
pub fn is_known(name: &str) -> bool {
    LINTS.iter().any(|(lint, _)| *lint == name)
}

/// The registered lint names, in reporting order.
pub fn known_names() -> Vec<&'static str> {
    LINTS.iter().map(|(name, _)| *name).collect()
}

/// `true` if `lint` is skipped in relaxed (test/bench/example) scope.
pub fn relaxed_in_tests(lint: &str) -> bool {
    RELAXED_IN_TESTS.contains(&lint)
}

/// One lint violation with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired.
    pub lint: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed column.
    pub col: usize,
    /// What happened and what to do instead.
    pub message: String,
}

/// Per-file lint context the runner derives from the config.
#[derive(Debug, Default)]
pub struct FileContext {
    /// The whole file uses the relaxed rule set (tests/, examples/,
    /// benches/, or a configured relaxed prefix).
    pub relaxed: bool,
    /// Lints disabled for this file via `[allow]` config entries.
    pub allowed: HashSet<String>,
}

/// Runs every lint over one file's token stream.
pub fn check_file(path: &str, tokens: &[Token], context: &FileContext) -> Vec<Finding> {
    let regions = test_regions(tokens);
    let (suppressions, mut findings) = parse_suppressions(path, tokens);
    let safety_lines: HashSet<usize> = tokens
        .iter()
        .filter(|t| match &t.kind {
            TokenKind::LineComment(text) | TokenKind::BlockComment(text) => {
                text.contains("SAFETY:")
            }
            _ => false,
        })
        .map(|t| t.line)
        .collect();

    // The code stream: comments removed so adjacency checks (`.` `unwrap` `(`)
    // see through interleaved comments.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let ident = |i: usize| -> Option<&str> { code.get(i).and_then(|t| t.kind.ident()) };
    let punct = |i: usize, op: &str| -> bool { code.get(i).is_some_and(|t| t.kind.is_punct(op)) };
    let prev_punct = |i: usize, op: &str| -> bool { i > 0 && code[i - 1].kind.is_punct(op) };
    let prev2_path = |i: usize, seg: &str| -> bool {
        i >= 2 && prev_punct(i, "::") && code[i - 2].kind.ident() == Some(seg)
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut emit = |lint: &'static str, token: &Token, message: String| {
        raw.push(Finding {
            lint,
            file: path.to_string(),
            line: token.line,
            col: token.col,
            message,
        });
    };

    for (i, token) in code.iter().enumerate() {
        match token.kind.ident() {
            Some("available_parallelism") if prev2_path(i, "thread") => {
                emit(
                    "direct-available-parallelism",
                    token,
                    "direct std::thread::available_parallelism() re-reads cgroup state on every \
                     call (~10µs, the exact hot-path regression PR 4 removed); call the cached \
                     ptolemy_nn::available_parallelism() instead"
                        .into(),
                );
            }
            Some("now") if prev2_path(i, "Instant") => {
                emit(
                    "raw-instant",
                    token,
                    "Instant::now() in library code — take a ptolemy_obs::Clock and read \
                     now_ns() so the timing is steerable by the manual test clock and lands \
                     in the same timebase as the metrics registry"
                        .into(),
                );
            }
            Some("channel") if prev2_path(i, "mpsc") => {
                emit(
                    "unbounded-channel",
                    token,
                    "mpsc::channel() is unbounded — a slow consumer piles work up without \
                     backpressure; use mpsc::sync_channel(bound) like the serve/extraction \
                     overlap workers"
                        .into(),
                );
            }
            Some(name @ ("unwrap" | "expect")) if prev_punct(i, ".") && punct(i + 1, "(") => {
                emit(
                    "panic-in-worker",
                    token,
                    format!(
                        ".{name}() panics on the failure path — in worker/library code that \
                         strands serve tickets and poisons shared mutexes; propagate an error, \
                         or annotate the structural invariant with lint:allow"
                    ),
                );
            }
            Some(name @ ("panic" | "unreachable")) if punct(i + 1, "!") => {
                emit(
                    "panic-in-worker",
                    token,
                    format!(
                        "{name}! in library code kills the calling worker; return a typed error, \
                         or annotate why this branch is structurally impossible"
                    ),
                );
            }
            Some(ty @ ("i8" | "u8")) if i > 0 && ident(i - 1) == Some("as") => {
                emit(
                    "raw-numeric-cast",
                    token,
                    format!(
                        "`as {ty}` is a lossy saturating cast — quantization rounding is audited \
                         in one place; use ptolemy_tensor::quant::QuantParams (or annotate a \
                         non-quantization bit-field encoding with lint:allow)"
                    ),
                );
            }
            Some(name @ ("todo" | "unimplemented")) if punct(i + 1, "!") => {
                emit(
                    "todo-marker",
                    token,
                    format!("{name}! must not ship in library code"),
                );
            }
            Some("unsafe") => {
                let documented = (token.line.saturating_sub(5)..=token.line)
                    .any(|line| safety_lines.contains(&line));
                if !documented {
                    emit(
                        "undocumented-unsafe",
                        token,
                        "unsafe without an adjacent // SAFETY: comment — state the invariant \
                         that makes this sound (within the 5 lines above)"
                            .into(),
                    );
                }
            }
            _ => {}
        }
        if token.kind.is_punct("==") || token.kind.is_punct("!=") {
            let cast_to_float = |at: usize| -> bool {
                matches!(ident(at), Some("f32" | "f64")) && ident(at.wrapping_sub(1)) == Some("as")
            };
            // `(x as f32) == y`: look through a closing paren group for a
            // float cast anywhere inside it.
            let paren_casts_float = |close: usize| -> bool {
                if !punct(close, ")") {
                    return false;
                }
                let mut depth = 1usize;
                let mut at = close;
                while at > 0 && depth > 0 {
                    at -= 1;
                    if punct(at, ")") {
                        depth += 1;
                    } else if punct(at, "(") {
                        depth -= 1;
                    } else if depth == 1 && cast_to_float(at) {
                        return true;
                    }
                }
                false
            };
            let float_before = i > 0
                && (matches!(code[i - 1].kind, TokenKind::Float)
                    || cast_to_float(i - 1)
                    || paren_casts_float(i - 1));
            let float_after = matches!(code.get(i + 1).map(|t| &t.kind), Some(TokenKind::Float))
                || (punct(i + 1, "-")
                    && matches!(code.get(i + 2).map(|t| &t.kind), Some(TokenKind::Float)));
            if float_before || float_after {
                emit(
                    "float-eq",
                    token,
                    "==/!= against a float — parity in this workspace is pinned bit-for-bit; \
                     compare .to_bits(), use an explicit tolerance, or annotate the sentinel \
                     check"
                        .into(),
                );
            }
        }
    }

    // Apply scope, config allowances and suppressions.
    findings.extend(raw.into_iter().filter(|finding| {
        if context.allowed.contains(finding.lint) {
            return false;
        }
        if relaxed_in_tests(finding.lint)
            && (context.relaxed || regions.iter().any(|r| r.contains(finding.line)))
        {
            return false;
        }
        let suppressed = |line: usize| {
            suppressions
                .get(&line)
                .is_some_and(|names| names.iter().any(|n| n == finding.lint))
        };
        !(suppressed(finding.line) || suppressed(finding.line.wrapping_sub(1)))
    }));
    findings.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    findings
}

/// A `start..=end` line range of test-scoped code.
#[derive(Debug)]
struct Region {
    start: usize,
    end: usize,
}

impl Region {
    fn contains(&self, line: usize) -> bool {
        (self.start..=self.end).contains(&line)
    }
}

/// Finds the line ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items: the attribute, through the matching close brace of the item's body.
fn test_regions(tokens: &[Token]) -> Vec<Region> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // An outer attribute: `#` `[` … `]` (inner `#![…]` attributes are
        // skipped — they configure the enclosing scope, not a test item).
        if !code[i].kind.is_punct("#") || !code.get(i + 1).is_some_and(|t| t.kind.is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            if code[j].kind.is_punct("[") {
                depth += 1;
            } else if code[j].kind.is_punct("]") {
                depth -= 1;
            } else if let Some(name) = code[j].kind.ident() {
                idents.push(name);
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"test" | &"bench") => true,
            Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        while j < code.len()
            && code[j].kind.is_punct("#")
            && code.get(j + 1).is_some_and(|t| t.kind.is_punct("["))
        {
            let mut depth = 1usize;
            let mut k = j + 2;
            while k < code.len() && depth > 0 {
                if code[k].kind.is_punct("[") {
                    depth += 1;
                } else if code[k].kind.is_punct("]") {
                    depth -= 1;
                }
                k += 1;
            }
            j = k;
        }
        // The item body: first `{` before a `;` at the item level; a `;`
        // first means a body-less item (`#[cfg(test)] mod tests;`).
        let mut body_open = None;
        let mut k = j;
        while k < code.len() {
            if code[k].kind.is_punct("{") {
                body_open = Some(k);
                break;
            }
            if code[k].kind.is_punct(";") {
                break;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = j;
            continue;
        };
        let mut depth = 1usize;
        let mut close = open;
        let mut k = open + 1;
        while k < code.len() {
            if code[k].kind.is_punct("{") {
                depth += 1;
            } else if code[k].kind.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        let end = if depth == 0 {
            code[close].line
        } else {
            // Unterminated (mid-edit file): relax to the end of the file.
            code.last().map_or(attr_line, |t| t.line)
        };
        regions.push(Region {
            start: attr_line,
            end,
        });
        i = k.max(j) + 1;
    }
    regions
}

/// Parses `// lint:allow(name, …): reason` comments.  Returns the map of
/// line → suppressed lint names, plus findings for malformed suppressions
/// (unknown lint, missing mandatory reason) — those do **not** suppress.
fn parse_suppressions(path: &str, tokens: &[Token]) -> (HashMap<usize, Vec<String>>, Vec<Finding>) {
    let mut map: HashMap<usize, Vec<String>> = HashMap::new();
    let mut findings = Vec::new();
    for token in tokens {
        let TokenKind::LineComment(text) = &token.kind else {
            continue;
        };
        let Some(rest) = text.trim().strip_prefix("lint:allow") else {
            continue;
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                lint: "suppression",
                file: path.to_string(),
                line: token.line,
                col: token.col,
                message,
            });
        };
        let Some((names, reason)) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) else {
            bad("lint:allow must name the lint: // lint:allow(<name>): <reason>".into());
            continue;
        };
        let Some(reason) = reason.trim_start().strip_prefix(':') else {
            bad(
                "lint:allow is missing its mandatory ': <reason>' — say why the invariant \
                 holds here"
                    .into(),
            );
            continue;
        };
        if reason.trim().is_empty() {
            bad("lint:allow has an empty reason — say why the invariant holds here".into());
            continue;
        }
        let mut ok = true;
        let mut listed = Vec::new();
        for name in names.split(',').map(str::trim) {
            if is_known(name) && name != "suppression" {
                listed.push(name.to_string());
            } else {
                bad(format!(
                    "lint:allow names unknown lint '{name}' (known: {})",
                    known_names().join(", ")
                ));
                ok = false;
            }
        }
        if ok {
            map.entry(token.line).or_default().extend(listed);
        }
    }
    (map, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn strict(source: &str) -> Vec<Finding> {
        check_file("lib.rs", &lex(source), &FileContext::default())
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn flags_each_lint_with_line_precision() {
        let findings = strict(
            "fn f() {\n\
             let n = std::thread::available_parallelism();\n\
             let (tx, rx) = std::sync::mpsc::channel::<u8>();\n\
             let v = x.unwrap();\n\
             if a == 0.5 { panic!(\"no\") }\n\
             todo!()\n\
             }",
        );
        assert_eq!(
            lints_of(&findings),
            vec![
                "direct-available-parallelism",
                "unbounded-channel",
                "panic-in-worker",
                "float-eq",
                "panic-in-worker",
                "todo-marker",
            ]
        );
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
        assert_eq!(findings[5].line, 6);
    }

    #[test]
    fn sync_channel_and_cached_accessor_pass() {
        let findings = strict(
            "fn f() {\n\
             let n = ptolemy_nn::available_parallelism();\n\
             let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(1);\n\
             let v = x.unwrap_or_default();\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let findings = strict(
            "fn f() {\n\
             let s = \"x.unwrap() mpsc::channel( panic!\";\n\
             // a comment about .unwrap() and todo!()\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_regions_are_relaxed() {
        let findings = strict(
            "fn lib() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             #[test]\n\
             fn t() { y.unwrap(); assert!(1.0 == z); }\n\
             }\n",
        );
        assert_eq!(lints_of(&findings), vec!["panic-in-worker"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn cfg_not_test_stays_strict() {
        let findings = strict("#[cfg(not(test))]\nfn f() { x.unwrap(); }\n");
        assert_eq!(lints_of(&findings), vec!["panic-in-worker"]);
    }

    #[test]
    fn suppression_with_reason_suppresses() {
        let findings = strict(
            "fn f() {\n\
             // lint:allow(panic-in-worker): validated non-empty at construction\n\
             let v = x.unwrap();\n\
             let w = y.unwrap(); // lint:allow(panic-in-worker): index bounded by len above\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppression_without_reason_is_a_finding_and_does_not_suppress() {
        let findings = strict(
            "fn f() {\n\
             let v = x.unwrap(); // lint:allow(panic-in-worker)\n\
             }",
        );
        // Same line; sorted by column — the violation first, then the
        // malformed trailing suppression.
        assert_eq!(lints_of(&findings), vec!["panic-in-worker", "suppression"]);
    }

    #[test]
    fn suppression_of_unknown_lint_is_a_finding() {
        let findings = strict("// lint:allow(no-such): because\nfn f() {}\n");
        assert_eq!(lints_of(&findings), vec!["suppression"]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let findings = strict("fn f() { unsafe { go() } }\n");
        assert_eq!(lints_of(&findings), vec!["undocumented-unsafe"]);
        let findings = strict(
            "fn f() {\n// SAFETY: ptr is valid for reads, checked above\nunsafe { go() }\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_is_enforced_even_in_tests() {
        let findings = strict("#[test]\nfn t() { unsafe { go() } }\n");
        assert_eq!(lints_of(&findings), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn float_eq_variants() {
        assert_eq!(
            lints_of(&strict("fn f() { let a = x != 1e-3; }")),
            vec!["float-eq"]
        );
        assert_eq!(
            lints_of(&strict("fn f() { let a = 0.5 == x; }")),
            vec!["float-eq"]
        );
        assert_eq!(
            lints_of(&strict("fn f() { let a = x == -0.5; }")),
            vec!["float-eq"]
        );
        assert_eq!(
            lints_of(&strict("fn f() { let a = (x as f32) == y; }")),
            vec!["float-eq"]
        );
        // to_bits comparison and integer comparisons pass.
        assert!(strict("fn f() { let a = x.to_bits() == y.to_bits(); }").is_empty());
        assert!(strict("fn f() { let a = n == 3; }").is_empty());
        // `=>` and `<=` are not `==`.
        assert!(strict("fn f() { match x { _ => 0.5 }; }").is_empty());
        assert!(strict("fn f() { let a = x <= 0.5; }").is_empty());
    }

    #[test]
    fn raw_instant_fires_in_library_code_only() {
        // Positive: any Instant::now() path form in library code.
        assert_eq!(
            lints_of(&strict("fn f() { let t = Instant::now(); }")),
            vec!["raw-instant"]
        );
        assert_eq!(
            lints_of(&strict("fn f() { let t = std::time::Instant::now(); }")),
            vec!["raw-instant"]
        );
        // Negative: Clock-based timing, other now()s, and strings/comments.
        assert!(strict("fn f() { let t = clock.now_ns(); }").is_empty());
        assert!(strict("fn f() { let t = SystemTime::now(); }").is_empty());
        assert!(strict("fn f() { // Instant::now() in prose\n }").is_empty());
        // Relaxed in test regions: benches and tests time freely.
        assert!(strict("#[test]\nfn t() { let s = Instant::now(); }").is_empty());
        // Suppressed with a reason.
        assert!(strict(
            "fn f() {\n\
             // lint:allow(raw-instant): monotonic source feeding the Clock itself\n\
             let t = Instant::now();\n\
             }"
        )
        .is_empty());
    }

    #[test]
    fn raw_numeric_cast_fires_outside_quant_module() {
        // Positive: both cast targets, in any expression position.
        assert_eq!(
            lints_of(&strict("fn f() { let q = (x / s).round() as i8; }")),
            vec!["raw-numeric-cast"]
        );
        assert_eq!(
            lints_of(&strict("fn f() { let b = word as u8; }")),
            vec!["raw-numeric-cast"]
        );
        // Negative: widening / non-8-bit casts, From conversions, prose.
        assert!(strict("fn f() { let v = q as i32; }").is_empty());
        assert!(strict("fn f() { let v = i8::try_from(x); }").is_empty());
        assert!(strict("fn f() { let v = f32::from(q); }").is_empty());
        assert!(strict("fn f() { // `as i8` in a comment\n }").is_empty());
        assert!(strict("fn f() { let s = \"cast as u8\"; }").is_empty());
        // Relaxed in test regions: tests build i8 fixtures freely.
        assert!(strict("#[test]\nfn t() { let q = x as i8; }").is_empty());
        // Suppressed with a reason (the ISA word-encoding sites).
        assert!(strict(
            "fn f() {\n\
             // lint:allow(raw-numeric-cast): ISA word-field encoding, not quantization\n\
             let b = (word >> 8) as u8;\n\
             }"
        )
        .is_empty());
    }

    #[test]
    fn relaxed_file_context_keeps_unsafe_lint_only() {
        let context = FileContext {
            relaxed: true,
            allowed: HashSet::new(),
        };
        let tokens = lex("fn f() { x.unwrap(); unsafe { go() } }");
        let findings = check_file("tests/t.rs", &tokens, &context);
        assert_eq!(lints_of(&findings), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn config_allow_disables_per_file() {
        let context = FileContext {
            relaxed: false,
            allowed: ["direct-available-parallelism".to_string()].into(),
        };
        let tokens = lex("fn f() { let n = thread::available_parallelism(); }");
        assert!(check_file("crates/nn/src/batch.rs", &tokens, &context).is_empty());
    }
}
