//! CLI for the workspace invariant lints: scans the workspace, prints findings
//! (human-readable by default, `--json` for the CI artifact) and exits
//! non-zero when the gate should fail.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ptolemy_lint::{runner, Config};

const USAGE: &str = "\
ptolemy-lint — offline workspace invariant lints

USAGE:
    cargo run -p ptolemy-lint [-- OPTIONS]

OPTIONS:
    --json             emit the machine-readable JSON report instead of text
    --root <dir>       workspace root to scan (default: current directory)
    --config <file>    lint config (default: <root>/lint.toml; defaults apply
                       if the file does not exist)
    --list             list the registered lints and exit
    -h, --help         show this help

EXIT CODE:
    0 when the scan is clean, 1 on any finding, 2 on usage or I/O errors.
";

fn main() -> ExitCode {
    match cli(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ptolemy-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn cli(args: Vec<String>) -> Result<ExitCode, String> {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => root = PathBuf::from(iter.next().ok_or("--root needs a directory")?),
            "--config" => {
                config_path = Some(PathBuf::from(iter.next().ok_or("--config needs a file")?));
            }
            "--list" => {
                for (name, guards) in ptolemy_lint::LINTS {
                    println!("{name}\n    {guards}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = Config::load(&config_path)?;
    let report = runner::run(&root, &config)?;
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
