//! The workspace runner: walks every `.rs` file under the configured roots,
//! applies the path-scoped policy from `lint.toml`, and renders findings as
//! human-readable lines or a JSON report.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer;
use crate::lints::{self, FileContext, Finding};

/// The outcome of one workspace scan.
#[derive(Debug)]
pub struct Report {
    /// Findings across all scanned files, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the scan found nothing — the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report (one `file:line:col: [lint] message`
    /// per finding, plus a summary line).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                finding.file, finding.line, finding.col, finding.lint, finding.message
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "ptolemy-lint: {} files scanned, no violations\n",
                self.files_scanned
            ));
        } else {
            let files: HashSet<&str> = self.findings.iter().map(|f| f.file.as_str()).collect();
            out.push_str(&format!(
                "ptolemy-lint: {} violation(s) in {} file(s) ({} scanned)\n",
                self.findings.len(),
                files.len(),
                self.files_scanned
            ));
        }
        out
    }

    /// Renders the machine-readable JSON report (hand-rolled emission — the
    /// crate is dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_string(finding.lint),
                json_string(&finding.file),
                finding.line,
                finding.col,
                json_string(&finding.message)
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"clean\":{}}}\n",
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans the workspace rooted at `root` under `config`.
///
/// # Errors
///
/// Returns a message on unreadable directories or files (a missing configured
/// root is tolerated — the layout may legitimately lack `examples/`).
pub fn run(root: &Path, config: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    for sub in &config.roots {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    // Deterministic reporting order, independent of directory enumeration.
    files.sort();

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for file in &files {
        let relative = relative_path(root, file);
        if config.is_excluded(&relative) {
            continue;
        }
        files_scanned += 1;
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let context = FileContext {
            relaxed: config.is_relaxed(&relative),
            allowed: config
                .allowed_lints(&relative)
                .into_iter()
                .map(str::to_string)
                .collect(),
        };
        findings.extend(lints::check_file(&relative, &lexer::lex(&source), &context));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
    Ok(Report {
        findings,
        files_scanned,
    })
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    // Forward slashes so config prefixes and reports are platform-stable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            // `target/` can appear under any root when building in-tree.
            if path.file_name().is_some_and(|name| name == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ptolemy-lint-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("src")).unwrap();
        dir
    }

    #[test]
    fn scans_roots_and_reports_relative_paths() {
        let dir = scratch_dir("scan");
        std::fs::write(
            dir.join("src/lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let report = run(&dir, &Config::default()).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "src/lib.rs");
        assert_eq!(report.findings[0].lint, "panic-in-worker");
        let human = report.render_human();
        assert!(human.contains("src/lib.rs:1:"), "{human}");
        assert!(human.contains("violation"), "{human}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let dir = scratch_dir("json");
        std::fs::write(dir.join("src/lib.rs"), "pub fn f() { todo!() }\n").unwrap();
        let report = run(&dir, &Config::default()).unwrap();
        let json = report.render_json();
        assert!(json.starts_with("{\"findings\":["), "{json}");
        assert!(json.contains("\"lint\":\"todo-marker\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
        // Quotes and backslashes in messages must be escaped.
        assert!(!json.contains("\n\""), "raw newline inside JSON: {json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn excluded_paths_are_skipped() {
        let dir = scratch_dir("exclude");
        std::fs::create_dir_all(dir.join("src/generated")).unwrap();
        std::fs::write(dir.join("src/generated/bad.rs"), "pub fn f() { todo!() }\n").unwrap();
        std::fs::write(dir.join("src/lib.rs"), "pub fn f() {}\n").unwrap();
        let config = Config {
            exclude: vec!["src/generated".into()],
            ..Config::default()
        };
        let report = run(&dir, &config).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.files_scanned, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_report_renders_summary() {
        let dir = scratch_dir("clean");
        std::fs::write(dir.join("src/lib.rs"), "pub fn f() {}\n").unwrap();
        let report = run(&dir, &Config::default()).unwrap();
        assert!(report.is_clean());
        assert!(report.render_human().contains("no violations"));
        assert!(report.render_json().contains("\"clean\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
