//! Important-neuron extraction (paper Sec. III-A/III-C, Fig. 3).
//!
//! Backward extraction starts from the predicted-class neuron of the last layer and
//! walks towards the input: at every weight layer it ranks (cumulative threshold) or
//! filters (absolute threshold) the partial sums feeding each currently-important
//! output neuron and keeps the contributing input neurons.  Pass-through layers
//! (ReLU, pooling, flatten) simply re-map indices.
//!
//! Forward extraction selects each layer's important neurons from the layer's own
//! output activations as soon as the layer finishes, which is what allows the
//! compiler to overlap extraction with the next layer's inference.

use std::collections::BTreeSet;

use ptolemy_nn::{Contribution, ForwardTrace, Network};

use crate::{ActivationPath, CoreError, DetectionProgram, Direction, Result, ThresholdKind};

/// Computes the `(network layer index, mask length)` layout of paths extracted with
/// `program` on `network`.
///
/// Backward extraction records masks over each enabled weight layer's *input*
/// feature map; forward extraction records masks over its *output* feature map.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the program does not describe the same
/// number of weight layers as the network has.
pub fn path_layout(network: &Network, program: &DetectionProgram) -> Result<Vec<(usize, usize)>> {
    let weight_layers = network.weight_layer_indices();
    if weight_layers.len() != program.num_weight_layers() {
        return Err(CoreError::InvalidProgram(format!(
            "program describes {} weight layers but the network has {}",
            program.num_weight_layers(),
            weight_layers.len()
        )));
    }
    let mut layout = Vec::new();
    for ordinal in program.enabled_layers() {
        let layer_idx = weight_layers[ordinal];
        let layer = network.layer(layer_idx)?;
        let len = match program.direction() {
            Direction::Backward => layer.input_len(),
            Direction::Forward => layer.output_len(),
        };
        layout.push((layer_idx, len));
    }
    Ok(layout)
}

/// Extracts the activation path of one traced inference under `program`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the program does not match the network,
/// or propagates substrate errors for inconsistent traces.
pub fn extract_path(
    network: &Network,
    trace: &ForwardTrace,
    program: &DetectionProgram,
) -> Result<ActivationPath> {
    if trace.num_layers() != network.num_layers() {
        return Err(CoreError::InvalidInput(format!(
            "trace covers {} layers but the network has {}",
            trace.num_layers(),
            network.num_layers()
        )));
    }
    let layout = path_layout(network, program)?;
    let mut path = ActivationPath::empty(&layout);
    match program.direction() {
        Direction::Backward => extract_backward(network, trace, program, &mut path)?,
        Direction::Forward => extract_forward(network, trace, program, &mut path)?,
    }
    Ok(path)
}

/// Selects contributor indices from weighted partial sums according to a threshold.
///
/// * Cumulative: minimal prefix of the descending-sorted partial sums whose
///   cumulative sum reaches `theta × target` (paper Fig. 3).  If the target is not
///   positive, only the single largest contributor is kept.
/// * Absolute: every partial sum `≥ phi × |target|`.
pub(crate) fn select_contributors(
    pairs: &[(usize, f32)],
    target: f32,
    threshold: ThresholdKind,
) -> Vec<usize> {
    if pairs.is_empty() {
        return Vec::new();
    }
    match threshold {
        ThresholdKind::Cumulative { theta } => {
            let mut sorted: Vec<(usize, f32)> = pairs.to_vec();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            if target <= 0.0 {
                return vec![sorted[0].0];
            }
            let goal = theta * target;
            let mut cum = 0.0;
            let mut selected = Vec::new();
            for (idx, partial) in sorted {
                selected.push(idx);
                cum += partial;
                if cum >= goal {
                    break;
                }
            }
            selected
        }
        ThresholdKind::Absolute { phi } => {
            let cutoff = phi * target.abs();
            pairs
                .iter()
                .filter(|(_, p)| *p >= cutoff && *p > 0.0)
                .map(|(i, _)| *i)
                .collect()
        }
    }
}

/// Selects important neurons of a layer output directly from activation values
/// (forward extraction, where no downstream importance information exists yet).
pub(crate) fn select_from_activations(values: &[f32], threshold: ThresholdKind) -> Vec<usize> {
    if values.is_empty() {
        return Vec::new();
    }
    match threshold {
        ThresholdKind::Cumulative { theta } => {
            let mut order: Vec<usize> = (0..values.len()).collect();
            order.sort_by(|&a, &b| {
                values[b]
                    .partial_cmp(&values[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let total: f32 = values.iter().filter(|v| **v > 0.0).sum();
            if total <= 0.0 {
                return vec![order[0]];
            }
            let goal = theta * total;
            let mut cum = 0.0;
            let mut selected = Vec::new();
            for idx in order {
                if values[idx] <= 0.0 {
                    break;
                }
                selected.push(idx);
                cum += values[idx];
                if cum >= goal {
                    break;
                }
            }
            selected
        }
        ThresholdKind::Absolute { phi } => {
            let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if max <= 0.0 {
                return Vec::new();
            }
            let cutoff = phi * max;
            values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v >= cutoff && **v > 0.0)
                .map(|(i, _)| i)
                .collect()
        }
    }
}

fn extract_backward(
    network: &Network,
    trace: &ForwardTrace,
    program: &DetectionProgram,
    path: &mut ActivationPath,
) -> Result<()> {
    let weight_layers = network.weight_layer_indices();
    // Important neurons at the *output* of the layer currently being examined.
    // The walk starts at the last layer with the predicted class (paper: "the last
    // layer has only one important neuron").
    let mut important: BTreeSet<usize> = BTreeSet::new();
    important.insert(trace.predicted_class());

    for layer_idx in (0..network.num_layers()).rev() {
        if important.is_empty() {
            break;
        }
        let layer = network.layer(layer_idx)?;
        let input = &trace.inputs[layer_idx];
        let output = &trace.outputs[layer_idx];
        let is_weight = layer.kind().is_weight_layer();

        if is_weight {
            let ordinal = weight_layers
                .iter()
                .position(|&l| l == layer_idx)
                .expect("weight layer index");
            let spec = program.specs()[ordinal];
            if !spec.enabled {
                // Early termination: the backward walk stops at the first disabled
                // weight layer (Sec. VII-F).
                break;
            }
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for &neuron in &important {
                let target = output.as_slice()[neuron];
                match layer.contributions(input, neuron)? {
                    Contribution::Weighted(pairs) => {
                        for idx in select_contributors(&pairs, target, spec.threshold) {
                            next.insert(idx);
                        }
                    }
                    Contribution::PassThrough(indices) => {
                        next.extend(indices);
                    }
                }
            }
            // Record the mask over this layer's input feature map.
            if let Some(segment) = path
                .segments_mut()
                .iter_mut()
                .find(|s| s.layer == layer_idx)
            {
                for &idx in &next {
                    segment.mask.set(idx);
                }
            }
            important = next;
        } else {
            // Pass-through layer: re-map the important output indices to input
            // indices (identity for ReLU/flatten, argmax routing for max pooling,
            // window members for average pooling).
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for &neuron in &important {
                let contribution = layer.contributions(input, neuron)?;
                next.extend(contribution.indices());
            }
            important = next;
        }
    }
    Ok(())
}

fn extract_forward(
    network: &Network,
    trace: &ForwardTrace,
    program: &DetectionProgram,
    path: &mut ActivationPath,
) -> Result<()> {
    let weight_layers = network.weight_layer_indices();
    for ordinal in program.enabled_layers() {
        let layer_idx = weight_layers[ordinal];
        let spec = program.specs()[ordinal];
        let output = &trace.outputs[layer_idx];
        let selected = select_from_activations(output.as_slice(), spec.threshold);
        if let Some(segment) = path
            .segments_mut()
            .iter_mut()
            .find(|s| s.layer == layer_idx)
        {
            for idx in selected {
                segment.mask.set(idx);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::layer::{Dense, Flatten, ReLU};
    use ptolemy_nn::Layer;
    use ptolemy_tensor::{Rng64, Tensor};

    /// The worked fully-connected example of Fig. 3 (left panel): input feature map
    /// `[0.1, 1.0, 0.4, 0.3, 0.2]`, kernel `[2.1, 0.09, 0.2, 0.2, 0.1]`, θ = 0.6.
    /// The two largest partial sums (0.21 from neuron 0 and 0.09 from neuron 1)
    /// cumulatively exceed 0.6 × 0.46, so neurons {0, 1} are important.
    #[test]
    fn fig3_fully_connected_example() {
        let pairs = vec![
            (0usize, 0.1 * 2.1),
            (1, 1.0 * 0.09),
            (2, 0.4 * 0.2),
            (3, 0.3 * 0.2),
            (4, 0.2 * 0.1),
        ];
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Cumulative { theta: 0.6 });
        assert_eq!(selected, vec![0, 1]);
        // With θ = 0.9 more neurons are needed.
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Cumulative { theta: 0.9 });
        assert!(selected.len() > 2);
        // Absolute thresholding keeps only partial sums above φ × |target|.
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Absolute { phi: 0.4 });
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn cumulative_selection_is_minimal() {
        let pairs = vec![(0, 0.5), (1, 0.3), (2, 0.2)];
        // θ = 0.5 of target 1.0 is reached by the single largest partial sum.
        assert_eq!(
            select_contributors(&pairs, 1.0, ThresholdKind::Cumulative { theta: 0.5 }),
            vec![0]
        );
        // θ = 1.0 needs all of them.
        assert_eq!(
            select_contributors(&pairs, 1.0, ThresholdKind::Cumulative { theta: 1.0 }).len(),
            3
        );
        // Non-positive target degenerates to the single largest contributor.
        assert_eq!(
            select_contributors(&pairs, -0.2, ThresholdKind::Cumulative { theta: 0.5 }),
            vec![0]
        );
        assert!(select_contributors(&[], 1.0, ThresholdKind::Cumulative { theta: 0.5 }).is_empty());
    }

    #[test]
    fn forward_selection_from_activations() {
        let values = [0.1, 3.0, 0.0, 1.0, -0.5];
        let selected = select_from_activations(&values, ThresholdKind::Cumulative { theta: 0.7 });
        // 3.0 alone is 3.0/4.1 ≈ 0.73 ≥ 0.7 of the positive mass.
        assert_eq!(selected, vec![1]);
        let selected = select_from_activations(&values, ThresholdKind::Absolute { phi: 0.3 });
        assert_eq!(selected, vec![1, 3]);
        // All-negative activations select nothing under absolute thresholds.
        assert!(
            select_from_activations(&[-1.0, -2.0], ThresholdKind::Absolute { phi: 0.1 }).is_empty()
        );
        assert!(select_from_activations(&[], ThresholdKind::Absolute { phi: 0.1 }).is_empty());
    }

    fn two_layer_net() -> Network {
        // 4 -> 3 -> 2 network with hand-written weights so paths are predictable.
        let w1 = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, 0.0, // neuron 0 driven by input 0
                0.0, 1.0, 0.0, 0.0, // neuron 1 driven by input 1
                0.0, 0.0, 1.0, 1.0, // neuron 2 driven by inputs 2 and 3
            ],
            &[3, 4],
        )
        .unwrap();
        let w2 = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, // class 0 driven by hidden 0
                0.0, 1.0, 1.0, // class 1 driven by hidden 1 and 2
            ],
            &[2, 3],
        )
        .unwrap();
        Network::new(vec![
            Box::new(Flatten::new(&[4])) as Box<dyn Layer>,
            Box::new(Dense::from_parts(w1, Tensor::zeros(&[3])).unwrap()),
            Box::new(ReLU::new(&[3])),
            Box::new(Dense::from_parts(w2, Tensor::zeros(&[2])).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn backward_extraction_follows_the_active_route() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.9 })
            .build()
            .unwrap();
        // Input that activates class 0 through input 0 only.
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        assert_eq!(trace.predicted_class(), 0);
        let path = extract_path(&net, &trace, &program).unwrap();
        // Layout: weight layers are network layers 1 and 3; masks over their inputs.
        assert_eq!(path.segments().len(), 2);
        let last = path.segment_for_layer(3).unwrap();
        assert!(last.mask.get(0), "hidden neuron 0 must be important");
        assert!(!last.mask.get(1));
        let first = path.segment_for_layer(1).unwrap();
        assert!(first.mask.get(0), "input 0 must be important");
        assert!(!first.mask.get(2));

        // A class-1 input leaves a different path.
        let y = Tensor::from_vec(vec![0.0, 0.0, 4.0, 4.0], &[4]).unwrap();
        let trace_y = net.forward_trace(&y).unwrap();
        assert_eq!(trace_y.predicted_class(), 1);
        let path_y = extract_path(&net, &trace_y, &program).unwrap();
        assert!(path_y.segment_for_layer(1).unwrap().mask.get(2));
        assert!(path_y.segment_for_layer(1).unwrap().mask.get(3));
        assert!(!path_y.segment_for_layer(1).unwrap().mask.get(0));
        // Paths of different classes are distinct.
        assert!(path.jaccard(&path_y).unwrap() < 0.5);
    }

    #[test]
    fn forward_extraction_marks_high_activations() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Forward, 2)
            .all_layers(ThresholdKind::Absolute { phi: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        // Forward masks cover output feature maps.
        let seg = path.segment_for_layer(1).unwrap();
        assert_eq!(seg.mask.len(), 3);
        assert!(seg.mask.get(0));
        assert!(!seg.mask.get(1));
        assert!(path.count_ones() >= 2);
    }

    #[test]
    fn selective_extraction_limits_segments() {
        let net = two_layer_net();
        // Backward with only the last weight layer enabled (early termination).
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .disable_before(1)
            .build()
            .unwrap();
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        assert_eq!(path.segments().len(), 1);
        assert_eq!(path.segments()[0].layer, 3);
        assert!(path.count_ones() >= 1);
    }

    #[test]
    fn mismatched_program_is_rejected() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Backward, 5)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::zeros(&[4]);
        let trace = net.forward_trace(&x).unwrap();
        assert!(extract_path(&net, &trace, &program).is_err());
        assert!(path_layout(&net, &program).is_err());
    }

    #[test]
    fn extraction_works_on_a_convolutional_model() {
        let mut rng = Rng64::new(1);
        let net = ptolemy_nn::zoo::lenet(1, 4, &mut rng).unwrap();
        let program = DetectionProgram::builder(Direction::Backward, 4)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.5);
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        assert_eq!(path.segments().len(), 4);
        assert!(path.count_ones() > 0);
        // The paper observes important-neuron density stays low; with θ=0.5 we
        // should certainly not mark the whole network.
        assert!(path.density() < 0.6, "density {}", path.density());
    }
}
