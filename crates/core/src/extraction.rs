//! Important-neuron extraction (paper Sec. III-A/III-C, Fig. 3).
//!
//! Backward extraction starts from the predicted-class neuron of the last layer and
//! walks towards the input: at every weight layer it ranks (cumulative threshold) or
//! filters (absolute threshold) the partial sums feeding each currently-important
//! output neuron and keeps the contributing input neurons.  Pass-through layers
//! (ReLU, pooling, flatten) simply re-map indices.
//!
//! Forward extraction selects each layer's important neurons from the layer's own
//! output activations as soon as the layer finishes, which is what allows the
//! compiler to overlap extraction with the next layer's inference.
//!
//! # Streaming pipeline
//!
//! Both algorithms are implemented over *activation boundary sources*, so they
//! run equally on a materialized [`ForwardTrace`] ([`extract_path`]) and on the
//! streaming drivers ([`extract_path_streaming`] /
//! [`extract_paths_streaming_batch`]), which plug a [`ptolemy_nn::TraceSink`]
//! into the forward pass itself:
//!
//! * **forward programs** mask each enabled layer's output the moment the
//!   layer finishes — on multi-core hosts the selection runs on a scoped
//!   worker thread *overlapped with the next layer's forward compute* — and
//!   release the activation immediately, so peak resident trace state is
//!   O(largest layer) instead of O(network);
//! * **backward programs** retain only the boundaries the reverse walk will
//!   actually read: enabled weight layers' inputs and outputs, plus the inputs
//!   of pass-through layers whose routing is data-dependent
//!   ([`ptolemy_nn::Layer::has_static_routing`] is `false`, e.g. max pooling).
//!   Early-termination programs drop everything below the first disabled
//!   weight layer as it streams past.
//!
//! Streamed and materialized extraction are **bit-for-bit identical**: the
//! forward compute is the same driver either way, and both feed the same
//! selection kernels with the same tensors (pinned by `tests/streaming.rs`).

use std::collections::BTreeSet;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use ptolemy_nn::{predicted_class, Contribution, ForwardTrace, Network, TraceSink};
use ptolemy_tensor::Tensor;

use crate::parallel::par_map;
use crate::{ActivationPath, CoreError, DetectionProgram, Direction, Result, ThresholdKind};

/// Minimum **enabled** output elements (per-sample, × batch size) before the
/// streaming forward-program extractor spawns an overlap worker thread: below
/// this, a thread spawn costs more than the selection it would hide, so
/// extraction runs inline in the sink (bit-identical either way — the gate
/// changes scheduling, never arithmetic).
const OVERLAP_MIN_ELEMENTS: usize = 2048;

/// In-flight bound of the overlap channel: one boundary queued + one being
/// masked keeps peak resident state at O(largest layer) while still hiding the
/// selection latency behind the next layer's forward compute.
const OVERLAP_QUEUE: usize = 1;

/// Computes the `(network layer index, mask length)` layout of paths extracted with
/// `program` on `network`.
///
/// Backward extraction records masks over each enabled weight layer's *input*
/// feature map; forward extraction records masks over its *output* feature map.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the program does not describe the same
/// number of weight layers as the network has.
pub fn path_layout(network: &Network, program: &DetectionProgram) -> Result<Vec<(usize, usize)>> {
    let weight_layers = network.weight_layer_indices();
    if weight_layers.len() != program.num_weight_layers() {
        return Err(CoreError::InvalidProgram(format!(
            "program describes {} weight layers but the network has {}",
            program.num_weight_layers(),
            weight_layers.len()
        )));
    }
    let mut layout = Vec::new();
    for ordinal in program.enabled_layers() {
        let layer_idx = weight_layers[ordinal];
        let layer = network.layer(layer_idx)?;
        let len = match program.direction() {
            Direction::Backward => layer.input_len(),
            Direction::Forward => layer.output_len(),
        };
        layout.push((layer_idx, len));
    }
    Ok(layout)
}

/// Activation bytes a fully materialized trace of `network` holds resident for
/// a batch of `batch_size` samples — every boundary (the input plus each
/// layer's output) at once, the baseline the streaming pipeline's
/// [`ActivationFootprint::peak_streamed_bytes`] is measured against.
pub fn materialized_trace_bytes(network: &Network, batch_size: usize) -> usize {
    let input: usize = network.input_shape().iter().product();
    let outputs: usize = network.layers().map(|l| l.output_len()).sum();
    (input + outputs) * std::mem::size_of::<f32>() * batch_size
}

/// Peak activation bytes the streaming extraction pipeline kept resident,
/// against the bytes a materialized trace would have held.
///
/// "Resident" counts the **trace state** that outlives a layer — retained
/// boundaries and boundaries queued for the overlap worker.  It deliberately
/// excludes state both strategies hold identically, so the two numbers stay
/// comparable: the driver's transient current-layer input/output, and the
/// per-sample extraction scratch of backward batches (the streamed walk
/// slices each retained stacked boundary per sample exactly as the
/// materialized `BatchTrace::trace(b)` does — in fact it slices a subset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivationFootprint {
    /// Peak resident activation bytes of the streamed extraction.
    pub peak_streamed_bytes: usize,
    /// Bytes the materialized trace of the same pass holds (all boundaries).
    pub materialized_bytes: usize,
}

/// Result of one streamed trace + extraction ([`extract_path_streaming`]).
#[derive(Debug, Clone)]
pub struct StreamedExtraction {
    /// The class the network predicted for the input.
    pub predicted_class: usize,
    /// The extracted activation path (bit-for-bit what [`extract_path`] on a
    /// materialized trace of the same input produces).
    pub path: ActivationPath,
    /// The final logits of the forward pass.
    pub logits: Tensor,
    /// Peak-memory accounting of the streamed pass.
    pub footprint: ActivationFootprint,
}

/// Result of one streamed fused-batch trace + extraction
/// ([`extract_paths_streaming_batch`]).
#[derive(Debug, Clone)]
pub struct StreamedBatchExtraction {
    /// Per-sample `(predicted class, activation path)`, in input order; each
    /// entry is bit-for-bit what the per-input path produces.
    pub samples: Vec<(usize, ActivationPath)>,
    /// Peak-memory accounting of the streamed pass (stacked boundaries).
    pub footprint: ActivationFootprint,
}

/// Extracts the activation path of one traced inference under `program` from a
/// fully materialized trace.
///
/// The streaming pipeline ([`extract_path_streaming`]) produces bit-for-bit
/// identical paths without materialising the trace; this entry point remains
/// for callers that already hold a [`ForwardTrace`] (or a
/// [`ptolemy_nn::BatchTrace`] slice) for other reasons.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the program does not match the network,
/// or propagates substrate errors for inconsistent traces.
pub fn extract_path(
    network: &Network,
    trace: &ForwardTrace,
    program: &DetectionProgram,
) -> Result<ActivationPath> {
    if trace.num_layers() != network.num_layers() {
        return Err(CoreError::InvalidInput(format!(
            "trace covers {} layers but the network has {}",
            trace.num_layers(),
            network.num_layers()
        )));
    }
    let layout = path_layout(network, program)?;
    let mut path = ActivationPath::empty(&layout);
    match program.direction() {
        Direction::Backward => {
            let predicted = trace.predicted_class()?;
            extract_backward(network, trace, predicted, program, &mut path)?;
        }
        Direction::Forward => extract_forward(network, trace, program, &mut path)?,
    }
    Ok(path)
}

/// Runs one forward pass and extracts the activation path **while inferring**:
/// the streaming counterpart of `forward_trace` + [`extract_path`].
///
/// Forward programs mask each enabled layer's output as soon as the layer
/// finishes (on a scoped worker thread overlapped with the next layer's
/// compute, when worthwhile) and release the activation eagerly; backward
/// programs retain only the boundaries the reverse walk reads.  The returned
/// path, predicted class and logits are bit-for-bit identical to the
/// materialized pipeline's.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the program does not match the
/// network, and propagates substrate errors (including
/// [`ptolemy_nn::NnError::InvalidLogits`] for logits no class can be predicted
/// from).
pub fn extract_path_streaming(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
) -> Result<StreamedExtraction> {
    stream_single(network, program, input, true)
}

/// Like [`extract_path_streaming`], but never spawns an overlap worker — for
/// callers already inside a scoped-thread fan-out (the profiler and the
/// engine's per-input fallback `par_map` over samples), where an extra worker
/// per sample has no idle core to hide work on and only adds spawn and
/// channel overhead.  Bit-for-bit identical results either way.
pub(crate) fn extract_path_streaming_nested(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
) -> Result<StreamedExtraction> {
    stream_single(network, program, input, false)
}

fn stream_single(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
    allow_overlap: bool,
) -> Result<StreamedExtraction> {
    let layout = path_layout(network, program)?;
    match program.direction() {
        Direction::Forward => {
            stream_forward_single(network, program, input, &layout, allow_overlap)
        }
        Direction::Backward => stream_backward_single(network, program, input, &layout),
    }
}

/// Fused-batch counterpart of [`extract_path_streaming`]: one stacked NCHW
/// forward pass drives the extraction of every sample's path.
///
/// Forward programs overlap the per-sample masking of layer `i`'s stacked
/// output with layer `i + 1`'s fused compute and drop each stacked boundary
/// eagerly; backward programs retain only the planned stacked boundaries and
/// fan the per-sample reverse walks out over scoped threads.  Sample `b` of
/// the result is bit-for-bit `extract_path_streaming(network, program,
/// &inputs[b])`.
///
/// # Errors
///
/// Returns an error if the program does not match the network, if `inputs` is
/// empty or mis-shaped (the whole fused pass fails — callers wanting
/// per-input error granularity fall back to the single-input path), or if any
/// sample's logits admit no prediction.
pub fn extract_paths_streaming_batch(
    network: &Network,
    program: &DetectionProgram,
    inputs: &[Tensor],
) -> Result<StreamedBatchExtraction> {
    let (samples, footprint) = stream_batch_with(network, program, inputs, &|predicted, path| {
        Ok((predicted, path))
    })?;
    Ok(StreamedBatchExtraction { samples, footprint })
}

/// Crate-internal driver behind [`extract_paths_streaming_batch`] and the
/// engine's fused batch path: `finish(predicted_class, path)` completes each
/// sample, and for backward programs it runs **inside the per-sample parallel
/// region**, so engine-level completion work (path-similarity scoring) rides
/// the same scoped-thread fan-out instead of serialising after it.
pub(crate) fn stream_batch_with<T, F>(
    network: &Network,
    program: &DetectionProgram,
    inputs: &[Tensor],
    finish: &F,
) -> Result<(Vec<T>, ActivationFootprint)>
where
    T: Send,
    F: Fn(usize, ActivationPath) -> Result<T> + Sync,
{
    let layout = path_layout(network, program)?;
    match program.direction() {
        Direction::Forward => stream_forward_batch(network, program, inputs, &layout, finish),
        Direction::Backward => stream_backward_batch(network, program, inputs, &layout, finish),
    }
}

/// Selects contributor indices from weighted partial sums according to a threshold.
///
/// * Cumulative: minimal prefix of the descending-sorted partial sums whose
///   cumulative sum reaches `theta × target` (paper Fig. 3).  If the target is not
///   positive, only the single largest contributor is kept.
/// * Absolute: every partial sum `≥ phi × |target|`.
pub(crate) fn select_contributors(
    pairs: &[(usize, f32)],
    target: f32,
    threshold: ThresholdKind,
) -> Vec<usize> {
    if pairs.is_empty() {
        return Vec::new();
    }
    match threshold {
        ThresholdKind::Cumulative { theta } => {
            let mut sorted: Vec<(usize, f32)> = pairs.to_vec();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            if target <= 0.0 {
                return vec![sorted[0].0];
            }
            let goal = theta * target;
            let mut cum = 0.0;
            let mut selected = Vec::new();
            for (idx, partial) in sorted {
                selected.push(idx);
                cum += partial;
                if cum >= goal {
                    break;
                }
            }
            selected
        }
        ThresholdKind::Absolute { phi } => {
            let cutoff = phi * target.abs();
            pairs
                .iter()
                .filter(|(_, p)| *p >= cutoff && *p > 0.0)
                .map(|(i, _)| *i)
                .collect()
        }
    }
}

/// Selects important neurons of a layer output directly from activation values
/// (forward extraction, where no downstream importance information exists yet).
pub(crate) fn select_from_activations(values: &[f32], threshold: ThresholdKind) -> Vec<usize> {
    if values.is_empty() {
        return Vec::new();
    }
    match threshold {
        ThresholdKind::Cumulative { theta } => {
            let mut order: Vec<usize> = (0..values.len()).collect();
            order.sort_by(|&a, &b| {
                values[b]
                    .partial_cmp(&values[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let total: f32 = values.iter().filter(|v| **v > 0.0).sum();
            if total <= 0.0 {
                return vec![order[0]];
            }
            let goal = theta * total;
            let mut cum = 0.0;
            let mut selected = Vec::new();
            for idx in order {
                if values[idx] <= 0.0 {
                    break;
                }
                selected.push(idx);
                cum += values[idx];
                if cum >= goal {
                    break;
                }
            }
            selected
        }
        ThresholdKind::Absolute { phi } => {
            let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if max <= 0.0 {
                return Vec::new();
            }
            let cutoff = phi * max;
            values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v >= cutoff && **v > 0.0)
                .map(|(i, _)| i)
                .collect()
        }
    }
}

/// Access to the activation boundaries of one forward pass: boundary `i` is
/// the activation entering layer `i`; boundary `num_layers` is the logits.
///
/// Implemented by the materialized [`ForwardTrace`] and by the partial stores
/// the streaming sinks retain, so the extraction walks below run bit-for-bit
/// identically on either.
trait BoundarySource {
    fn boundary(&self, index: usize) -> Result<&Tensor>;
}

impl BoundarySource for ForwardTrace {
    fn boundary(&self, index: usize) -> Result<&Tensor> {
        self.activations().get(index).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "trace has no activation boundary {index} (network has {} layers)",
                self.num_layers()
            ))
        })
    }
}

/// The subset of boundaries a streaming backward pass retained.
struct PartialBoundaries<'a> {
    boundaries: &'a [Option<Tensor>],
}

impl BoundarySource for PartialBoundaries<'_> {
    fn boundary(&self, index: usize) -> Result<&Tensor> {
        self.boundaries
            .get(index)
            .and_then(Option::as_ref)
            .ok_or_else(|| {
                CoreError::InvalidInput(format!(
                    "activation boundary {index} was not retained by the streaming plan"
                ))
            })
    }
}

fn extract_backward<S: BoundarySource + ?Sized>(
    network: &Network,
    source: &S,
    predicted_class: usize,
    program: &DetectionProgram,
    path: &mut ActivationPath,
) -> Result<()> {
    let weight_layers = network.weight_layer_indices();
    // Important neurons at the *output* of the layer currently being examined.
    // The walk starts at the last layer with the predicted class (paper: "the last
    // layer has only one important neuron").
    let mut important: BTreeSet<usize> = BTreeSet::new();
    important.insert(predicted_class);

    for layer_idx in (0..network.num_layers()).rev() {
        if important.is_empty() {
            break;
        }
        let layer = network.layer(layer_idx)?;
        let is_weight = layer.kind().is_weight_layer();

        if is_weight {
            let ordinal = weight_layers
                .iter()
                .position(|&l| l == layer_idx)
                // lint:allow(panic-in-worker): layer_idx was taken from this list
                .expect("weight layer index");
            let spec = program.specs()[ordinal];
            if !spec.enabled {
                // Early termination: the backward walk stops at the first disabled
                // weight layer (Sec. VII-F).
                break;
            }
            let input = source.boundary(layer_idx)?;
            let output = source.boundary(layer_idx + 1)?;
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for &neuron in &important {
                let target = output.as_slice()[neuron];
                match layer.contributions(input, neuron)? {
                    Contribution::Weighted(pairs) => {
                        for idx in select_contributors(&pairs, target, spec.threshold) {
                            next.insert(idx);
                        }
                    }
                    Contribution::PassThrough(indices) => {
                        next.extend(indices);
                    }
                }
            }
            // Record the mask over this layer's input feature map.
            if let Some(segment) = path
                .segments_mut()
                .iter_mut()
                .find(|s| s.layer == layer_idx)
            {
                for &idx in &next {
                    segment.mask.set(idx);
                }
            }
            important = next;
        } else {
            // Pass-through layer: re-map the important output indices to input
            // indices (identity for ReLU/flatten, argmax routing for max pooling,
            // window members for average pooling).  Statically-routed layers
            // never touch their input activations, which is what lets the
            // streaming pipeline drop those boundaries eagerly.
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for &neuron in &important {
                if let Some(route) = layer.static_routing(neuron)? {
                    next.extend(route);
                } else {
                    let input = source.boundary(layer_idx)?;
                    let contribution = layer.contributions(input, neuron)?;
                    next.extend(contribution.indices());
                }
            }
            important = next;
        }
    }
    Ok(())
}

fn extract_forward<S: BoundarySource + ?Sized>(
    network: &Network,
    source: &S,
    program: &DetectionProgram,
    path: &mut ActivationPath,
) -> Result<()> {
    let weight_layers = network.weight_layer_indices();
    for ordinal in program.enabled_layers() {
        let layer_idx = weight_layers[ordinal];
        let spec = program.specs()[ordinal];
        let output = source.boundary(layer_idx + 1)?;
        mask_forward_selection(path, layer_idx, output.as_slice(), spec.threshold);
    }
    Ok(())
}

/// The single forward-program masking step shared by the materialized walk,
/// the inline streaming sink and the overlap worker — one implementation, so
/// every pipeline is bit-for-bit the same selection.
fn mask_forward_selection(
    path: &mut ActivationPath,
    layer_idx: usize,
    output: &[f32],
    threshold: ThresholdKind,
) {
    let selected = select_from_activations(output, threshold);
    if let Some(segment) = path
        .segments_mut()
        .iter_mut()
        .find(|s| s.layer == layer_idx)
    {
        for idx in selected {
            segment.mask.set(idx);
        }
    }
}

/// Peak/current resident-byte accounting shared between a streaming sink (adds
/// on retain/queue) and its overlap worker (subtracts after masking).
#[derive(Default)]
struct Meter {
    resident: AtomicUsize,
    peak: AtomicUsize,
}

impl Meter {
    fn add(&self, bytes: usize) {
        let now = self.resident.fetch_add(bytes, Ordering::SeqCst) + bytes;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    fn sub(&self, bytes: usize) {
        self.resident.fetch_sub(bytes, Ordering::SeqCst);
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.len() * std::mem::size_of::<f32>()
}

/// Per-network-layer threshold of enabled weight layers (`None` for disabled
/// or pass-through layers), the lookup table the forward streaming sinks key on.
fn enabled_specs_by_layer(
    network: &Network,
    program: &DetectionProgram,
) -> Vec<Option<ThresholdKind>> {
    let weight_layers = network.weight_layer_indices();
    let mut specs = vec![None; network.num_layers()];
    for ordinal in program.enabled_layers() {
        specs[weight_layers[ordinal]] = Some(program.specs()[ordinal].threshold);
    }
    specs
}

/// Boundaries a streaming backward pass must retain: enabled weight layers'
/// inputs and outputs, data-dependently-routed pass-through layers' inputs,
/// and nothing below the walk's early-termination point.
fn backward_retention(network: &Network, program: &DetectionProgram) -> Result<Vec<bool>> {
    let weight_layers = network.weight_layer_indices();
    let mut retain = vec![false; network.num_layers() + 1];
    for layer_idx in (0..network.num_layers()).rev() {
        let layer = network.layer(layer_idx)?;
        if layer.kind().is_weight_layer() {
            let ordinal = weight_layers
                .iter()
                .position(|&l| l == layer_idx)
                // lint:allow(panic-in-worker): layer_idx was taken from this list
                .expect("weight layer index");
            if !program.specs()[ordinal].enabled {
                // The reverse walk breaks here; nothing below is ever read.
                break;
            }
            retain[layer_idx] = true;
            retain[layer_idx + 1] = true;
        } else if !layer.has_static_routing() {
            retain[layer_idx] = true;
        }
    }
    Ok(retain)
}

/// `true` when the forward-program extractor should pay a worker thread to
/// overlap selection with the next layer's compute: overlap must be allowed
/// (callers already inside a scoped-thread fan-out pass `false` — an extra
/// worker per sample has no idle core to hide work on), the host must be
/// multi-core, and the **enabled** output volume must make the masking work
/// worth a thread spawn (gating on the whole network would spawn workers for
/// late-start programs that only ever mask one small layer).
fn overlap_worthwhile(
    network: &Network,
    specs: &[Option<ThresholdKind>],
    batch_size: usize,
    allow_overlap: bool,
) -> bool {
    if !allow_overlap || ptolemy_nn::available_parallelism() <= 1 {
        return false;
    }
    let enabled_elements: usize = network
        .layers()
        .zip(specs)
        .filter(|(_, spec)| spec.is_some())
        .map(|(layer, _)| layer.output_len())
        .sum();
    enabled_elements.saturating_mul(batch_size) >= OVERLAP_MIN_ELEMENTS
}

/// Streaming sink for forward programs without an overlap worker: enabled
/// outputs are masked inline, nothing is ever retained or cloned.
struct InlineForwardSink<'a> {
    specs: &'a [Option<ThresholdKind>],
    path: ActivationPath,
}

impl TraceSink for InlineForwardSink<'_> {
    fn on_layer(&mut self, index: usize, output: &Tensor) {
        if let Some(threshold) = self.specs[index] {
            mask_forward_selection(&mut self.path, index, output.as_slice(), threshold);
        }
    }
}

/// Streaming sink for forward programs with an overlap worker: enabled outputs
/// are cloned into a bounded channel and masked on the worker while the next
/// layer computes.
struct OverlapForwardSink<'a> {
    specs: &'a [Option<ThresholdKind>],
    tx: mpsc::SyncSender<(usize, Tensor)>,
    meter: &'a Meter,
}

impl TraceSink for OverlapForwardSink<'_> {
    fn on_layer(&mut self, index: usize, output: &Tensor) {
        if self.specs[index].is_none() {
            return;
        }
        self.meter.add(tensor_bytes(output));
        // A send error means the worker died; its panic resurfaces at join,
        // so the boundary is simply dropped here.
        if self.tx.send((index, output.clone())).is_err() {
            self.meter.sub(tensor_bytes(output));
        }
    }
}

/// Streaming sink for backward programs: retains exactly the planned
/// boundaries, drops everything else the moment the driver moves on.
struct RetainSink<'a> {
    retain: &'a [bool],
    boundaries: Vec<Option<Tensor>>,
    meter: &'a Meter,
}

impl<'a> RetainSink<'a> {
    fn new(retain: &'a [bool], meter: &'a Meter) -> Self {
        RetainSink {
            retain,
            boundaries: vec![None; retain.len()],
            meter,
        }
    }

    fn keep(&mut self, boundary: usize, activation: &Tensor) {
        if self.retain[boundary] {
            self.meter.add(tensor_bytes(activation));
            self.boundaries[boundary] = Some(activation.clone());
        }
    }
}

impl TraceSink for RetainSink<'_> {
    fn on_input(&mut self, input: &Tensor) {
        self.keep(0, input);
    }

    fn on_layer(&mut self, index: usize, output: &Tensor) {
        self.keep(index + 1, output);
    }
}

/// The overlap scaffolding shared by the single-input and fused-batch forward
/// extractors: spawns one scoped worker that folds every enabled boundary
/// into `state` via `mask` while `drive` runs the forward pass on the calling
/// thread, then joins and pairs the final state with the driver's logits.
/// Channel close, worker panics (resurfaced via [`resume_unwind`]) and driver
/// errors resolve identically for every caller.
fn drive_with_overlap<S, M, D>(
    specs: &[Option<ThresholdKind>],
    meter: &Meter,
    initial: S,
    mask: M,
    drive: D,
) -> Result<(S, Tensor)>
where
    S: Send,
    M: Fn(&mut S, usize, &Tensor, ThresholdKind) -> Result<()> + Send,
    D: FnOnce(&mut OverlapForwardSink<'_>) -> Result<Tensor>,
{
    thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<(usize, Tensor)>(OVERLAP_QUEUE);
        let worker = scope.spawn(move || -> Result<S> {
            let mut state = initial;
            while let Ok((layer_idx, boundary)) = rx.recv() {
                if let Some(threshold) = specs[layer_idx] {
                    mask(&mut state, layer_idx, &boundary, threshold)?;
                }
                // The boundary dies here — eager release.
                meter.sub(tensor_bytes(&boundary));
            }
            Ok(state)
        });
        let mut sink = OverlapForwardSink { specs, tx, meter };
        let driven = drive(&mut sink);
        drop(sink); // close the channel so the worker drains and exits
        let state = worker.join().unwrap_or_else(|panic| resume_unwind(panic))?;
        Ok((state, driven?))
    })
}

fn stream_forward_single(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
    layout: &[(usize, usize)],
    allow_overlap: bool,
) -> Result<StreamedExtraction> {
    let specs = enabled_specs_by_layer(network, program);
    let meter = Meter::default();
    let (path, logits) = if overlap_worthwhile(network, &specs, 1, allow_overlap) {
        drive_with_overlap(
            &specs,
            &meter,
            ActivationPath::empty(layout),
            |path, layer_idx, output, threshold| {
                mask_forward_selection(path, layer_idx, output.as_slice(), threshold);
                Ok(())
            },
            |sink| Ok(network.forward_with_sink(input, sink)?),
        )?
    } else {
        let mut sink = InlineForwardSink {
            specs: &specs,
            path: ActivationPath::empty(layout),
        };
        let logits = network.forward_with_sink(input, &mut sink)?;
        (sink.path, logits)
    };
    let predicted = predicted_class(&logits).map_err(CoreError::from)?;
    Ok(StreamedExtraction {
        predicted_class: predicted,
        path,
        logits,
        footprint: ActivationFootprint {
            peak_streamed_bytes: meter.peak(),
            materialized_bytes: materialized_trace_bytes(network, 1),
        },
    })
}

fn stream_backward_single(
    network: &Network,
    program: &DetectionProgram,
    input: &Tensor,
    layout: &[(usize, usize)],
) -> Result<StreamedExtraction> {
    let retain = backward_retention(network, program)?;
    let meter = Meter::default();
    let mut sink = RetainSink::new(&retain, &meter);
    let logits = network.forward_with_sink(input, &mut sink)?;
    let predicted = predicted_class(&logits).map_err(CoreError::from)?;
    let mut path = ActivationPath::empty(layout);
    let source = PartialBoundaries {
        boundaries: &sink.boundaries,
    };
    extract_backward(network, &source, predicted, program, &mut path)?;
    Ok(StreamedExtraction {
        predicted_class: predicted,
        path,
        logits,
        footprint: ActivationFootprint {
            peak_streamed_bytes: meter.peak(),
            materialized_bytes: materialized_trace_bytes(network, 1),
        },
    })
}

fn stream_forward_batch<T, F>(
    network: &Network,
    program: &DetectionProgram,
    inputs: &[Tensor],
    layout: &[(usize, usize)],
    finish: &F,
) -> Result<(Vec<T>, ActivationFootprint)>
where
    T: Send,
    F: Fn(usize, ActivationPath) -> Result<T> + Sync,
{
    let specs = enabled_specs_by_layer(network, program);
    let batch = inputs.len();
    let meter = Meter::default();
    let (paths, logits) = if overlap_worthwhile(network, &specs, batch, true) {
        drive_with_overlap(
            &specs,
            &meter,
            vec![ActivationPath::empty(layout); batch],
            |paths: &mut Vec<ActivationPath>, layer_idx, stacked, threshold| {
                for (b, path) in paths.iter_mut().enumerate() {
                    // The slice is bit-for-bit the per-sample output, so the
                    // selection matches the single-input pipeline exactly.
                    let output = stacked.slice_batch(b)?;
                    mask_forward_selection(path, layer_idx, output.as_slice(), threshold);
                }
                Ok(())
            },
            |sink| Ok(network.forward_with_sink_batch(inputs, sink)?),
        )?
    } else {
        struct InlineBatchSink<'a> {
            specs: &'a [Option<ThresholdKind>],
            paths: Vec<ActivationPath>,
            error: Option<CoreError>,
        }
        impl TraceSink for InlineBatchSink<'_> {
            fn on_layer(&mut self, index: usize, output: &Tensor) {
                let Some(threshold) = self.specs[index] else {
                    return;
                };
                if self.error.is_some() {
                    return;
                }
                for (b, path) in self.paths.iter_mut().enumerate() {
                    match output.slice_batch(b) {
                        Ok(sample) => {
                            mask_forward_selection(path, index, sample.as_slice(), threshold);
                        }
                        Err(e) => {
                            self.error = Some(e.into());
                            return;
                        }
                    }
                }
            }
        }
        let mut sink = InlineBatchSink {
            specs: &specs,
            paths: vec![ActivationPath::empty(layout); batch],
            error: None,
        };
        let logits = network.forward_with_sink_batch(inputs, &mut sink)?;
        if let Some(error) = sink.error {
            return Err(error);
        }
        (sink.paths, logits)
    };
    let samples = paths
        .into_iter()
        .enumerate()
        .map(|(b, path)| {
            let sample_logits = logits.slice_batch(b)?;
            let predicted = predicted_class(&sample_logits).map_err(CoreError::from)?;
            finish(predicted, path)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((
        samples,
        ActivationFootprint {
            peak_streamed_bytes: meter.peak(),
            materialized_bytes: materialized_trace_bytes(network, batch),
        },
    ))
}

fn stream_backward_batch<T, F>(
    network: &Network,
    program: &DetectionProgram,
    inputs: &[Tensor],
    layout: &[(usize, usize)],
    finish: &F,
) -> Result<(Vec<T>, ActivationFootprint)>
where
    T: Send,
    F: Fn(usize, ActivationPath) -> Result<T> + Sync,
{
    let retain = backward_retention(network, program)?;
    let meter = Meter::default();
    let mut sink = RetainSink::new(&retain, &meter);
    let logits = network.forward_with_sink_batch(inputs, &mut sink)?;
    let boundaries = sink.boundaries;
    let indices: Vec<usize> = (0..inputs.len()).collect();
    let samples = par_map(&indices, |&b| -> Result<T> {
        // Slice this sample's view of every retained stacked boundary — the
        // same slices a materialized `BatchTrace::trace(b)` would hand the
        // walk, so the extraction is bit-for-bit the per-input path.
        let sliced: Vec<Option<Tensor>> = boundaries
            .iter()
            .map(|stacked| {
                stacked
                    .as_ref()
                    .map(|t| t.slice_batch(b))
                    .transpose()
                    .map_err(CoreError::from)
            })
            .collect::<Result<_>>()?;
        // The logits boundary is usually already retained and sliced; only
        // fall back to slicing the driver's stacked logits when it is not.
        let fallback_logits;
        let sample_logits = match sliced.last().and_then(Option::as_ref) {
            Some(retained_logits) => retained_logits,
            None => {
                fallback_logits = logits.slice_batch(b)?;
                &fallback_logits
            }
        };
        let predicted = predicted_class(sample_logits).map_err(CoreError::from)?;
        let mut path = ActivationPath::empty(layout);
        let source = PartialBoundaries {
            boundaries: &sliced,
        };
        extract_backward(network, &source, predicted, program, &mut path)?;
        finish(predicted, path)
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    Ok((
        samples,
        ActivationFootprint {
            peak_streamed_bytes: meter.peak(),
            materialized_bytes: materialized_trace_bytes(network, inputs.len()),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::layer::{Dense, Flatten, ReLU};
    use ptolemy_nn::Layer;
    use ptolemy_tensor::{Rng64, Tensor};

    /// The worked fully-connected example of Fig. 3 (left panel): input feature map
    /// `[0.1, 1.0, 0.4, 0.3, 0.2]`, kernel `[2.1, 0.09, 0.2, 0.2, 0.1]`, θ = 0.6.
    /// The two largest partial sums (0.21 from neuron 0 and 0.09 from neuron 1)
    /// cumulatively exceed 0.6 × 0.46, so neurons {0, 1} are important.
    #[test]
    fn fig3_fully_connected_example() {
        let pairs = vec![
            (0usize, 0.1 * 2.1),
            (1, 1.0 * 0.09),
            (2, 0.4 * 0.2),
            (3, 0.3 * 0.2),
            (4, 0.2 * 0.1),
        ];
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Cumulative { theta: 0.6 });
        assert_eq!(selected, vec![0, 1]);
        // With θ = 0.9 more neurons are needed.
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Cumulative { theta: 0.9 });
        assert!(selected.len() > 2);
        // Absolute thresholding keeps only partial sums above φ × |target|.
        let selected = select_contributors(&pairs, 0.46, ThresholdKind::Absolute { phi: 0.4 });
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn cumulative_selection_is_minimal() {
        let pairs = vec![(0, 0.5), (1, 0.3), (2, 0.2)];
        // θ = 0.5 of target 1.0 is reached by the single largest partial sum.
        assert_eq!(
            select_contributors(&pairs, 1.0, ThresholdKind::Cumulative { theta: 0.5 }),
            vec![0]
        );
        // θ = 1.0 needs all of them.
        assert_eq!(
            select_contributors(&pairs, 1.0, ThresholdKind::Cumulative { theta: 1.0 }).len(),
            3
        );
        // Non-positive target degenerates to the single largest contributor.
        assert_eq!(
            select_contributors(&pairs, -0.2, ThresholdKind::Cumulative { theta: 0.5 }),
            vec![0]
        );
        assert!(select_contributors(&[], 1.0, ThresholdKind::Cumulative { theta: 0.5 }).is_empty());
    }

    #[test]
    fn forward_selection_from_activations() {
        let values = [0.1, 3.0, 0.0, 1.0, -0.5];
        let selected = select_from_activations(&values, ThresholdKind::Cumulative { theta: 0.7 });
        // 3.0 alone is 3.0/4.1 ≈ 0.73 ≥ 0.7 of the positive mass.
        assert_eq!(selected, vec![1]);
        let selected = select_from_activations(&values, ThresholdKind::Absolute { phi: 0.3 });
        assert_eq!(selected, vec![1, 3]);
        // All-negative activations select nothing under absolute thresholds.
        assert!(
            select_from_activations(&[-1.0, -2.0], ThresholdKind::Absolute { phi: 0.1 }).is_empty()
        );
        assert!(select_from_activations(&[], ThresholdKind::Absolute { phi: 0.1 }).is_empty());
    }

    fn two_layer_net() -> Network {
        // 4 -> 3 -> 2 network with hand-written weights so paths are predictable.
        let w1 = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, 0.0, // neuron 0 driven by input 0
                0.0, 1.0, 0.0, 0.0, // neuron 1 driven by input 1
                0.0, 0.0, 1.0, 1.0, // neuron 2 driven by inputs 2 and 3
            ],
            &[3, 4],
        )
        .unwrap();
        let w2 = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, // class 0 driven by hidden 0
                0.0, 1.0, 1.0, // class 1 driven by hidden 1 and 2
            ],
            &[2, 3],
        )
        .unwrap();
        Network::new(vec![
            Box::new(Flatten::new(&[4])) as Box<dyn Layer>,
            Box::new(Dense::from_parts(w1, Tensor::zeros(&[3])).unwrap()),
            Box::new(ReLU::new(&[3])),
            Box::new(Dense::from_parts(w2, Tensor::zeros(&[2])).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn backward_extraction_follows_the_active_route() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.9 })
            .build()
            .unwrap();
        // Input that activates class 0 through input 0 only.
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        assert_eq!(trace.predicted_class().unwrap(), 0);
        let path = extract_path(&net, &trace, &program).unwrap();
        // Layout: weight layers are network layers 1 and 3; masks over their inputs.
        assert_eq!(path.segments().len(), 2);
        let last = path.segment_for_layer(3).unwrap();
        assert!(last.mask.get(0), "hidden neuron 0 must be important");
        assert!(!last.mask.get(1));
        let first = path.segment_for_layer(1).unwrap();
        assert!(first.mask.get(0), "input 0 must be important");
        assert!(!first.mask.get(2));

        // A class-1 input leaves a different path.
        let y = Tensor::from_vec(vec![0.0, 0.0, 4.0, 4.0], &[4]).unwrap();
        let trace_y = net.forward_trace(&y).unwrap();
        assert_eq!(trace_y.predicted_class().unwrap(), 1);
        let path_y = extract_path(&net, &trace_y, &program).unwrap();
        assert!(path_y.segment_for_layer(1).unwrap().mask.get(2));
        assert!(path_y.segment_for_layer(1).unwrap().mask.get(3));
        assert!(!path_y.segment_for_layer(1).unwrap().mask.get(0));
        // Paths of different classes are distinct.
        assert!(path.jaccard(&path_y).unwrap() < 0.5);
    }

    #[test]
    fn forward_extraction_marks_high_activations() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Forward, 2)
            .all_layers(ThresholdKind::Absolute { phi: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        // Forward masks cover output feature maps.
        let seg = path.segment_for_layer(1).unwrap();
        assert_eq!(seg.mask.len(), 3);
        assert!(seg.mask.get(0));
        assert!(!seg.mask.get(1));
        assert!(path.count_ones() >= 2);
    }

    #[test]
    fn selective_extraction_limits_segments() {
        let net = two_layer_net();
        // Backward with only the last weight layer enabled (early termination).
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .disable_before(1)
            .build()
            .unwrap();
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.0, 0.0], &[4]).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        assert_eq!(path.segments().len(), 1);
        assert_eq!(path.segments()[0].layer, 3);
        assert!(path.count_ones() >= 1);

        // The streaming retention plan drops everything below the termination
        // point: boundaries 0..=2 (flatten input, dense-1 input, relu input)
        // are never retained, only the last dense layer's input and output.
        let retain = backward_retention(&net, &program).unwrap();
        assert_eq!(retain, vec![false, false, false, true, true]);
    }

    #[test]
    fn backward_retention_keeps_only_data_dependent_boundaries() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.9 })
            .build()
            .unwrap();
        // Flatten (layer 0) and ReLU (layer 2) route statically, so their
        // input boundaries are dropped; both dense layers retain input+output.
        let retain = backward_retention(&net, &program).unwrap();
        assert_eq!(retain, vec![false, true, true, true, true]);

        // Forward programs retain nothing at all (masking happens in flight).
        let fw = DetectionProgram::builder(Direction::Forward, 2)
            .all_layers(ThresholdKind::Absolute { phi: 0.5 })
            .build()
            .unwrap();
        let streamed = extract_path_streaming(&net, &fw, &Tensor::ones(&[4])).unwrap();
        assert_eq!(streamed.footprint.peak_streamed_bytes, 0);
        assert_eq!(
            streamed.footprint.materialized_bytes,
            materialized_trace_bytes(&net, 1)
        );
    }

    #[test]
    fn streamed_extraction_matches_materialized_bit_for_bit() {
        let mut rng = Rng64::new(7);
        let net = ptolemy_nn::zoo::lenet(1, 4, &mut rng).unwrap();
        let programs = [
            DetectionProgram::builder(Direction::Backward, 4)
                .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
                .build()
                .unwrap(),
            DetectionProgram::builder(Direction::Forward, 4)
                .all_layers(ThresholdKind::Absolute { phi: 0.2 })
                .build()
                .unwrap(),
        ];
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| {
                let data = (0..64)
                    .map(|_| rng.normal() * (0.4 + 0.2 * i as f32))
                    .collect();
                Tensor::from_vec(data, &[1, 8, 8]).unwrap()
            })
            .collect();
        for program in &programs {
            for input in &inputs {
                let trace = net.forward_trace(input).unwrap();
                let materialized = extract_path(&net, &trace, program).unwrap();
                let streamed = extract_path_streaming(&net, program, input).unwrap();
                assert_eq!(streamed.path, materialized, "single-input parity");
                assert_eq!(streamed.predicted_class, trace.predicted_class().unwrap());
                for (s, m) in streamed
                    .logits
                    .as_slice()
                    .iter()
                    .zip(trace.logits().as_slice())
                {
                    assert_eq!(s.to_bits(), m.to_bits());
                }
            }
            // Fused-batch streaming matches too.
            let batch = extract_paths_streaming_batch(&net, program, &inputs).unwrap();
            assert_eq!(batch.samples.len(), inputs.len());
            for (b, input) in inputs.iter().enumerate() {
                let single = extract_path_streaming(&net, program, input).unwrap();
                assert_eq!(batch.samples[b].0, single.predicted_class);
                assert_eq!(batch.samples[b].1, single.path, "batch sample {b} parity");
            }
        }
    }

    #[test]
    fn streamed_forward_peak_memory_beats_materialized_on_a_deep_program() {
        // A deep forward program on the conv model: the streaming pipeline
        // must hold strictly less activation state than the materialized
        // trace — the acceptance bar of the streaming refactor.
        let mut rng = Rng64::new(11);
        let net = ptolemy_nn::zoo::lenet(1, 4, &mut rng).unwrap();
        let program = DetectionProgram::builder(Direction::Forward, 4)
            .all_layers(ThresholdKind::Absolute { phi: 0.2 })
            .build()
            .unwrap();
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::from_vec((0..64).map(|_| rng.normal()).collect(), &[1, 8, 8]).unwrap())
            .collect();
        let batch = extract_paths_streaming_batch(&net, &program, &inputs).unwrap();
        assert!(
            batch.footprint.peak_streamed_bytes < batch.footprint.materialized_bytes,
            "streamed peak {} must be under the materialized {} bytes",
            batch.footprint.peak_streamed_bytes,
            batch.footprint.materialized_bytes
        );
        // The materialized figure matches what an actual batch trace holds.
        let trace = net.forward_trace_batch(&inputs).unwrap();
        assert_eq!(batch.footprint.materialized_bytes, trace.activation_bytes());

        // Backward programs retain strictly less than the full trace as well
        // (statically-routed ReLU/flatten inputs are dropped in flight).
        let bw = DetectionProgram::builder(Direction::Backward, 4)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let streamed = extract_paths_streaming_batch(&net, &bw, &inputs).unwrap();
        assert!(streamed.footprint.peak_streamed_bytes < streamed.footprint.materialized_bytes);
    }

    #[test]
    fn mismatched_program_is_rejected() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Backward, 5)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::zeros(&[4]);
        let trace = net.forward_trace(&x).unwrap();
        assert!(extract_path(&net, &trace, &program).is_err());
        assert!(path_layout(&net, &program).is_err());
        assert!(extract_path_streaming(&net, &program, &x).is_err());
        assert!(extract_paths_streaming_batch(&net, &program, &[x]).is_err());
    }

    #[test]
    fn streaming_batch_propagates_forward_errors() {
        let net = two_layer_net();
        let program = DetectionProgram::builder(Direction::Forward, 2)
            .all_layers(ThresholdKind::Absolute { phi: 0.5 })
            .build()
            .unwrap();
        // An empty batch and a mis-shaped input both fail the fused pass as a
        // whole; per-input granularity is the engine's fallback concern.
        assert!(extract_paths_streaming_batch(&net, &program, &[]).is_err());
        let bad = vec![Tensor::ones(&[4]), Tensor::ones(&[5])];
        assert!(extract_paths_streaming_batch(&net, &program, &bad).is_err());
    }

    #[test]
    fn extraction_works_on_a_convolutional_model() {
        let mut rng = Rng64::new(1);
        let net = ptolemy_nn::zoo::lenet(1, 4, &mut rng).unwrap();
        let program = DetectionProgram::builder(Direction::Backward, 4)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.5);
        let trace = net.forward_trace(&x).unwrap();
        let path = extract_path(&net, &trace, &program).unwrap();
        assert_eq!(path.segments().len(), 4);
        assert!(path.count_ones() > 0);
        // The paper observes important-neuron density stays low; with θ=0.5 we
        // should certainly not mark the whole network.
        assert!(path.density() < 0.6, "density {}", path.density());
    }
}
