use std::fmt;

use ptolemy_forest::ForestError;
use ptolemy_nn::NnError;
use ptolemy_tensor::TensorError;

/// Error type of the Ptolemy detection framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The detection program is invalid (mixed directions, bad thresholds, …).
    InvalidProgram(String),
    /// A path operation was attempted on structurally incompatible paths.
    IncompatiblePaths(String),
    /// Profiling or detection was attempted with inconsistent inputs.
    InvalidInput(String),
    /// A detection backend could not bind to, or serve, the engine's program.
    Backend(String),
    /// The underlying DNN substrate reported an error.
    Nn(NnError),
    /// The random-forest classifier reported an error.
    Forest(ForestError),
    /// A tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidProgram(msg) => write!(f, "invalid detection program: {msg}"),
            CoreError::IncompatiblePaths(msg) => write!(f, "incompatible paths: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::Backend(msg) => write!(f, "detection backend error: {msg}"),
            CoreError::Nn(e) => write!(f, "dnn substrate error: {e}"),
            CoreError::Forest(e) => write!(f, "classifier error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Forest(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ForestError> for CoreError {
    fn from(e: ForestError) -> Self {
        CoreError::Forest(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = NnError::EmptyDataset.into();
        assert!(e.to_string().contains("dnn substrate"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = ForestError::InvalidMetricInput("x".into()).into();
        assert!(e.to_string().contains("classifier"));
        let e: CoreError = TensorError::Empty("max").into();
        assert!(e.to_string().contains("tensor"));
        assert!(!CoreError::InvalidProgram("p".into()).to_string().is_empty());
        assert!(std::error::Error::source(&CoreError::InvalidInput("i".into())).is_none());
    }
}
