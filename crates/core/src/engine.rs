//! The batched, multi-backend serving API for Ptolemy detection.
//!
//! The paper's online phase is naturally a one-shot call that re-validates the
//! program/class-path pairing on every input.  That is fine for reproducing
//! figures and useless for serving: a deployment binds one network, one
//! [`DetectionProgram`] and one [`ClassPathSet`] at startup and then pushes
//! traffic through them for hours.  [`DetectionEngine`] is that session object:
//!
//! * **validate once** — the program/class-path fingerprint, the path layout and
//!   the backend binding are all checked in [`DetectionEngineBuilder::build`],
//!   never per call;
//! * **configurable decision threshold** — the score cut-off the original
//!   one-shot API hard-coded to `0.5` is a builder knob;
//! * **streamed fused batching** — [`DetectionEngine::detect_batch`] runs one
//!   fused NCHW forward pass over the whole batch (batched `im2col`/matmul
//!   across inputs) and extracts each input's [`ActivationPath`] **while the
//!   pass is still running** ([`crate::extract_paths_streaming_batch`]):
//!   forward programs mask each enabled layer's stacked output on a scoped
//!   worker overlapped with the next layer's compute and release the
//!   activation eagerly, backward programs retain only the boundaries the
//!   reverse walk reads — peak activation memory drops from O(network) to the
//!   retained set.  Every fused kernel preserves the per-input reduction
//!   order and the selection kernels are shared with the materialized
//!   pipeline, so batch verdicts stay **bit-for-bit identical** to the
//!   single-input path;
//! * **streaming** — [`DetectionEngine::score_stream`] /
//!   [`DetectionEngine::detect_stream`] lazily drive an input iterator
//!   without materialising the batch;
//! * **pluggable cost backends** — a [`DetectionBackend`] prices every batch.
//!   [`SoftwareBackend`] reports the algorithm-level op counts of a pure
//!   software implementation ([`crate::software_cost`]); the `AccelBackend` in
//!   `ptolemy-accel` routes the same program through the compiler and the
//!   cycle/energy model, making the co-designed hardware a first-class serving
//!   backend rather than a separate side analysis.
//!
//! # Example
//!
//! ```
//! use ptolemy_core::{variants, DetectionEngine, Profiler};
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
//! let samples: Vec<(Tensor, usize)> = (0..20)
//!     .map(|i| (Tensor::full(&[8], (i % 2) as f32), i % 2))
//!     .collect();
//! Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
//!
//! let program = variants::fw_ab(&net, 0.05)?;
//! let class_paths = Profiler::new(program.clone()).profile(&net, &samples)?;
//! let inputs: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
//!
//! // Build once (fingerprint validated here), then serve batches.
//! let engine = DetectionEngine::builder(net, program, class_paths)
//!     .threshold(0.6)
//!     .calibrate(&inputs[..8], &inputs[8..16])
//!     .build()?;
//! let verdicts = engine.detect_batch(&inputs)?;
//! assert_eq!(verdicts.len(), inputs.len());
//! assert_eq!(verdicts[0], engine.detect(&inputs[0])?);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use ptolemy_forest::{ForestConfig, RandomForest};
use ptolemy_nn::{ForwardTrace, Network, QuantizedNetwork};
use ptolemy_obs::{Counter, HistogramHandle, Registry};
use ptolemy_tensor::Tensor;

use crate::extraction::{
    extract_path, extract_path_streaming, extract_path_streaming_nested, path_layout,
    stream_batch_with,
};
use crate::parallel::par_map;
use crate::{
    software_cost, ActivationPath, ClassPathSet, CoreError, DetectionProgram, Result,
    SoftwareCostReport,
};

/// The decision threshold the original one-shot detection API hard-coded.
pub const DEFAULT_THRESHOLD: f32 = 0.5;

/// Fused-pass chunk size for calibration: bounds the peak memory of one
/// streamed batch (backward programs still retain their planned stacked
/// boundaries for the whole chunk) while keeping the fused kernels'
/// amortisation.
const CALIBRATION_FUSED_CHUNK: usize = 64;

/// Result of detecting one input at inference time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Final verdict of the random-forest classifier.
    pub is_adversary: bool,
    /// Adversarial probability reported by the classifier (higher = more suspicious).
    pub score: f32,
    /// Path similarity `S` between the input's activation path and the canary path
    /// of its predicted class.
    pub similarity: f32,
    /// The class the DNN predicted for the input.
    pub predicted_class: usize,
}

/// Computes the `(predicted class, path similarity)` pair for one input — the
/// stateless primitive behind both the engine and ROC-style sweeps that score
/// raw similarities without fitting a classifier.
///
/// Unlike the engine's internal path this validates the program/class-path
/// fingerprint on every call, because nothing else guarantees the pairing.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] if the class paths were not profiled
/// with `program`, and propagates extraction errors.
pub fn path_similarity(
    network: &Network,
    program: &DetectionProgram,
    class_paths: &ClassPathSet,
    input: &Tensor,
) -> Result<(usize, f32)> {
    if class_paths.program_fingerprint != program.fingerprint() {
        return Err(CoreError::InvalidProgram(format!(
            "class paths were profiled with '{}' but detection uses '{}'",
            class_paths.program_fingerprint,
            program.fingerprint()
        )));
    }
    let (predicted, similarity, _) = trace_similarity(network, program, class_paths, input)?;
    Ok((predicted, similarity))
}

/// One **streamed** inference + extraction + similarity, with no fingerprint
/// check.  Returns `(predicted class, similarity, activation path)`.
///
/// This is the single scoring primitive behind the per-input *and* the fused
/// batch paths: extraction runs through the streaming pipeline
/// ([`extract_path_streaming`] — masks computed while the forward pass is
/// still running, activations dropped eagerly instead of materialising a full
/// trace), which is bit-for-bit identical to the historical
/// trace-then-extract pipeline.
fn trace_path(
    network: &Network,
    program: &DetectionProgram,
    class_paths: &ClassPathSet,
    input: &Tensor,
) -> Result<(usize, f32, ActivationPath)> {
    let streamed = extract_path_streaming(network, program, input)?;
    let similarity = streamed
        .path
        .similarity(class_paths.class_path(streamed.predicted_class)?)?;
    Ok((streamed.predicted_class, similarity, streamed.path))
}

/// Like [`trace_path`], reducing the path to its density.
fn trace_similarity(
    network: &Network,
    program: &DetectionProgram,
    class_paths: &ClassPathSet,
    input: &Tensor,
) -> Result<(usize, f32, f32)> {
    trace_path(network, program, class_paths, input)
        .map(|(predicted, similarity, path)| (predicted, similarity, path.density()))
}

/// Fused-batch counterpart of [`trace_path`]: one batched NCHW forward pass
/// drives the **streaming** extraction of every sample's path
/// ([`crate::extract_paths_streaming_batch`] — forward programs mask each
/// stacked boundary on an overlap worker and drop it eagerly, backward
/// programs retain only the boundaries the reverse walk reads and fan the
/// per-sample walks out with [`par_map`]); path-similarity scoring completes
/// each sample inside the same fan-out.  Falls back to the per-input
/// streaming path when any input is mis-shaped (preserving that input's exact
/// error while still serving the rest) or the fused pass itself fails.
fn trace_path_batch(
    network: &Network,
    program: &DetectionProgram,
    class_paths: &ClassPathSet,
    inputs: &[Tensor],
) -> Vec<Result<(usize, f32, ActivationPath)>> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let finish = |predicted: usize, path: ActivationPath| -> Result<(usize, f32, ActivationPath)> {
        let similarity = path.similarity(class_paths.class_path(predicted)?)?;
        Ok((predicted, similarity, path))
    };
    let fused = if inputs
        .iter()
        .all(|input| input.dims() == network.input_shape())
    {
        stream_batch_with(network, program, inputs, &finish).ok()
    } else {
        None
    };
    let Some((samples, _footprint)) = fused else {
        return par_map(inputs, |input| {
            // Nested streaming: this par_map already saturates the cores, so
            // per-sample overlap workers would only add spawn overhead.
            let streamed = extract_path_streaming_nested(network, program, input)?;
            finish(streamed.predicted_class, streamed.path)
        });
    };
    samples.into_iter().map(Ok).collect()
}

/// Cost estimate a [`DetectionBackend`] attaches to one served batch.
///
/// Fields are optional because backends model different things: the software
/// backend reports algorithm-level operation counts, the accelerator backend
/// reports modelled latency/energy.  Whatever the substrate, an estimate
/// always prices the **whole batch as one program** — the fused execution
/// model [`DetectionEngine::detect_batch`] actually runs — never `batch_size`
/// independent single-input passes a consumer would have to multiply out.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackendEstimate {
    /// Name of the backend that produced the estimate.
    pub backend: &'static str,
    /// Number of inputs in the batch the estimate covers.
    pub batch_size: usize,
    /// Algorithm-level op/memory counts of the whole batched detection pass
    /// (software backend).
    pub software: Option<SoftwareCostReport>,
    /// Modelled wall-clock latency for the whole batch, in milliseconds.
    pub latency_ms: Option<f64>,
    /// Modelled energy for the whole batch, in picojoules.
    pub energy_pj: Option<f64>,
    /// Per-input latency relative to plain inference (`1.0` = fully hidden).
    pub latency_factor: Option<f64>,
    /// Per-input energy relative to plain inference.
    pub energy_factor: Option<f64>,
}

/// A serving backend: binds to the engine's network + program once at build
/// time and prices every batch the engine serves.
///
/// The *functional* result of detection is backend-independent by construction
/// (the engine computes it once, in `ptolemy-core`); what a backend models is
/// the execution substrate — how much a batch costs where.  `ptolemy-accel`
/// implements this trait for the co-designed hardware.
pub trait DetectionBackend: std::fmt::Debug + Send + Sync {
    /// Short backend name used in reports (e.g. `"software"`, `"accel"`).
    fn name(&self) -> &'static str;

    /// Binds the backend to the engine's network and program.  Called exactly
    /// once, from [`DetectionEngineBuilder::build`]; expensive specialisation
    /// (compilation, schedule construction) belongs here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Backend`] if the backend cannot serve the program.
    fn bind(&mut self, network: &Network, program: &DetectionProgram) -> Result<()>;

    /// Estimates the cost of serving a batch of `batch_size` inputs whose mean
    /// activation-path density was `mean_density`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Backend`] if the backend was never bound or the
    /// cost model rejects the program.
    fn estimate_batch(
        &self,
        network: &Network,
        program: &DetectionProgram,
        batch_size: usize,
        mean_density: f32,
    ) -> Result<BackendEstimate>;
}

/// The pure-software backend: detection runs as ordinary `ptolemy-core`
/// compute, and batches are priced with the paper's Sec. III-B software cost
/// model ([`crate::software_cost`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftwareBackend;

impl DetectionBackend for SoftwareBackend {
    fn name(&self) -> &'static str {
        "software"
    }

    fn bind(&mut self, network: &Network, program: &DetectionProgram) -> Result<()> {
        path_layout(network, program).map(|_| ())
    }

    fn estimate_batch(
        &self,
        network: &Network,
        program: &DetectionProgram,
        batch_size: usize,
        mean_density: f32,
    ) -> Result<BackendEstimate> {
        // Price the batch as the single fused program it executes as: every
        // op/memory count scales with the batch size (the fused im2col/matmul
        // widens the patch matrix B-fold; extraction runs per input).
        let report = software_cost(network, program, mean_density)?.scaled(batch_size as u64);
        Ok(BackendEstimate {
            backend: self.name(),
            batch_size,
            software: Some(report),
            ..BackendEstimate::default()
        })
    }
}

/// The engine's hook into a [`Registry`]: pre-resolved handles for the two
/// detection stages (streamed trace+extraction vs classifier scoring) so the
/// hot path never touches the registry's name maps.
#[derive(Debug)]
struct EngineObs {
    registry: Arc<Registry>,
    trace_ns: HistogramHandle,
    score_ns: HistogramHandle,
    detections: Counter,
}

impl EngineObs {
    fn attach(registry: Arc<Registry>) -> EngineObs {
        EngineObs {
            trace_ns: registry.histogram("core.trace_ns"),
            score_ns: registry.histogram("core.score_ns"),
            detections: registry.counter("core.detections"),
            registry,
        }
    }
}

/// A detection session: network + program + class paths + classifier + backend,
/// bound and validated once, then driven per input, per batch or per stream.
///
/// Built via [`DetectionEngine::builder`].  See the [module docs](self) for the
/// design rationale and an end-to-end example.
#[derive(Debug)]
pub struct DetectionEngine {
    network: Arc<Network>,
    program: DetectionProgram,
    class_paths: ClassPathSet,
    forest: Option<RandomForest>,
    threshold: f32,
    backend: Box<dyn DetectionBackend>,
    quantized: Option<QuantizedNetwork>,
    obs: Option<EngineObs>,
}

impl DetectionEngine {
    /// Starts building an engine from the offline artifacts.
    ///
    /// `network` is shared, not copied: pass an owned [`Network`] or an
    /// existing `Arc<Network>`.
    pub fn builder(
        network: impl Into<Arc<Network>>,
        program: DetectionProgram,
        class_paths: ClassPathSet,
    ) -> DetectionEngineBuilder {
        DetectionEngineBuilder {
            network: network.into(),
            program,
            class_paths,
            forest: None,
            forest_config: ForestConfig::default(),
            calibration: None,
            quantization: None,
            threshold: DEFAULT_THRESHOLD,
            backend: Box::new(SoftwareBackend),
            registry: None,
        }
    }

    /// `(predicted class, path similarity)` of one input, skipping the per-call
    /// fingerprint check the stateless [`path_similarity`] function needs — the
    /// pairing was validated when the engine was built.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn path_similarity(&self, input: &Tensor) -> Result<(usize, f32)> {
        let (predicted, similarity, _) =
            trace_similarity(&self.network, &self.program, &self.class_paths, input)?;
        Ok((predicted, similarity))
    }

    /// Detects whether one input is adversarial.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the engine was built without a
    /// classifier, and propagates extraction/classifier errors.
    pub fn detect(&self, input: &Tensor) -> Result<Detection> {
        Ok(self.detect_traced(input)?.0)
    }

    /// Like [`DetectionEngine::detect`], additionally returning the extracted
    /// activation path — the hook serving layers use to key result caches on
    /// [`ActivationPath::prefix_fingerprint`] without re-running extraction.
    ///
    /// The verdict comes from the same code path as [`DetectionEngine::detect`],
    /// so it is bit-for-bit identical to calling `detect` on the same input.
    ///
    /// # Errors
    ///
    /// See [`DetectionEngine::detect`].
    pub fn detect_with_path(&self, input: &Tensor) -> Result<(Detection, ActivationPath)> {
        self.detect_traced(input)
    }

    /// Detects a whole batch through **one streamed fused forward pass**: the
    /// inputs are stacked into a single NCHW batch, every layer executes its
    /// batched kernel (`im2col`/matmul across all inputs at once), and each
    /// input's activation path is extracted *as the pass runs* — stacked
    /// boundaries are masked and released eagerly instead of materialising
    /// the whole trace (see [`crate::extract_paths_streaming_batch`]).
    ///
    /// `detect_batch(xs)?[i]` is bit-for-bit identical to `detect(&xs[i])?`:
    /// every fused kernel preserves the per-input reduction order, and the
    /// sliced traces feed the same scoring code as the single-input path.
    ///
    /// # Errors
    ///
    /// Returns the first per-input error, if any.
    pub fn detect_batch(&self, inputs: &[Tensor]) -> Result<Vec<Detection>> {
        self.detect_batch_with_paths(inputs)
            .into_iter()
            .map(|r| r.map(|(d, _)| d))
            .collect()
    }

    /// Like [`DetectionEngine::detect_batch`], additionally returning each
    /// input's extracted [`ActivationPath`] and keeping per-input error
    /// granularity (one mis-shaped input fails alone instead of failing the
    /// batch) — the hook serving layers use to run whole formed batches
    /// through the fused trace while still keying result caches on
    /// [`ActivationPath::prefix_fingerprint`].
    pub fn detect_batch_with_paths(
        &self,
        inputs: &[Tensor],
    ) -> Vec<Result<(Detection, ActivationPath)>> {
        let obs = self.stage_obs();
        let start = obs.map(|o| o.registry.clock().now_ns());
        let traced = trace_path_batch(&self.network, &self.program, &self.class_paths, inputs);
        let mid = if let (Some(o), Some(start)) = (obs, start) {
            let now = o.registry.clock().now_ns();
            o.trace_ns.record(now.saturating_sub(start));
            Some(now)
        } else {
            None
        };
        let verdicts: Vec<Result<(Detection, ActivationPath)>> = traced
            .into_iter()
            .map(|r| {
                let (predicted, similarity, path) = r?;
                Ok((self.judge(predicted, similarity)?, path))
            })
            .collect();
        if let (Some(o), Some(mid)) = (obs, mid) {
            o.score_ns
                .record(o.registry.clock().now_ns().saturating_sub(mid));
            o.detections.add(verdicts.len() as u64);
        }
        verdicts
    }

    /// Like [`DetectionEngine::detect_batch`], additionally pricing the batch
    /// on the engine's backend (using the batch's mean activation-path density,
    /// which is what the hardware model's sort/accumulate cost scales with).
    /// The backend prices the **whole fused batch as one program**, mirroring
    /// how the batch actually executes.
    ///
    /// # Errors
    ///
    /// Returns the first per-input error or a backend error.
    pub fn detect_batch_with_estimate(
        &self,
        inputs: &[Tensor],
    ) -> Result<(Vec<Detection>, BackendEstimate)> {
        let detected: Vec<(Detection, f32)> = self
            .detect_batch_with_paths(inputs)
            .into_iter()
            .map(|r| r.map(|(d, path)| (d, path.density())))
            .collect::<Result<_>>()?;
        let mean_density = if detected.is_empty() {
            0.0
        } else {
            detected.iter().map(|(_, d)| d).sum::<f32>() / detected.len() as f32
        };
        let estimate = self.backend.estimate_batch(
            &self.network,
            &self.program,
            detected.len(),
            mean_density,
        )?;
        Ok((detected.into_iter().map(|(d, _)| d).collect(), estimate))
    }

    /// Adversarial probability of one input.
    ///
    /// # Errors
    ///
    /// See [`DetectionEngine::detect`].
    pub fn score(&self, input: &Tensor) -> Result<f32> {
        Ok(self.detect(input)?.score)
    }

    /// Lazily scores a stream of inputs, yielding each input's adversarial
    /// probability (the streaming counterpart of [`DetectionEngine::score`]):
    /// items are detected as the iterator is advanced, so unbounded workloads
    /// run in constant memory.
    pub fn score_stream<'a, I>(&'a self, inputs: I) -> impl Iterator<Item = Result<f32>> + 'a
    where
        I: IntoIterator<Item = Tensor>,
        I::IntoIter: 'a,
    {
        inputs.into_iter().map(move |input| self.score(&input))
    }

    /// Lazily detects a stream of inputs, yielding full verdicts (the
    /// streaming counterpart of [`DetectionEngine::detect`]).
    pub fn detect_stream<'a, I>(&'a self, inputs: I) -> impl Iterator<Item = Result<Detection>> + 'a
    where
        I: IntoIterator<Item = Tensor>,
        I::IntoIter: 'a,
    {
        inputs.into_iter().map(move |input| self.detect(&input))
    }

    /// Prices a hypothetical batch on the backend without running detection
    /// (used by capacity planning and the figure harnesses).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn estimate_batch(&self, batch_size: usize, mean_density: f32) -> Result<BackendEstimate> {
        self.backend
            .estimate_batch(&self.network, &self.program, batch_size, mean_density)
    }

    /// The single scoring step shared by `detect`, `detect_with_path` and the
    /// fused batch methods — the source of their bit-for-bit parity.
    fn judge(&self, predicted_class: usize, similarity: f32) -> Result<Detection> {
        let forest = self.forest.as_ref().ok_or_else(|| {
            CoreError::InvalidInput(
                "engine was built without a classifier; add .forest(..) or .calibrate(..)".into(),
            )
        })?;
        let score = forest.predict_proba(&[similarity])?;
        Ok(Detection {
            is_adversary: score >= self.threshold,
            score,
            similarity,
            predicted_class,
        })
    }

    fn detect_traced(&self, input: &Tensor) -> Result<(Detection, ActivationPath)> {
        let obs = self.stage_obs();
        let start = obs.map(|o| o.registry.clock().now_ns());
        let (predicted_class, similarity, path) =
            trace_path(&self.network, &self.program, &self.class_paths, input)?;
        let mid = obs.map(|o| {
            let now = o.registry.clock().now_ns();
            o.trace_ns.record(now.saturating_sub(start.unwrap_or(now)));
            now
        });
        let detection = self.judge(predicted_class, similarity)?;
        if let (Some(o), Some(mid)) = (obs, mid) {
            o.score_ns
                .record(o.registry.clock().now_ns().saturating_sub(mid));
            o.detections.incr();
        }
        Ok((detection, path))
    }

    /// The attached observability hook, only while its registry is enabled —
    /// the disabled path costs one relaxed atomic load.
    fn stage_obs(&self) -> Option<&EngineObs> {
        self.obs.as_ref().filter(|o| o.registry.enabled())
    }

    /// The network this engine serves.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The extraction program this engine runs.
    pub fn program(&self) -> &DetectionProgram {
        &self.program
    }

    /// The canary class paths this engine compares against.
    pub fn class_paths(&self) -> &ClassPathSet {
        &self.class_paths
    }

    /// The build-time program/class-path fingerprint of this engine (the one
    /// [`DetectionEngineBuilder::build`] validated; identical to
    /// `self.program().fingerprint()` and
    /// `self.class_paths().program_fingerprint`).
    ///
    /// Serving layers use it to tell engines apart — a result cache must not be
    /// shared between engines with different fingerprints, and a router can
    /// verify at construction that its tiers were built from compatible
    /// artifacts.
    pub fn fingerprint(&self) -> &str {
        // The builder verified this equals `self.program.fingerprint()`.
        &self.class_paths.program_fingerprint
    }

    /// The fitted classifier, if the engine has one.
    pub fn forest(&self) -> Option<&RandomForest> {
        self.forest.as_ref()
    }

    /// The decision threshold applied to classifier scores.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Name of the cost backend serving this engine.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The int8 quantized network, when the engine was built with
    /// [`DetectionEngineBuilder::quantized`].
    pub fn quantized_network(&self) -> Option<&QuantizedNetwork> {
        self.quantized.as_ref()
    }

    /// `(predicted class, path similarity)` of one input through the **int8
    /// quantized** forward pass.
    ///
    /// Unlike every other engine entry point this is *not* bit-parity pinned
    /// against [`DetectionEngine::path_similarity`]: int8 rounding perturbs
    /// activations, so the predicted class and extracted path may differ from
    /// f32 — by design.  The behavioural contract (activation-path agreement
    /// rate, detection-AUC delta) is measured by the `quantized_detect`
    /// benchmark.  The quantized pass itself is exactly deterministic (i32
    /// accumulation), so repeated calls always agree with each other.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the engine was built without
    /// [`DetectionEngineBuilder::quantized`]; propagates extraction errors.
    pub fn path_similarity_quantized(&self, input: &Tensor) -> Result<(usize, f32)> {
        let qnet = self.quantized.as_ref().ok_or_else(|| {
            CoreError::InvalidInput(
                "engine was built without a quantized network; add .quantized(..)".into(),
            )
        })?;
        // The quantized pass emits f32 activation boundaries (requantized on
        // output), so the standard materialized-trace extraction applies
        // unchanged; only the activations differ from f32 inference.
        let trace = qnet.forward_trace(input)?;
        let predicted = trace.predicted_class()?;
        let path = extract_path(&self.network, &trace, &self.program)?;
        let similarity = path.similarity(self.class_paths.class_path(predicted)?)?;
        Ok((predicted, similarity))
    }

    /// Detects whether one input is adversarial using the int8 quantized
    /// inference path; scoring (forest + threshold) is shared with
    /// [`DetectionEngine::detect`], only the forward pass and extraction run
    /// over quantized activations.  See
    /// [`DetectionEngine::path_similarity_quantized`] for the accuracy
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the engine was built without a
    /// quantized network or without a classifier; propagates extraction and
    /// classifier errors.
    pub fn detect_quantized(&self, input: &Tensor) -> Result<Detection> {
        let (predicted, similarity) = self.path_similarity_quantized(input)?;
        self.judge(predicted, similarity)
    }

    /// Scores one already-materialised quantized trace: predicted class, path
    /// extraction against this engine's program, similarity against the
    /// predicted class's canary path.  The single scoring step shared by every
    /// quantized entry point — the source of their mutual bit parity.
    fn finish_quantized_trace(&self, trace: &ForwardTrace) -> Result<(usize, f32, ActivationPath)> {
        let predicted = trace.predicted_class()?;
        let path = extract_path(&self.network, trace, &self.program)?;
        let similarity = path.similarity(self.class_paths.class_path(predicted)?)?;
        Ok((predicted, similarity, path))
    }

    /// Quantized counterpart of [`trace_path_batch`]: one fused int8 batched
    /// forward pass materialises the stacked trace, then per-sample slices are
    /// extracted and scored in a [`par_map`] fan-out.  Falls back to per-input
    /// quantized passes when any input is mis-shaped, preserving that input's
    /// exact error while still serving the rest.
    fn trace_path_quantized_batch(
        &self,
        qnet: &QuantizedNetwork,
        inputs: &[Tensor],
    ) -> Vec<Result<(usize, f32, ActivationPath)>> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let fused = if inputs
            .iter()
            .all(|input| input.dims() == self.network.input_shape())
        {
            qnet.forward_trace_batch(inputs).ok()
        } else {
            None
        };
        let Some(batch) = fused else {
            return par_map(inputs, |input| {
                let trace = qnet.forward_trace(input)?;
                self.finish_quantized_trace(&trace)
            });
        };
        let indices: Vec<usize> = (0..inputs.len()).collect();
        par_map(&indices, |&i| {
            let trace = batch.trace(i)?;
            self.finish_quantized_trace(&trace)
        })
    }

    /// Detects a whole batch through **one fused int8 forward pass** — the
    /// quantized twin of [`DetectionEngine::detect_batch_with_paths`], keyed
    /// to an explicitly supplied [`QuantizedNetwork`] (serving layers pass the
    /// one their builder validated; [`detect_batch_quantized_with_paths`]
    /// passes the engine's own).
    ///
    /// `qnet` must have been calibrated from *this engine's* network instance
    /// — the verdict compares the quantized trace against this engine's canary
    /// paths, which only makes sense for the same weights.
    ///
    /// Per-sample results are bit-for-bit [`DetectionEngine::detect_quantized`]
    /// on the same input: the fused batch slices back losslessly (i32
    /// accumulation is exact) and the scoring step is shared.
    ///
    /// [`detect_batch_quantized_with_paths`]: DetectionEngine::detect_batch_quantized_with_paths
    pub fn detect_batch_quantized_with(
        &self,
        qnet: &QuantizedNetwork,
        inputs: &[Tensor],
    ) -> Vec<Result<(Detection, ActivationPath)>> {
        if !std::ptr::eq(qnet.network().as_ref(), self.network.as_ref()) {
            return inputs
                .iter()
                .map(|_| {
                    Err(CoreError::InvalidInput(
                        "quantized network was calibrated from a different network \
                         instance than this engine serves"
                            .into(),
                    ))
                })
                .collect();
        }
        let obs = self.stage_obs();
        let start = obs.map(|o| o.registry.clock().now_ns());
        let traced = self.trace_path_quantized_batch(qnet, inputs);
        let mid = if let (Some(o), Some(start)) = (obs, start) {
            let now = o.registry.clock().now_ns();
            o.trace_ns.record(now.saturating_sub(start));
            Some(now)
        } else {
            None
        };
        let verdicts: Vec<Result<(Detection, ActivationPath)>> = traced
            .into_iter()
            .map(|r| {
                let (predicted, similarity, path) = r?;
                Ok((self.judge(predicted, similarity)?, path))
            })
            .collect();
        if let (Some(o), Some(mid)) = (obs, mid) {
            o.score_ns
                .record(o.registry.clock().now_ns().saturating_sub(mid));
            o.detections.add(verdicts.len() as u64);
        }
        verdicts
    }

    /// Like [`DetectionEngine::detect_batch_quantized_with`] but using the
    /// engine's own quantized network
    /// ([`DetectionEngineBuilder::quantized`]); every input fails with
    /// [`CoreError::InvalidInput`] if the engine has none.
    pub fn detect_batch_quantized_with_paths(
        &self,
        inputs: &[Tensor],
    ) -> Vec<Result<(Detection, ActivationPath)>> {
        let Some(qnet) = self.quantized.as_ref() else {
            return inputs
                .iter()
                .map(|_| {
                    Err(CoreError::InvalidInput(
                        "engine was built without a quantized network; add .quantized(..)".into(),
                    ))
                })
                .collect();
        };
        self.detect_batch_quantized_with(qnet, inputs)
    }

    /// Batched [`DetectionEngine::detect_quantized`]: verdicts only, first
    /// error wins — the quantized twin of [`DetectionEngine::detect_batch`].
    ///
    /// # Errors
    ///
    /// Returns the first per-input error, if any, or
    /// [`CoreError::InvalidInput`] if the engine was built without a
    /// quantized network.
    pub fn detect_batch_quantized(&self, inputs: &[Tensor]) -> Result<Vec<Detection>> {
        self.detect_batch_quantized_with_paths(inputs)
            .into_iter()
            .map(|r| r.map(|(d, _)| d))
            .collect()
    }
}

/// Builder for [`DetectionEngine`]; all validation happens in
/// [`DetectionEngineBuilder::build`].
#[derive(Debug)]
pub struct DetectionEngineBuilder {
    network: Arc<Network>,
    program: DetectionProgram,
    class_paths: ClassPathSet,
    forest: Option<RandomForest>,
    forest_config: ForestConfig,
    calibration: Option<(Vec<Tensor>, Vec<Tensor>)>,
    quantization: Option<Vec<Tensor>>,
    threshold: f32,
    backend: Box<dyn DetectionBackend>,
    registry: Option<Arc<Registry>>,
}

impl DetectionEngineBuilder {
    /// Sets the decision threshold (default [`DEFAULT_THRESHOLD`]): inputs with
    /// classifier score `>= threshold` are flagged adversarial.
    pub fn threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the cost backend (default [`SoftwareBackend`]).
    pub fn backend(mut self, backend: Box<dyn DetectionBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Supplies an already-fitted classifier (takes precedence over
    /// [`DetectionEngineBuilder::calibrate`]).
    pub fn forest(mut self, forest: RandomForest) -> Self {
        self.forest = Some(forest);
        self
    }

    /// Sets the forest configuration used when fitting from calibration sets
    /// (default: the paper's 100 trees of depth 12).
    pub fn forest_config(mut self, config: ForestConfig) -> Self {
        self.forest_config = config;
        self
    }

    /// Attaches a metrics registry: the engine records its per-detection
    /// stage breakdown — `core.trace_ns` (streamed forward pass + path
    /// extraction + similarity) and `core.score_ns` (classifier scoring) —
    /// plus a `core.detections` counter into it whenever
    /// [`ptolemy_obs::Registry::enabled`] holds.  Without a registry (the
    /// default) the engine does no timing at all.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Supplies benign and adversarial calibration inputs; `build` fits the
    /// classifier from their path similarities (one feature per input, matching
    /// the paper's lightweight classification module, Sec. III-B).
    pub fn calibrate(mut self, benign: &[Tensor], adversarial: &[Tensor]) -> Self {
        self.calibration = Some((benign.to_vec(), adversarial.to_vec()));
        self
    }

    /// Opts the engine into the int8 quantized inference path: `build` runs
    /// the f32 network over `calibration` to fix per-layer activation scales,
    /// quantizes the weights, and attaches a [`QuantizedNetwork`] served via
    /// [`DetectionEngine::detect_quantized`] /
    /// [`DetectionEngine::path_similarity_quantized`].  The f32 entry points
    /// are unaffected.
    pub fn quantized(mut self, calibration: &[Tensor]) -> Self {
        self.quantization = Some(calibration.to_vec());
        self
    }

    /// Finalises the engine: validates the threshold, the program/class-path
    /// fingerprint and the path layout, binds the backend, and fits the
    /// classifier if calibration sets were supplied.
    ///
    /// Engines built with neither [`DetectionEngineBuilder::forest`] nor
    /// [`DetectionEngineBuilder::calibrate`] serve raw path similarities only;
    /// their `detect*` methods return an error.
    ///
    /// A *shard* of a canary set ([`ClassPathSet::shard`]) builds exactly like
    /// the complete set — shards keep the full positional structure, so every
    /// validation here applies unchanged — but the resulting engine refuses
    /// (with [`CoreError::InvalidInput`]) to score inputs whose predicted
    /// class the shard does not own.  Because of that, shard engines should be
    /// given the complete engine's fitted classifier via
    /// [`DetectionEngineBuilder::forest`] (and its threshold) rather than
    /// re-calibrated: calibration inputs predicting non-owned classes would
    /// error, and bit-for-bit parity with the complete engine requires the
    /// identical forest anyway.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] on a fingerprint or layout
    /// mismatch, [`CoreError::InvalidInput`] on empty calibration sets, and
    /// [`CoreError::Backend`] if the backend rejects the program.
    pub fn build(mut self) -> Result<DetectionEngine> {
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(CoreError::InvalidProgram(format!(
                "decision threshold {} outside [0, 1]",
                self.threshold
            )));
        }
        if self.class_paths.program_fingerprint != self.program.fingerprint() {
            return Err(CoreError::InvalidProgram(format!(
                "class paths were profiled with '{}' but the engine binds '{}'",
                self.class_paths.program_fingerprint,
                self.program.fingerprint()
            )));
        }
        // The fingerprint pins the program, not the network: class paths
        // profiled on a different network can carry the same fingerprint with
        // different mask layouts or class counts.  Check the structure here so
        // serving never fails per call.
        let layout = path_layout(&self.network, &self.program)?;
        if self.class_paths.num_classes() != self.network.num_classes() {
            return Err(CoreError::InvalidProgram(format!(
                "class paths cover {} classes but the network predicts {}",
                self.class_paths.num_classes(),
                self.network.num_classes()
            )));
        }
        for class_path in &self.class_paths.class_paths {
            let segments = class_path.path().segments();
            let mismatched = segments.len() != layout.len()
                || segments
                    .iter()
                    .zip(&layout)
                    .any(|(seg, (layer, len))| seg.layer != *layer || seg.mask.len() != *len);
            if mismatched {
                return Err(CoreError::InvalidProgram(format!(
                    "canary path of class {} does not match the engine's path \
                     layout (were the class paths profiled on a different network?)",
                    class_path.class
                )));
            }
        }
        self.backend.bind(&self.network, &self.program)?;

        let forest = match (self.forest, self.calibration) {
            (Some(forest), _) => Some(forest),
            (None, Some((benign, adversarial))) => {
                if benign.is_empty() || adversarial.is_empty() {
                    return Err(CoreError::InvalidInput(
                        "calibration requires both benign and adversarial inputs".into(),
                    ));
                }
                let network = &self.network;
                let program = &self.program;
                let class_paths = &self.class_paths;
                let mut features = Vec::with_capacity(benign.len() + adversarial.len());
                let mut labels = Vec::with_capacity(benign.len() + adversarial.len());
                for (inputs, is_adversarial) in [(&benign, false), (&adversarial, true)] {
                    // Calibration runs through the same fused batch trace as
                    // serving, so the fitted forest sees bit-identical
                    // similarities either way.  Chunked: a fused trace holds
                    // every layer's stacked activations at once, so fusing an
                    // arbitrarily large calibration set in one shot would make
                    // peak memory O(set size × total activations).
                    for chunk in inputs.chunks(CALIBRATION_FUSED_CHUNK) {
                        let similarities = trace_path_batch(network, program, class_paths, chunk);
                        for similarity in similarities {
                            features.push(vec![similarity.map(|(_, s, _)| s)?]);
                            labels.push(is_adversarial);
                        }
                    }
                }
                Some(RandomForest::fit(&features, &labels, &self.forest_config)?)
            }
            (None, None) => None,
        };

        let quantized = match self.quantization {
            Some(calibration) => {
                if calibration.is_empty() {
                    return Err(CoreError::InvalidInput(
                        "quantization requires at least one calibration input".into(),
                    ));
                }
                Some(QuantizedNetwork::quantize(
                    self.network.clone(),
                    &calibration,
                )?)
            }
            None => None,
        };

        Ok(DetectionEngine {
            network: self.network,
            program: self.program,
            class_paths: self.class_paths,
            forest,
            threshold: self.threshold,
            backend: self.backend,
            quantized,
            obs: self.registry.map(EngineObs::attach),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{variants, Profiler};
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    /// `(network, training samples, benign inputs, adversarial inputs)`.
    type Setup = (Network, Vec<(Tensor, usize)>, Vec<Tensor>, Vec<Tensor>);

    fn setup() -> Setup {
        let mut rng = Rng64::new(23);
        let prototypes: Vec<Vec<f32>> = vec![
            (0..8).map(|d| if d < 4 { 1.0 } else { 0.0 }).collect(),
            (0..8).map(|d| if d < 4 { 0.0 } else { 1.0 }).collect(),
        ];
        let mut samples = Vec::new();
        for (class, prototype) in prototypes.iter().enumerate() {
            for _ in 0..25 {
                let data: Vec<f32> = prototype.iter().map(|v| v + 0.08 * rng.normal()).collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();

        let benign: Vec<Tensor> = samples.iter().take(20).map(|(x, _)| x.clone()).collect();
        let mut adversarial = Vec::new();
        for (x, y) in samples.iter().take(20) {
            let other = 1 - *y;
            let data: Vec<f32> = x
                .as_slice()
                .iter()
                .zip(&prototypes[other])
                .map(|(a, b)| a + 1.2 * b)
                .collect();
            adversarial.push(Tensor::from_vec(data, &[8]).unwrap());
        }
        (net, samples, benign, adversarial)
    }

    #[test]
    fn engine_detects_and_batches_consistently() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let engine = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .build()
            .unwrap();

        assert_eq!(engine.fingerprint(), engine.program().fingerprint());
        assert_eq!(
            engine.fingerprint(),
            engine.class_paths().program_fingerprint
        );

        let all: Vec<Tensor> = benign.iter().chain(&adversarial).cloned().collect();
        let batch = engine.detect_batch(&all).unwrap();
        assert_eq!(batch.len(), all.len());
        for (input, batched) in all.iter().zip(&batch) {
            assert_eq!(*batched, engine.detect(input).unwrap());
            // detect_with_path shares the detect code path bit-for-bit and
            // returns a path whose prefix fingerprint is stable.
            let (traced, path) = engine.detect_with_path(input).unwrap();
            assert_eq!(traced.score.to_bits(), batched.score.to_bits());
            assert_eq!(traced.similarity.to_bits(), batched.similarity.to_bits());
            assert!(path.count_ones() > 0);
            assert_eq!(
                path.prefix_fingerprint(2),
                engine
                    .detect_with_path(input)
                    .unwrap()
                    .1
                    .prefix_fingerprint(2)
            );
        }

        // Streaming agrees with the batch path.
        let streamed: Vec<Detection> = engine
            .detect_stream(all.clone())
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(streamed, batch);
        let scores: Vec<f32> = engine
            .score_stream(all.clone())
            .collect::<Result<_>>()
            .unwrap();
        assert!(scores
            .iter()
            .zip(&batch)
            .all(|(score, verdict)| score.to_bits() == verdict.score.to_bits()));

        // The software backend prices the batch with algorithm-level counts.
        let (again, estimate) = engine.detect_batch_with_estimate(&all).unwrap();
        assert_eq!(again, batch);
        assert_eq!(estimate.backend, "software");
        assert_eq!(estimate.batch_size, all.len());
        let software = estimate.software.expect("software cost report");
        assert!(software.inference_macs > 0);
        assert!(estimate.latency_ms.is_none());
        assert_eq!(engine.backend_name(), "software");
    }

    #[test]
    fn quantized_mode_detects_deterministically_and_mostly_agrees_with_f32() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let engine = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .quantized(&benign)
            .build()
            .unwrap();

        let qnet = engine.quantized_network().expect("quantized network");
        assert!(qnet.num_quantized_layers() >= 2);

        let mut verdict_agree = 0;
        for input in benign.iter().chain(&adversarial) {
            let f = engine.detect(input).unwrap();
            let q = engine.detect_quantized(input).unwrap();
            // The quantized path is exactly deterministic.
            let q2 = engine.detect_quantized(input).unwrap();
            assert_eq!(q.score.to_bits(), q2.score.to_bits());
            assert_eq!(q.similarity.to_bits(), q2.similarity.to_bits());
            if q.is_adversary == f.is_adversary {
                verdict_agree += 1;
            }
            let (class, similarity) = engine.path_similarity_quantized(input).unwrap();
            assert_eq!(class, q.predicted_class);
            assert_eq!(similarity.to_bits(), q.similarity.to_bits());
        }
        // int8 rounding may flip a handful of verdicts, never most of them.
        let total = benign.len() + adversarial.len();
        assert!(
            verdict_agree * 10 >= total * 8,
            "only {verdict_agree}/{total} verdicts agree"
        );
    }

    #[test]
    fn batched_quantized_detection_is_bit_identical_to_single() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let engine = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .quantized(&benign)
            .build()
            .unwrap();

        let all: Vec<Tensor> = benign.iter().chain(&adversarial).cloned().collect();
        let batch = engine.detect_batch_quantized(&all).unwrap();
        assert_eq!(batch.len(), all.len());
        let with_paths = engine.detect_batch_quantized_with_paths(&all);
        for ((input, batched), traced) in all.iter().zip(&batch).zip(with_paths) {
            let single = engine.detect_quantized(input).unwrap();
            assert_eq!(single.score.to_bits(), batched.score.to_bits());
            assert_eq!(single.similarity.to_bits(), batched.similarity.to_bits());
            assert_eq!(single.predicted_class, batched.predicted_class);
            assert_eq!(single.is_adversary, batched.is_adversary);
            let (d, path) = traced.unwrap();
            assert_eq!(d, *batched);
            assert!(path.count_ones() > 0);
        }

        // A mis-shaped input fails alone; the rest of the batch still serves.
        let mut mixed = all[..3].to_vec();
        mixed.push(Tensor::zeros(&[3]));
        let results = engine.detect_batch_quantized_with_paths(&mixed);
        assert!(results[..3].iter().all(Result::is_ok));
        assert!(results[3].is_err());

        // An external qnet calibrated from a different network instance is
        // rejected per input, never silently scored.
        let (other_net, _, other_benign, _) = setup();
        let foreign = QuantizedNetwork::quantize(Arc::new(other_net), &other_benign[..4]).unwrap();
        let rejected = engine.detect_batch_quantized_with(&foreign, &all[..2]);
        assert_eq!(rejected.len(), 2);
        assert!(rejected.iter().all(Result::is_err));

        // Without a quantized network every input fails, matching the
        // single-input contract.
        let (net2, samples2, benign2, adversarial2) = setup();
        let program2 = variants::bw_cu(&net2, 0.5).unwrap();
        let class_paths2 = Profiler::new(program2.clone())
            .profile(&net2, &samples2)
            .unwrap();
        let plain = DetectionEngine::builder(net2, program2, class_paths2)
            .calibrate(&benign2, &adversarial2)
            .build()
            .unwrap();
        assert!(plain.detect_batch_quantized(&all[..2]).is_err());
    }

    #[test]
    fn quantized_mode_requires_calibration_inputs_and_opt_in() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let net = Arc::new(net);
        let err = DetectionEngine::builder(Arc::clone(&net), program.clone(), class_paths.clone())
            .quantized(&[])
            .build();
        assert!(err.is_err());
        let engine = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .build()
            .unwrap();
        assert!(engine.quantized_network().is_none());
        assert!(engine.detect_quantized(&benign[0]).is_err());
        assert!(engine.path_similarity_quantized(&benign[0]).is_err());
    }

    #[test]
    fn registry_records_stage_breakdown_and_the_gate_silences_it() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let registry = Arc::new(Registry::new("core-test"));
        let engine = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .registry(Arc::clone(&registry))
            .build()
            .unwrap();

        // Calibration happens before the engine exists, so nothing yet.
        assert_eq!(registry.counter("core.detections").get(), 0);

        let baseline = engine.detect(&benign[0]).unwrap();
        engine.detect_batch(&benign[..3]).unwrap();
        assert_eq!(registry.counter("core.detections").get(), 4);
        let trace = registry.histogram("core.trace_ns").snapshot();
        let score = registry.histogram("core.score_ns").snapshot();
        // One per detect call plus one per batch call.
        assert_eq!(trace.count(), 2);
        assert_eq!(score.count(), 2);

        // Disabling the registry stops recording without changing verdicts.
        registry.set_enabled(false);
        let silent = engine.detect(&benign[0]).unwrap();
        assert_eq!(silent, baseline);
        assert_eq!(registry.counter("core.detections").get(), 4);
        assert_eq!(registry.histogram("core.trace_ns").snapshot().count(), 2);
    }

    #[test]
    fn threshold_knob_changes_the_verdict_not_the_score() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let net = Arc::new(net);

        let strict = DetectionEngine::builder(net.clone(), program.clone(), class_paths.clone())
            .calibrate(&benign, &adversarial)
            .threshold(0.0)
            .build()
            .unwrap();
        let lenient = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &adversarial)
            .threshold(1.0)
            .build()
            .unwrap();
        assert_eq!(strict.threshold(), 0.0);

        for input in benign.iter().chain(&adversarial) {
            let s = strict.detect(input).unwrap();
            let l = lenient.detect(input).unwrap();
            // Same forest fit (same calibration, deterministic) -> same score.
            assert!((s.score - l.score).abs() < 1e-6);
            // Threshold 0.0 flags everything; 1.0 only flags certain scores.
            assert!(s.is_adversary);
            assert_eq!(l.is_adversary, l.score >= 1.0);
        }
    }

    #[test]
    fn build_rejects_mismatched_fingerprints_and_bad_thresholds() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let other = variants::bw_cu(&net, 0.9).unwrap();
        let net = Arc::new(net);

        let err = DetectionEngine::builder(net.clone(), other, class_paths.clone())
            .calibrate(&benign, &adversarial)
            .build();
        assert!(matches!(err, Err(CoreError::InvalidProgram(_))));

        let err = DetectionEngine::builder(net.clone(), program.clone(), class_paths.clone())
            .threshold(1.5)
            .build();
        assert!(matches!(err, Err(CoreError::InvalidProgram(_))));

        let err = DetectionEngine::builder(net, program, class_paths)
            .calibrate(&benign, &[])
            .build();
        assert!(matches!(err, Err(CoreError::InvalidInput(_))));
    }

    #[test]
    fn forestless_engine_serves_similarities_but_not_verdicts() {
        let (net, samples, benign, _) = setup();
        let program = variants::fw_ab(&net, 0.3).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let engine = DetectionEngine::builder(net, program, class_paths)
            .build()
            .unwrap();
        assert!(engine.forest().is_none());
        let (class, similarity) = engine.path_similarity(&benign[0]).unwrap();
        assert!(class < 2);
        assert!((0.0..=1.0).contains(&similarity));
        assert!(matches!(
            engine.detect(&benign[0]),
            Err(CoreError::InvalidInput(_))
        ));
        // Capacity-planning estimates still work without a classifier.
        let estimate = engine.estimate_batch(32, 0.05).unwrap();
        assert_eq!(estimate.batch_size, 32);
        assert!(estimate.software.is_some());
    }

    #[test]
    fn stateless_path_similarity_still_checks_fingerprints() {
        let (net, samples, benign, _) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let (class, s) = path_similarity(&net, &program, &class_paths, &benign[0]).unwrap();
        assert!(class < 2);
        assert!((0.0..=1.0).contains(&s));
        let other = variants::bw_cu(&net, 0.9).unwrap();
        assert!(path_similarity(&net, &other, &class_paths, &benign[0]).is_err());
    }
}
