//! Activation paths and class paths (paper Sec. III-A).

use crate::json::JsonValue;
use crate::{BitVec, CoreError, Result};

/// The per-layer bitmask of important neurons of one extraction layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Index of the network layer this segment belongs to.
    pub layer: usize,
    /// Bitmask over the layer's feature map (input feature map for backward
    /// extraction, output feature map for forward extraction).
    pub mask: BitVec,
}

/// The activation path of a single input: the collection of important neurons across
/// all extraction layers, represented as one bitmask per layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationPath {
    segments: Vec<PathSegment>,
}

impl ActivationPath {
    /// Creates a path with all-zero masks for the given `(layer, feature_map_len)`
    /// pairs.
    pub fn empty(layer_sizes: &[(usize, usize)]) -> Self {
        ActivationPath {
            segments: layer_sizes
                .iter()
                .map(|(layer, len)| PathSegment {
                    layer: *layer,
                    mask: BitVec::new(*len),
                })
                .collect(),
        }
    }

    /// The per-layer segments in extraction order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Mutable access to the per-layer segments (used by the extraction algorithms).
    pub(crate) fn segments_mut(&mut self) -> &mut [PathSegment] {
        &mut self.segments
    }

    /// Total number of important neurons across all layers (`‖P‖₁`).
    pub fn count_ones(&self) -> usize {
        self.segments.iter().map(|s| s.mask.count_ones()).sum()
    }

    /// Total number of neurons covered by the path's masks.
    pub fn total_bits(&self) -> usize {
        self.segments.iter().map(|s| s.mask.len()).sum()
    }

    /// Fraction of neurons marked important (the paper reports this stays below ~5%).
    pub fn density(&self) -> f32 {
        if self.total_bits() == 0 {
            0.0
        } else {
            self.count_ones() as f32 / self.total_bits() as f32
        }
    }

    /// Segment for a specific network layer, if the path contains one.
    pub fn segment_for_layer(&self, layer: usize) -> Option<&PathSegment> {
        self.segments.iter().find(|s| s.layer == layer)
    }

    /// Checks that two paths cover the same layers with the same mask sizes.
    fn check_compatible(&self, other: &ActivationPath) -> Result<()> {
        if self.segments.len() != other.segments.len()
            || self
                .segments
                .iter()
                .zip(&other.segments)
                .any(|(a, b)| a.layer != b.layer || a.mask.len() != b.mask.len())
        {
            return Err(CoreError::IncompatiblePaths(
                "paths were extracted with different programs or networks".into(),
            ));
        }
        Ok(())
    }

    /// Path similarity `S = ‖P & Pc‖₁ / ‖P‖₁` against a class path (Sec. III-B).
    ///
    /// Returns 0.0 when this path is empty (an empty runtime path shares nothing
    /// with any canary path, which is the conservative choice for detection).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatiblePaths`] if the paths do not share structure.
    pub fn similarity(&self, class_path: &ClassPath) -> Result<f32> {
        self.check_compatible(&class_path.path)?;
        let own = self.count_ones();
        if own == 0 {
            return Ok(0.0);
        }
        let shared: usize = self
            .segments
            .iter()
            .zip(&class_path.path.segments)
            .map(|(a, b)| a.mask.and_count(&b.mask))
            .sum();
        Ok(shared as f32 / own as f32)
    }

    /// A 64-bit FNV-1a fingerprint of the first `segments` path segments (layer
    /// index, mask length and mask words, in extraction order).
    ///
    /// Two inputs collide exactly when their important-neuron masks agree on
    /// those early extraction layers — which is what makes the prefix usable as
    /// a near-duplicate cache key for serving: a repeated or barely-perturbed
    /// input activates the same early-layer path, while genuinely different
    /// inputs diverge within the first layer or two.
    ///
    /// The extremes are well-defined (cache keys must never depend on the
    /// caller clamping its depth argument):
    ///
    /// * `segments == 0` hashes nothing and returns the FNV-1a offset basis —
    ///   the **same constant for every path**, so a zero-segment prefix can
    ///   never discriminate inputs (serving layers reject a zero prefix depth
    ///   at configuration time for exactly this reason);
    /// * `segments >= self.segments().len()` fingerprints the whole path —
    ///   every depth from the segment count up to `usize::MAX` returns the
    ///   identical full-path key, so an over-deep configuration degrades to
    ///   exact-path matching instead of misbehaving;
    /// * a path with **no segments at all** (a program with every layer
    ///   disabled) also returns the offset basis at every depth, consistent
    ///   with the two rules above.
    pub fn prefix_fingerprint(&self, segments: usize) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(PRIME);
        };
        for seg in self.segments.iter().take(segments) {
            mix(seg.layer as u64);
            mix(seg.mask.len() as u64);
            for word in seg.mask.words() {
                mix(*word);
            }
        }
        hash
    }

    /// Jaccard similarity `‖A & B‖₁ / ‖A | B‖₁` between two paths; used for the
    /// inter-class similarity matrices of Fig. 5.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatiblePaths`] if the paths do not share structure.
    pub fn jaccard(&self, other: &ActivationPath) -> Result<f32> {
        self.check_compatible(other)?;
        let mut intersection = 0usize;
        let mut union = 0usize;
        for (a, b) in self.segments.iter().zip(&other.segments) {
            intersection += a.mask.and_count(&b.mask);
            union += a.mask.or_count(&b.mask);
        }
        if union == 0 {
            Ok(1.0)
        } else {
            Ok(intersection as f32 / union as f32)
        }
    }
}

/// The canary path of one inference class: the bitwise OR of the activation paths of
/// all correctly-predicted training inputs of that class (`Pc = ⋃ P(x)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPath {
    /// The class this canary path belongs to.
    pub class: usize,
    /// Number of activation paths aggregated so far.
    pub num_aggregated: usize,
    path: ActivationPath,
}

impl ClassPath {
    /// Creates an empty class path with the given structure.
    pub fn empty(class: usize, layer_sizes: &[(usize, usize)]) -> Self {
        ClassPath {
            class,
            num_aggregated: 0,
            path: ActivationPath::empty(layer_sizes),
        }
    }

    /// Aggregates one activation path into the class path (bitwise OR).  New
    /// training samples can be integrated incrementally without regenerating the
    /// class path — the property the paper highlights in Sec. III-B.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatiblePaths`] if the path structure differs.
    pub fn aggregate(&mut self, path: &ActivationPath) -> Result<()> {
        self.path.check_compatible(path)?;
        for (own, new) in self.path.segments_mut().iter_mut().zip(path.segments()) {
            own.mask.or_assign(&new.mask);
        }
        self.num_aggregated += 1;
        Ok(())
    }

    /// The aggregated path.
    pub fn path(&self) -> &ActivationPath {
        &self.path
    }

    /// Total number of important neurons in the canary path.
    pub fn count_ones(&self) -> usize {
        self.path.count_ones()
    }
}

/// The complete set of canary class paths produced by offline profiling.
///
/// A set is either *complete* (it owns a canary path for every class — what
/// [`crate::Profiler`] produces) or a *shard* of a complete set, produced by
/// [`ClassPathSet::shard`] / [`ClassPathSet::subset`].  A shard keeps the full
/// positional structure — one entry per class, so engines built from it
/// validate exactly like the complete set — but owns real canary paths only
/// for its assigned classes; the other entries are empty structural
/// placeholders, and [`ClassPathSet::class_path`] refuses to serve them.
/// Sharding lets a many-class deployment split its canary memory and tier-2
/// escalation work across several engines, with a router sending each input to
/// the shard owning its predicted class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPathSet {
    /// One canary path per class, indexed by class id.  For a shard, entries of
    /// non-owned classes are empty placeholders with the correct mask layout.
    pub class_paths: Vec<ClassPath>,
    /// Fingerprint of the detection program used during profiling; detection must
    /// use the same program (paper Fig. 4: "the path extraction methods in both the
    /// offline and online phases must match").
    pub program_fingerprint: String,
    /// `Some(classes)` (sorted, deduplicated) when this set is a shard owning
    /// only those classes; `None` for a complete set that owns every class.
    pub(crate) shard_classes: Option<Vec<usize>>,
}

impl ClassPathSet {
    /// Creates a complete (unsharded) set from per-class canary paths and the
    /// fingerprint of the program that profiled them.
    pub fn new(class_paths: Vec<ClassPath>, program_fingerprint: String) -> Self {
        ClassPathSet {
            class_paths,
            program_fingerprint,
            shard_classes: None,
        }
    }

    /// Canary path of a class.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the class is out of range, or if
    /// this set is a shard that does not own the class (the entry would be an
    /// empty placeholder, and comparing against it would silently report zero
    /// similarity instead of the true canary overlap — a misrouted lookup must
    /// fail loudly).
    pub fn class_path(&self, class: usize) -> Result<&ClassPath> {
        let class_path = self
            .class_paths
            .get(class)
            .ok_or_else(|| CoreError::InvalidInput(format!("class {class} has no canary path")))?;
        if !self.owns(class) {
            return Err(CoreError::InvalidInput(format!(
                "class {class} is owned by a different shard of this canary set \
                 (this shard owns {:?})",
                self.shard_classes.as_deref().unwrap_or(&[])
            )));
        }
        Ok(class_path)
    }

    /// Number of classes covered (the *total* class count of the profiled
    /// task, identical for a complete set and every shard of it).
    pub fn num_classes(&self) -> usize {
        self.class_paths.len()
    }

    /// `true` if this set holds a real canary path for `class` (always true
    /// for in-range classes of a complete set).
    pub fn owns(&self, class: usize) -> bool {
        class < self.class_paths.len()
            && self
                .shard_classes
                .as_ref()
                .map_or(true, |owned| owned.binary_search(&class).is_ok())
    }

    /// The classes this set is a shard of, or `None` for a complete set.
    pub fn shard_classes(&self) -> Option<&[usize]> {
        self.shard_classes.as_deref()
    }

    /// The classes this set owns a real canary path for: every class for a
    /// complete set, the assigned subset for a shard.
    pub fn owned_classes(&self) -> Vec<usize> {
        match &self.shard_classes {
            Some(owned) => owned.clone(),
            None => (0..self.class_paths.len()).collect(),
        }
    }

    /// Splits the owned classes into `n` shards (round-robin: shard `i` owns
    /// every `i + k·n`-th owned class), each a [`ClassPathSet`] with the full
    /// positional structure but only its assigned canary paths.  Together the
    /// shards partition this set's owned classes, so `n` escalation engines
    /// built from them can split a many-class model's canary memory and
    /// detection work while a router sends each input to the shard owning its
    /// predicted class.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `n` is zero or exceeds the
    /// number of owned classes (a shard owning nothing could never serve).
    pub fn shard(&self, n: usize) -> Result<Vec<ClassPathSet>> {
        let owned = self.owned_classes();
        if n == 0 {
            return Err(CoreError::InvalidInput(
                "cannot split a canary set into zero shards".into(),
            ));
        }
        if n > owned.len() {
            return Err(CoreError::InvalidInput(format!(
                "cannot split {} owned classes into {n} shards (every shard must own at \
                 least one class)",
                owned.len()
            )));
        }
        (0..n)
            .map(|i| {
                let classes: Vec<usize> = owned.iter().copied().skip(i).step_by(n).collect();
                self.subset(&classes)
            })
            .collect()
    }

    /// A shard of this set owning exactly `classes`: the returned set has the
    /// same positional structure and program fingerprint, real canary paths
    /// for `classes`, and empty structural placeholders everywhere else.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `classes` is empty, contains a
    /// duplicate, or names a class this set does not own.
    pub fn subset(&self, classes: &[usize]) -> Result<ClassPathSet> {
        if classes.is_empty() {
            return Err(CoreError::InvalidInput(
                "a canary-set shard must own at least one class".into(),
            ));
        }
        let mut owned: Vec<usize> = classes.to_vec();
        owned.sort_unstable();
        owned.dedup();
        if owned.len() != classes.len() {
            return Err(CoreError::InvalidInput(
                "duplicate class in canary-set shard".into(),
            ));
        }
        for &class in &owned {
            if !self.owns(class) {
                return Err(CoreError::InvalidInput(format!(
                    "cannot shard class {class}: this set does not own it"
                )));
            }
        }
        let class_paths = self
            .class_paths
            .iter()
            .map(|class_path| {
                if owned.binary_search(&class_path.class).is_ok() {
                    class_path.clone()
                } else {
                    let layout: Vec<(usize, usize)> = class_path
                        .path()
                        .segments()
                        .iter()
                        .map(|seg| (seg.layer, seg.mask.len()))
                        .collect();
                    ClassPath::empty(class_path.class, &layout)
                }
            })
            .collect();
        Ok(ClassPathSet {
            class_paths,
            program_fingerprint: self.program_fingerprint.clone(),
            shard_classes: Some(owned),
        })
    }

    /// Serialises the class-path set to a JSON string (the artifact the paper ships
    /// as "offline-generated class paths").
    ///
    /// Mask words are written as lowercase hex strings so 64-bit payloads survive
    /// the round trip exactly.
    pub fn to_json(&self) -> Result<String> {
        let class_paths = self
            .class_paths
            .iter()
            .map(|cp| {
                let segments = cp
                    .path
                    .segments
                    .iter()
                    .map(|seg| {
                        let words = seg
                            .mask
                            .words()
                            .iter()
                            .map(|w| JsonValue::String(format!("{w:x}")))
                            .collect();
                        JsonValue::Object(vec![
                            ("layer".into(), JsonValue::UInt(seg.layer as u64)),
                            ("len".into(), JsonValue::UInt(seg.mask.len() as u64)),
                            ("words".into(), JsonValue::Array(words)),
                        ])
                    })
                    .collect();
                JsonValue::Object(vec![
                    ("class".into(), JsonValue::UInt(cp.class as u64)),
                    (
                        "num_aggregated".into(),
                        JsonValue::UInt(cp.num_aggregated as u64),
                    ),
                    ("segments".into(), JsonValue::Array(segments)),
                ])
            })
            .collect();
        let mut fields = vec![
            (
                "program_fingerprint".into(),
                JsonValue::String(self.program_fingerprint.clone()),
            ),
            ("class_paths".into(), JsonValue::Array(class_paths)),
        ];
        if let Some(owned) = &self.shard_classes {
            fields.push((
                "shard_classes".into(),
                JsonValue::Array(owned.iter().map(|c| JsonValue::UInt(*c as u64)).collect()),
            ));
        }
        Ok(JsonValue::Object(fields).to_json())
    }

    /// Restores a class-path set from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if parsing fails or the document does
    /// not describe a class-path set.
    pub fn from_json(json: &str) -> Result<Self> {
        let invalid = |msg: &str| CoreError::InvalidInput(format!("deserialisation failed: {msg}"));
        let doc = crate::json::parse(json).map_err(|e| invalid(&e))?;
        let program_fingerprint = doc
            .get("program_fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| invalid("missing program_fingerprint"))?
            .to_string();
        let mut class_paths = Vec::new();
        for cp in doc
            .get("class_paths")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| invalid("missing class_paths array"))?
        {
            let class = cp
                .get("class")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| invalid("missing class id"))? as usize;
            // Lookup is positional ([`ClassPathSet::class_path`] indexes by
            // class id), so a reordered or duplicated artifact must not load.
            if class != class_paths.len() {
                return Err(invalid(&format!(
                    "class ids must be contiguous and in order (found {class} at position {})",
                    class_paths.len()
                )));
            }
            let num_aggregated =
                cp.get("num_aggregated")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| invalid("missing num_aggregated"))? as usize;
            let mut segments = Vec::new();
            for seg in cp
                .get("segments")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| invalid("missing segments array"))?
            {
                let layer = seg
                    .get("layer")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| invalid("missing segment layer"))?
                    as usize;
                let len = seg
                    .get("len")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| invalid("missing segment len"))?
                    as usize;
                let words = seg
                    .get("words")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| invalid("missing segment words"))?
                    .iter()
                    .map(|w| {
                        w.as_str()
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| invalid("invalid mask word"))
                    })
                    .collect::<Result<Vec<u64>>>()?;
                let mask = BitVec::from_words(len, words)
                    .ok_or_else(|| invalid("mask words disagree with mask length"))?;
                segments.push(PathSegment { layer, mask });
            }
            class_paths.push(ClassPath {
                class,
                num_aggregated,
                path: ActivationPath { segments },
            });
        }
        let shard_classes = match doc.get("shard_classes") {
            None => None,
            Some(value) => {
                let owned = value
                    .as_array()
                    .ok_or_else(|| invalid("shard_classes must be an array"))?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .map(|c| c as usize)
                            .ok_or_else(|| invalid("invalid shard class id"))
                    })
                    .collect::<Result<Vec<usize>>>()?;
                let sorted = owned.windows(2).all(|w| w[0] < w[1])
                    && owned.iter().all(|c| *c < class_paths.len());
                if owned.is_empty() || !sorted {
                    return Err(invalid(
                        "shard_classes must be non-empty, strictly increasing and in range",
                    ));
                }
                Some(owned)
            }
        };
        Ok(ClassPathSet {
            class_paths,
            program_fingerprint,
            shard_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_with(bits: &[(usize, usize)]) -> ActivationPath {
        // Two segments: layer 1 with 10 neurons, layer 3 with 20 neurons.
        let mut p = ActivationPath::empty(&[(1, 10), (3, 20)]);
        for (seg, bit) in bits {
            p.segments_mut()[*seg].mask.set(*bit);
        }
        p
    }

    #[test]
    fn empty_path_structure() {
        let p = ActivationPath::empty(&[(0, 5), (2, 7)]);
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.count_ones(), 0);
        assert_eq!(p.total_bits(), 12);
        assert_eq!(p.density(), 0.0);
        assert!(p.segment_for_layer(2).is_some());
        assert!(p.segment_for_layer(1).is_none());
    }

    #[test]
    fn similarity_against_class_path() {
        let p = path_with(&[(0, 1), (0, 2), (1, 5)]);
        let mut cp = ClassPath::empty(0, &[(1, 10), (3, 20)]);
        cp.aggregate(&path_with(&[(0, 1), (1, 5), (1, 6)])).unwrap();
        assert_eq!(cp.num_aggregated, 1);
        // P has 3 bits, 2 of which are in Pc -> S = 2/3.
        let s = p.similarity(&cp).unwrap();
        assert!((s - 2.0 / 3.0).abs() < 1e-6);
        // Identical path has similarity 1.
        let q = path_with(&[(0, 1), (1, 5), (1, 6)]);
        assert!((q.similarity(&cp).unwrap() - 1.0).abs() < 1e-6);
        // Empty path has similarity 0.
        let empty = ActivationPath::empty(&[(1, 10), (3, 20)]);
        assert_eq!(empty.similarity(&cp).unwrap(), 0.0);
    }

    #[test]
    fn aggregation_is_monotone_and_incremental() {
        let mut cp = ClassPath::empty(3, &[(1, 10), (3, 20)]);
        cp.aggregate(&path_with(&[(0, 0)])).unwrap();
        let ones_after_one = cp.count_ones();
        cp.aggregate(&path_with(&[(0, 0), (1, 19)])).unwrap();
        assert!(cp.count_ones() >= ones_after_one);
        assert_eq!(cp.count_ones(), 2);
        assert_eq!(cp.num_aggregated, 2);
        assert_eq!(cp.class, 3);
    }

    #[test]
    fn incompatible_paths_are_rejected() {
        let p = path_with(&[(0, 1)]);
        let mut other_structure = ClassPath::empty(0, &[(1, 10)]);
        assert!(other_structure
            .aggregate(&ActivationPath::empty(&[(2, 10)]))
            .is_err());
        assert!(p.similarity(&other_structure).is_err());
        assert!(p.jaccard(&ActivationPath::empty(&[(1, 10)])).is_err());
    }

    #[test]
    fn prefix_fingerprint_distinguishes_prefixes_only() {
        let a = path_with(&[(0, 1), (1, 5)]);
        let b = path_with(&[(0, 1), (1, 6)]);
        // Same first segment -> same one-segment prefix fingerprint.
        assert_eq!(a.prefix_fingerprint(1), b.prefix_fingerprint(1));
        // Diverging second segment -> different two-segment fingerprint.
        assert_ne!(a.prefix_fingerprint(2), b.prefix_fingerprint(2));
        // Identical paths agree at every depth, including beyond the last segment.
        assert_eq!(
            a.prefix_fingerprint(usize::MAX),
            a.clone().prefix_fingerprint(usize::MAX)
        );
        // Depth 0 is a constant, whatever the path.
        assert_eq!(a.prefix_fingerprint(0), b.prefix_fingerprint(0));
        // Differing first segments diverge immediately.
        let c = path_with(&[(0, 2), (1, 5)]);
        assert_ne!(a.prefix_fingerprint(1), c.prefix_fingerprint(1));
    }

    #[test]
    fn prefix_fingerprint_extremes_are_well_defined() {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let a = path_with(&[(0, 1), (1, 5)]);
        let b = path_with(&[(0, 7), (1, 9)]);

        // Depth 0 hashes nothing: the offset basis, identical for every path.
        assert_eq!(a.prefix_fingerprint(0), FNV_OFFSET);
        assert_eq!(b.prefix_fingerprint(0), FNV_OFFSET);

        // Every depth >= the segment count equals the exact full-path key.
        let full = a.prefix_fingerprint(a.segments().len());
        for depth in [2usize, 3, 17, usize::MAX] {
            assert_eq!(a.prefix_fingerprint(depth), full);
        }
        // Beyond-depth keys still discriminate different paths.
        assert_ne!(
            a.prefix_fingerprint(usize::MAX),
            b.prefix_fingerprint(usize::MAX)
        );

        // A path with no segments at all is the offset basis at every depth.
        let empty = ActivationPath::empty(&[]);
        assert_eq!(empty.segments().len(), 0);
        for depth in [0usize, 1, usize::MAX] {
            assert_eq!(empty.prefix_fingerprint(depth), FNV_OFFSET);
        }

        // An all-zero mask is NOT the same as no segments: structure (layer
        // ids, mask lengths) is part of the key even when no neuron is set.
        let zeroed = ActivationPath::empty(&[(1, 10), (3, 20)]);
        assert_ne!(zeroed.prefix_fingerprint(1), FNV_OFFSET);
        assert_ne!(
            zeroed.prefix_fingerprint(usize::MAX),
            ActivationPath::empty(&[(1, 10)]).prefix_fingerprint(usize::MAX)
        );
    }

    #[test]
    fn jaccard_between_paths() {
        let a = path_with(&[(0, 1), (0, 2)]);
        let b = path_with(&[(0, 2), (1, 3)]);
        // Intersection 1, union 3.
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        assert!((a.jaccard(&a).unwrap() - 1.0).abs() < 1e-6);
        let empty = ActivationPath::empty(&[(1, 10), (3, 20)]);
        assert_eq!(empty.jaccard(&empty).unwrap(), 1.0);
    }

    #[test]
    fn class_path_set_lookup_and_json_roundtrip() {
        let mut cp = ClassPath::empty(0, &[(1, 10), (3, 20)]);
        cp.aggregate(&path_with(&[(0, 4)])).unwrap();
        let set = ClassPathSet::new(vec![cp], "bwcu-theta0.5".into());
        assert_eq!(set.num_classes(), 1);
        assert!(set.class_path(0).is_ok());
        assert!(set.class_path(1).is_err());
        let json = set.to_json().unwrap();
        let restored = ClassPathSet::from_json(&json).unwrap();
        assert_eq!(restored, set);
        assert!(ClassPathSet::from_json("not json").is_err());
    }

    /// A 5-class set whose class `c` canary has bit `c` set on segment 0.
    fn five_class_set() -> ClassPathSet {
        let class_paths = (0..5)
            .map(|c| {
                let mut cp = ClassPath::empty(c, &[(1, 10), (3, 20)]);
                cp.aggregate(&path_with(&[(0, c)])).unwrap();
                cp
            })
            .collect();
        ClassPathSet::new(class_paths, "fp".into())
    }

    #[test]
    fn shards_partition_owned_classes_and_keep_structure() {
        let set = five_class_set();
        assert!(set.shard_classes().is_none());
        assert_eq!(set.owned_classes(), vec![0, 1, 2, 3, 4]);

        for n in 1..=5usize {
            let shards = set.shard(n).unwrap();
            assert_eq!(shards.len(), n);
            let mut seen = vec![0usize; set.num_classes()];
            for shard in &shards {
                // Full positional structure and fingerprint survive sharding.
                assert_eq!(shard.num_classes(), set.num_classes());
                assert_eq!(shard.program_fingerprint, set.program_fingerprint);
                for &class in shard.shard_classes().unwrap() {
                    seen[class] += 1;
                    assert!(shard.owns(class));
                    // Owned canaries are bit-for-bit the original ones.
                    assert_eq!(
                        shard.class_path(class).unwrap(),
                        set.class_path(class).unwrap()
                    );
                }
            }
            // Every class is owned by exactly one shard.
            assert!(seen.iter().all(|&count| count == 1), "{seen:?}");
        }
    }

    #[test]
    fn shard_lookups_outside_ownership_fail_loudly() {
        let set = five_class_set();
        let shard = set.subset(&[1, 4]).unwrap();
        assert!(shard.owns(1) && shard.owns(4));
        assert!(!shard.owns(0) && !shard.owns(5));
        assert!(shard.class_path(1).is_ok());
        // A misrouted lookup must error, not silently compare against the
        // empty placeholder.
        assert!(shard.class_path(0).is_err());
        assert!(shard.class_path(9).is_err());
        // The placeholder still has the full mask layout (engine construction
        // validates structure positionally).
        assert_eq!(shard.class_paths[0].path().total_bits(), 30);
        assert_eq!(shard.class_paths[0].count_ones(), 0);
    }

    #[test]
    fn invalid_shard_requests_are_rejected() {
        let set = five_class_set();
        assert!(set.shard(0).is_err());
        assert!(set.shard(6).is_err());
        assert!(set.subset(&[]).is_err());
        assert!(set.subset(&[2, 2]).is_err());
        assert!(set.subset(&[5]).is_err());
        // A shard can be re-sharded, but only within its own classes.
        let shard = set.subset(&[1, 3, 4]).unwrap();
        assert!(shard.subset(&[1, 4]).is_ok());
        assert!(shard.subset(&[0]).is_err());
        let halves = shard.shard(2).unwrap();
        assert_eq!(halves[0].shard_classes(), Some(&[1, 4][..]));
        assert_eq!(halves[1].shard_classes(), Some(&[3][..]));
    }

    #[test]
    fn shard_json_roundtrip_preserves_ownership() {
        let set = five_class_set();
        let shard = set.subset(&[0, 2]).unwrap();
        let restored = ClassPathSet::from_json(&shard.to_json().unwrap()).unwrap();
        assert_eq!(restored, shard);
        assert_eq!(restored.shard_classes(), Some(&[0, 2][..]));

        // Out-of-range / unsorted shard metadata must not load.
        let json = shard.to_json().unwrap();
        let out_of_range = json.replace("\"shard_classes\":[0,2]", "\"shard_classes\":[0,9]");
        assert!(ClassPathSet::from_json(&out_of_range).is_err());
        let unsorted = json.replace("\"shard_classes\":[0,2]", "\"shard_classes\":[2,0]");
        assert!(ClassPathSet::from_json(&unsorted).is_err());
        let empty = json.replace("\"shard_classes\":[0,2]", "\"shard_classes\":[]");
        assert!(ClassPathSet::from_json(&empty).is_err());
    }

    #[test]
    fn from_json_rejects_reordered_or_duplicated_classes() {
        let mut a = ClassPath::empty(0, &[(1, 10)]);
        a.aggregate(&{
            let mut p = ActivationPath::empty(&[(1, 10)]);
            p.segments_mut()[0].mask.set(1);
            p
        })
        .unwrap();
        let b = ClassPath::empty(1, &[(1, 10)]);
        let set = ClassPathSet::new(vec![a, b], "fp".into());
        let json = set.to_json().unwrap();

        // Lookup is positional, so out-of-order or duplicated class ids in the
        // artifact would silently compare inputs against the wrong canary path.
        let swapped = json
            .replace("\"class\":0", "\"class\":9")
            .replace("\"class\":1", "\"class\":0")
            .replace("\"class\":9", "\"class\":1");
        assert!(ClassPathSet::from_json(&swapped).is_err());
        let duplicated = json.replace("\"class\":1", "\"class\":0");
        assert!(ClassPathSet::from_json(&duplicated).is_err());
    }
}
