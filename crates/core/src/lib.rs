//! # ptolemy-core
//!
//! The Ptolemy adversarial-sample detection framework (the paper's primary
//! contribution, Sec. III): activation paths, class paths, the important-neuron
//! extraction algorithms with their three knobs (extraction direction, thresholding
//! mechanism, selective extraction), offline class-path profiling, and the online
//! detector that combines path similarity with a random-forest classifier.
//!
//! The crate is purely *functional*: it computes what the Ptolemy hardware would
//! compute.  The cost of executing a detection program on the co-designed hardware
//! is modelled separately by `ptolemy-compiler` + `ptolemy-accel`, which consume the
//! same [`DetectionProgram`] description.
//!
//! # Pipeline
//!
//! ```text
//!  offline                                     online (serving)
//!  ───────                                     ────────────────
//!  training set ──► Profiler ──► ClassPathSet ─┐
//!                                              ├─► DetectionEngine::builder(..)
//!  benign + adversarial calibration set ───────┘      .threshold(..)
//!                                                     .backend(..)     ◄ software | accel
//!                                                     .build()?        ◄ fingerprint checked once
//!                                                        │
//!              detect(&x) / detect_batch(&xs) / detect_stream(xs) / score_stream(xs)
//!                                                        ▼
//!                                          Detection { is_adversary, … }
//!                                          + BackendEstimate per batch
//! ```
//!
//! [`DetectionEngine`] is the only online surface (the historical one-shot
//! `Detector` shim is gone): bind once, then drive per input, per fused NCHW
//! batch or as a stream (see [`engine`]).
//!
//! # Streaming extraction
//!
//! Extraction no longer materialises a full forward trace.  The engine (and
//! the offline [`Profiler`]) run through [`extract_path_streaming`] /
//! [`extract_paths_streaming_batch`], which plug a path extractor into the
//! forward pass itself via [`ptolemy_nn::TraceSink`]:
//!
//! * **forward programs** select each enabled layer's important neurons the
//!   moment the layer finishes — on a scoped worker thread *overlapped with
//!   the next layer's compute* on multi-core hosts — and release the
//!   activation immediately, holding O(largest layer) instead of O(network)
//!   activation bytes (Sec. III-C's compiler insight, now the serving hot
//!   path);
//! * **backward programs** retain only the boundaries the reverse walk reads
//!   (enabled weight layers' inputs/outputs plus data-dependently-routed
//!   pass-through inputs such as max-pool windows) and drop everything else
//!   in flight; early-termination programs never retain layers below their
//!   cut.
//!
//! Streamed extraction is **bit-for-bit identical** to the materialized
//! [`extract_path`] pipeline (same driver, same selection kernels, same
//! tensors — pinned by the `tests/streaming.rs` proptest suite), and
//! [`ActivationFootprint`] reports the measured peak resident activation
//! bytes against the materialized baseline.
//!
//! # Example
//!
//! ```
//! use ptolemy_core::{variants, DetectionEngine, Profiler};
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
//! let samples: Vec<(Tensor, usize)> = (0..20)
//!     .map(|i| {
//!         let class = i % 2;
//!         let value = if class == 0 { 1.0 } else { 0.0 };
//!         (Tensor::full(&[8], value), class)
//!     })
//!     .collect();
//! Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
//!
//! // Offline: profile class paths with the BwCu algorithm (θ = 0.5).
//! let program = variants::bw_cu(&net, 0.5)?;
//! let class_paths = Profiler::new(program.clone()).profile(&net, &samples)?;
//!
//! // Online: bind an engine once (fingerprint validated here), then serve.
//! let engine = DetectionEngine::builder(net, program, class_paths).build()?;
//! let (class, similarity) = engine.path_similarity(&samples[0].0)?;
//! assert!(class < 2);
//! assert!((0.0..=1.0).contains(&similarity));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod cost;
pub mod engine;
mod error;
mod extraction;
pub use ptolemy_obs::json;
mod parallel;
mod path;
mod profile;
mod program;
pub mod variants;

pub use bits::BitVec;
pub use cost::{software_cost, SoftwareCostReport};
pub use engine::{
    path_similarity, BackendEstimate, Detection, DetectionBackend, DetectionEngine,
    DetectionEngineBuilder, SoftwareBackend,
};
pub use error::CoreError;
pub use extraction::{
    extract_path, extract_path_streaming, extract_paths_streaming_batch, materialized_trace_bytes,
    path_layout, ActivationFootprint, StreamedBatchExtraction, StreamedExtraction,
};
pub use parallel::par_map;
pub use path::{ActivationPath, ClassPath, ClassPathSet, PathSegment};
pub use profile::{class_similarity_matrix, similarity_stats, Profiler, SimilarityStats};
pub use program::{
    DetectionProgram, DetectionProgramBuilder, Direction, ExtractionSpec, ThresholdKind,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
