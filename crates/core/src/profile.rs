//! Offline class-path profiling (the static half of Fig. 4).

use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::extraction::{extract_path_streaming, path_layout};
use crate::{ActivationPath, ClassPath, ClassPathSet, CoreError, DetectionProgram, Result};

/// Offline profiler: extracts activation paths for correctly-predicted training
/// samples and aggregates them into per-class canary paths.
///
/// Profiling parallelises over samples with scoped threads
/// ([`crate::parallel::par_map`]), each sample running through the streaming
/// extraction pipeline ([`extract_path_streaming`]) so no full trace is ever
/// materialized; aggregation itself is a cheap sequential OR.
#[derive(Debug, Clone)]
pub struct Profiler {
    program: DetectionProgram,
}

impl Profiler {
    /// Creates a profiler for a detection program.
    pub fn new(program: DetectionProgram) -> Self {
        Profiler { program }
    }

    /// The program this profiler extracts paths with.
    pub fn program(&self) -> &DetectionProgram {
        &self.program
    }

    /// Extracts the activation path of a single input, returning the predicted class
    /// alongside it.
    ///
    /// # Errors
    ///
    /// Propagates extraction and substrate errors.
    pub fn extract(&self, network: &Network, input: &Tensor) -> Result<(usize, ActivationPath)> {
        let streamed = extract_path_streaming(network, &self.program, input)?;
        Ok((streamed.predicted_class, streamed.path))
    }

    /// Profiles a training set into a [`ClassPathSet`].
    ///
    /// Only samples whose prediction matches their label contribute (the paper
    /// aggregates paths of *correctly predicted* inputs); incorrectly-predicted
    /// samples are skipped, not treated as errors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `samples` is empty or a label is out
    /// of range, and propagates extraction errors.
    pub fn profile(&self, network: &Network, samples: &[(Tensor, usize)]) -> Result<ClassPathSet> {
        if samples.is_empty() {
            return Err(CoreError::InvalidInput(
                "profiling requires at least one sample".into(),
            ));
        }
        if let Some((_, bad)) = samples
            .iter()
            .find(|(_, label)| *label >= network.num_classes())
        {
            return Err(CoreError::InvalidInput(format!(
                "label {bad} out of range for {} classes",
                network.num_classes()
            )));
        }
        let layout = path_layout(network, &self.program)?;

        let extracted: Vec<Result<Option<(usize, ActivationPath)>>> =
            crate::parallel::par_map(samples, |(input, label)| {
                // The nested variant: par_map already saturates the cores, so
                // per-sample overlap workers would only add spawn overhead.
                let streamed = crate::extraction::extract_path_streaming_nested(
                    network,
                    &self.program,
                    input,
                )?;
                if streamed.predicted_class != *label {
                    return Ok(None);
                }
                Ok(Some((*label, streamed.path)))
            });

        let mut class_paths: Vec<ClassPath> = (0..network.num_classes())
            .map(|c| ClassPath::empty(c, &layout))
            .collect();
        for item in extracted {
            if let Some((class, path)) = item? {
                class_paths[class].aggregate(&path)?;
            }
        }
        Ok(ClassPathSet::new(class_paths, self.program.fingerprint()))
    }
}

/// Pairwise Jaccard similarity between the canary paths of all classes — the
/// quantity plotted in Fig. 5 (and quoted for the large models in Sec. VII-H).
///
/// The diagonal is 1 by construction.
///
/// # Errors
///
/// Returns [`CoreError::IncompatiblePaths`] if the class paths do not share
/// structure (cannot happen for a set produced by [`Profiler::profile`]).
pub fn class_similarity_matrix(set: &ClassPathSet) -> Result<Vec<Vec<f32>>> {
    let n = set.num_classes();
    let mut matrix = vec![vec![0.0f32; n]; n];
    for (i, row) in matrix.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = if i == j {
                1.0
            } else {
                set.class_paths[i]
                    .path()
                    .jaccard(set.class_paths[j].path())?
            };
        }
    }
    Ok(matrix)
}

/// Summary statistics of the off-diagonal entries of a similarity matrix
/// (average, maximum and 90th percentile — the numbers the paper quotes in
/// Sec. III-A and Sec. VII-H).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityStats {
    /// Mean off-diagonal similarity.
    pub average: f32,
    /// Maximum off-diagonal similarity.
    pub max: f32,
    /// 90th-percentile off-diagonal similarity.
    pub p90: f32,
}

/// Computes [`SimilarityStats`] for a similarity matrix.
///
/// Returns zeros for matrices smaller than 2×2.
pub fn similarity_stats(matrix: &[Vec<f32>]) -> SimilarityStats {
    let mut off_diag: Vec<f32> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if i != j {
                off_diag.push(*v);
            }
        }
    }
    if off_diag.is_empty() {
        return SimilarityStats {
            average: 0.0,
            max: 0.0,
            p90: 0.0,
        };
    }
    off_diag.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let average = off_diag.iter().sum::<f32>() / off_diag.len() as f32;
    let max = off_diag.last().copied().unwrap_or(0.0); // non-empty checked above
    let p90 = off_diag[((off_diag.len() as f32 * 0.9) as usize).min(off_diag.len() - 1)];
    SimilarityStats { average, max, p90 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{variants, Direction, ThresholdKind};
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    fn trained_setup() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(5);
        let mut samples = Vec::new();
        for class in 0..3usize {
            for _ in 0..15 {
                let data: Vec<f32> = (0..8)
                    .map(|d| {
                        if d % 3 == class {
                            0.9 + 0.05 * rng.normal()
                        } else {
                            0.1 + 0.05 * rng.normal()
                        }
                    })
                    .collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 3, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn profiling_builds_distinct_class_paths() {
        let (net, samples) = trained_setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let set = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        assert_eq!(set.num_classes(), 3);
        assert_eq!(set.program_fingerprint, program.fingerprint());
        // Every class aggregated at least one path and has non-empty canary bits.
        for cp in &set.class_paths {
            assert!(cp.num_aggregated > 0, "class {} never aggregated", cp.class);
            assert!(cp.count_ones() > 0);
        }
        // Class paths are distinct (off-diagonal similarity < 1).
        let matrix = class_similarity_matrix(&set).unwrap();
        let stats = similarity_stats(&matrix);
        assert!(stats.average < 0.99);
        assert!(stats.max <= 1.0);
        assert!(stats.p90 >= stats.average || stats.p90 <= 1.0);
        for (i, row) in matrix.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn benign_inputs_resemble_their_class_path() {
        let (net, samples) = trained_setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let profiler = Profiler::new(program);
        let set = profiler.profile(&net, &samples).unwrap();
        // A benign training sample's own path should be almost entirely contained in
        // its class path (it was OR-ed into it).
        let (predicted, path) = profiler.extract(&net, &samples[0].0).unwrap();
        let similarity = path.similarity(set.class_path(predicted).unwrap()).unwrap();
        assert!(similarity > 0.9, "similarity {similarity}");
    }

    #[test]
    fn profiling_rejects_bad_inputs() {
        let (net, _) = trained_setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let profiler = Profiler::new(program);
        assert!(profiler.profile(&net, &[]).is_err());
        let bad = vec![(Tensor::zeros(&[8]), 99usize)];
        assert!(profiler.profile(&net, &bad).is_err());
        assert!(profiler.program().num_weight_layers() > 0);
    }

    #[test]
    fn forward_profiles_work_too() {
        let (net, samples) = trained_setup();
        let program = crate::DetectionProgram::builder(Direction::Forward, 3)
            .all_layers(ThresholdKind::Absolute { phi: 0.3 })
            .build()
            .unwrap();
        let set = Profiler::new(program).profile(&net, &samples).unwrap();
        assert!(set.class_paths.iter().any(|cp| cp.count_ones() > 0));
    }

    #[test]
    fn similarity_stats_of_trivial_matrix() {
        let stats = similarity_stats(&[vec![1.0]]);
        assert_eq!(stats.average, 0.0);
        let stats = similarity_stats(&[vec![1.0, 0.2], vec![0.4, 1.0]]);
        assert!((stats.average - 0.3).abs() < 1e-6);
        assert!((stats.max - 0.4).abs() < 1e-6);
    }
}
