//! Canned detection-program variants (paper Sec. VI-B):
//!
//! * [`bw_cu`] — backward extraction, cumulative thresholds (most accurate, most
//!   expensive);
//! * [`bw_ab`] — backward extraction, absolute thresholds;
//! * [`fw_ab`] — forward extraction, absolute thresholds (cheapest: extraction
//!   overlaps inference and needs no sorting);
//! * [`fw_cu`] — forward extraction, cumulative thresholds (used by the Fig. 6
//!   example for the last layer);
//! * [`hybrid`] — absolute thresholds on the first half of the network, cumulative
//!   on the second half (backward direction);
//! * [`bw_cu_early_termination`] / [`fw_ab_late_start`] — the selective-extraction
//!   sweeps of Sec. VII-F.

use ptolemy_nn::Network;

use crate::{DetectionProgram, Direction, Result, ThresholdKind};

fn num_weight_layers(network: &Network) -> usize {
    network.weight_layer_indices().len()
}

/// Backward extraction with cumulative threshold θ on every layer (**BwCu**).
///
/// # Errors
///
/// Returns an error if θ is outside `[0, 1]` or the network has no weight layers.
pub fn bw_cu(network: &Network, theta: f32) -> Result<DetectionProgram> {
    DetectionProgram::builder(Direction::Backward, num_weight_layers(network))
        .all_layers(ThresholdKind::Cumulative { theta })
        .build()
}

/// Backward extraction with absolute threshold φ on every layer (**BwAb**).
///
/// # Errors
///
/// Returns an error if φ is outside `[0, 1]` or the network has no weight layers.
pub fn bw_ab(network: &Network, phi: f32) -> Result<DetectionProgram> {
    DetectionProgram::builder(Direction::Backward, num_weight_layers(network))
        .all_layers(ThresholdKind::Absolute { phi })
        .build()
}

/// Forward extraction with absolute threshold φ on every layer (**FwAb**).
///
/// # Errors
///
/// Returns an error if φ is outside `[0, 1]` or the network has no weight layers.
pub fn fw_ab(network: &Network, phi: f32) -> Result<DetectionProgram> {
    DetectionProgram::builder(Direction::Forward, num_weight_layers(network))
        .all_layers(ThresholdKind::Absolute { phi })
        .build()
}

/// Forward extraction with cumulative threshold θ on every layer (**FwCu**).
///
/// # Errors
///
/// Returns an error if θ is outside `[0, 1]` or the network has no weight layers.
pub fn fw_cu(network: &Network, theta: f32) -> Result<DetectionProgram> {
    DetectionProgram::builder(Direction::Forward, num_weight_layers(network))
        .all_layers(ThresholdKind::Cumulative { theta })
        .build()
}

/// Hybrid variant (**Hybrid**): absolute threshold φ on the first half of the weight
/// layers, cumulative threshold θ on the second half, backward direction.
///
/// # Errors
///
/// Returns an error if either threshold is outside `[0, 1]` or the network has no
/// weight layers.
pub fn hybrid(network: &Network, phi: f32, theta: f32) -> Result<DetectionProgram> {
    let n = num_weight_layers(network);
    let mut builder = DetectionProgram::builder(Direction::Backward, n)
        .all_layers(ThresholdKind::Cumulative { theta });
    for ordinal in 0..n / 2 {
        builder = builder.layer(ordinal, ThresholdKind::Absolute { phi })?;
    }
    builder.build()
}

/// BwCu restricted to the last `layers_extracted` weight layers — the
/// early-termination sweep of Fig. 16 (terminating after layer *k* of an *N*-layer
/// network is the same as extracting only the last `N − k + 1` layers).
///
/// # Errors
///
/// Returns an error if `layers_extracted` is zero or exceeds the number of weight
/// layers.
pub fn bw_cu_early_termination(
    network: &Network,
    theta: f32,
    layers_extracted: usize,
) -> Result<DetectionProgram> {
    let n = num_weight_layers(network);
    if layers_extracted == 0 || layers_extracted > n {
        return Err(crate::CoreError::InvalidProgram(format!(
            "cannot extract {layers_extracted} of {n} weight layers"
        )));
    }
    DetectionProgram::builder(Direction::Backward, n)
        .all_layers(ThresholdKind::Cumulative { theta })
        .disable_before(n - layers_extracted)
        .build()
}

/// FwAb starting extraction at weight-layer ordinal `start_layer` — the late-start
/// sweep of Fig. 17.
///
/// # Errors
///
/// Returns an error if `start_layer` is not a valid weight-layer ordinal.
pub fn fw_ab_late_start(
    network: &Network,
    phi: f32,
    start_layer: usize,
) -> Result<DetectionProgram> {
    let n = num_weight_layers(network);
    if start_layer >= n {
        return Err(crate::CoreError::InvalidProgram(format!(
            "start layer {start_layer} out of range ({n} weight layers)"
        )));
    }
    DetectionProgram::builder(Direction::Forward, n)
        .all_layers(ThresholdKind::Absolute { phi })
        .disable_before(start_layer)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    fn net() -> Network {
        zoo::conv_net(10, &mut Rng64::new(0)).unwrap()
    }

    #[test]
    fn canned_variants_cover_all_layers() {
        let net = net();
        let n = net.weight_layer_indices().len();
        for program in [
            bw_cu(&net, 0.5).unwrap(),
            bw_ab(&net, 0.3).unwrap(),
            fw_ab(&net, 0.3).unwrap(),
            fw_cu(&net, 0.5).unwrap(),
        ] {
            assert_eq!(program.num_weight_layers(), n);
            assert_eq!(program.enabled_layers().len(), n);
        }
        assert_eq!(bw_cu(&net, 0.5).unwrap().direction(), Direction::Backward);
        assert_eq!(fw_ab(&net, 0.3).unwrap().direction(), Direction::Forward);
        assert!(bw_cu(&net, 1.5).is_err());
    }

    #[test]
    fn hybrid_mixes_threshold_kinds() {
        let net = net();
        let program = hybrid(&net, 0.3, 0.5).unwrap();
        let n = program.num_weight_layers();
        let cumulative: Vec<bool> = program
            .specs()
            .iter()
            .map(|s| s.threshold.is_cumulative())
            .collect();
        assert!(cumulative[..n / 2].iter().all(|c| !c));
        assert!(cumulative[n / 2..].iter().all(|c| *c));
        assert_eq!(program.direction(), Direction::Backward);
    }

    #[test]
    fn early_termination_and_late_start() {
        let net = net();
        let n = net.weight_layer_indices().len();
        let program = bw_cu_early_termination(&net, 0.5, 3).unwrap();
        assert_eq!(program.enabled_layers(), vec![n - 3, n - 2, n - 1]);
        let program = fw_ab_late_start(&net, 0.3, n - 2).unwrap();
        assert_eq!(program.enabled_layers(), vec![n - 2, n - 1]);
        assert!(bw_cu_early_termination(&net, 0.5, 0).is_err());
        assert!(bw_cu_early_termination(&net, 0.5, n + 1).is_err());
        assert!(fw_ab_late_start(&net, 0.3, n).is_err());
    }
}
