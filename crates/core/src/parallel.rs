//! Std-only data parallelism for profiling and batched detection.
//!
//! The workspace builds without crates.io access, so instead of `rayon` the
//! profiler and the [`crate::engine::DetectionEngine`] batch path fan work out
//! with [`std::thread::scope`].  Inputs are split into one contiguous chunk per
//! available core; order is preserved, so `par_map(xs, f)[i] == f(&xs[i])`
//! exactly — the property the engine's batch/single parity guarantee rests on.

use std::thread;

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most [`ptolemy_nn::available_parallelism`] scoped threads
/// (falling back to a serial map for empty or single-element inputs) — the
/// *cached* core count: the raw `std::thread::available_parallelism` lookup
/// re-reads cgroup state on Linux (~10µs per call), far too slow to pay on
/// every batched-extraction fan-out, so the whole workspace shares one cached
/// read.  Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = ptolemy_nn::available_parallelism().min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<U>> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mapped) => chunks.push(mapped),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = par_map(&items, |x| x * 2);
        assert_eq!(doubled.len(), items.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert!(par_map(&[] as &[usize], |x| *x).is_empty());
        assert_eq!(par_map(&[7usize], |x| x + 1), vec![8]);
    }

    #[test]
    fn cached_parallelism_is_stable_across_threads() {
        // The cached count must agree with the live std lookup (the cache can
        // only go stale if the cgroup quota changes mid-process, which the
        // dedup deliberately trades away) and stay identical from every
        // thread that reads it concurrently.
        let cores = ptolemy_nn::available_parallelism();
        let live = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(cores, live);
        let seen = par_map(&[(); 64], |()| ptolemy_nn::available_parallelism());
        assert!(seen.iter().all(|c| *c == cores));
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<f32> = (0..257).map(|i| i as f32 * 0.37).collect();
        let serial: Vec<f32> = items.iter().map(|x| x.sin() * x.cos()).collect();
        let parallel = par_map(&items, |x| x.sin() * x.cos());
        assert_eq!(serial, parallel);
    }
}
