//! Software-side cost accounting for a detection program (paper Sec. III-B).
//!
//! This module quantifies what a *pure software* implementation of path extraction
//! would have to do — how many partial sums must be materialised, how many
//! sort/compare/accumulate operations run, how much extra memory traffic that
//! implies — relative to the inference itself.  It reproduces the observations the
//! paper uses to motivate the hardware: cumulative thresholds force every partial
//! sum to memory (9–420× memory overhead at full scale) while absolute thresholds
//! only store single-bit masks, and sorting dominates the compute overhead.
//!
//! The cycle-accurate hardware costs live in `ptolemy-accel`; this report is the
//! algorithm-level counterpart used by the Sec. III-B cost-analysis experiment.

use ptolemy_nn::{LayerKind, Network};

use crate::extraction::path_layout;
use crate::{DetectionProgram, Direction, Result};

/// Operation and memory counts of a software implementation of one detection pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SoftwareCostReport {
    /// Multiply-accumulate operations of the inference itself.
    pub inference_macs: u64,
    /// Partial sums that must be written to memory (cumulative-threshold layers).
    pub partial_sums_stored: u64,
    /// Single-bit masks that must be written to memory (absolute-threshold layers).
    pub mask_bits_stored: u64,
    /// Elements passed through sorting networks during extraction.
    pub sort_elements: u64,
    /// Comparison operations (absolute thresholding and sorting comparisons).
    pub compare_ops: u64,
    /// Accumulation operations (cumulative thresholding).
    pub accumulate_ops: u64,
    /// Bytes of extra memory traffic introduced by detection.
    pub extra_memory_bytes: u64,
    /// Bytes of activation traffic the inference itself produces (for comparison).
    pub inference_activation_bytes: u64,
}

impl SoftwareCostReport {
    /// Scales every count by `factor` — the cost of running the same program
    /// over a fused batch of `factor` inputs (detection work is per input even
    /// when the forward pass executes as one batched im2col/matmul, so every
    /// op and byte count is linear in the batch size).  The overhead *ratios*
    /// are invariant under scaling.
    pub fn scaled(&self, factor: u64) -> SoftwareCostReport {
        SoftwareCostReport {
            inference_macs: self.inference_macs * factor,
            partial_sums_stored: self.partial_sums_stored * factor,
            mask_bits_stored: self.mask_bits_stored * factor,
            sort_elements: self.sort_elements * factor,
            compare_ops: self.compare_ops * factor,
            accumulate_ops: self.accumulate_ops * factor,
            extra_memory_bytes: self.extra_memory_bytes * factor,
            inference_activation_bytes: self.inference_activation_bytes * factor,
        }
    }

    /// Ratio of extra detection memory traffic to inference activation traffic.
    pub fn memory_overhead_ratio(&self) -> f64 {
        if self.inference_activation_bytes == 0 {
            0.0
        } else {
            self.extra_memory_bytes as f64 / self.inference_activation_bytes as f64
        }
    }

    /// Ratio of extraction compute (sorts, compares, accumulates) to inference MACs.
    pub fn compute_overhead_ratio(&self) -> f64 {
        if self.inference_macs == 0 {
            0.0
        } else {
            (self.sort_elements + self.compare_ops + self.accumulate_ops) as f64
                / self.inference_macs as f64
        }
    }
}

/// Estimates the software cost of running `program` on `network`, assuming a
/// fraction `important_density` of each feature map is important (the paper reports
/// this stays below ~5%; pass a measured [`crate::ActivationPath::density`] for an
/// input-specific estimate).
///
/// # Errors
///
/// Returns [`crate::CoreError::InvalidProgram`] if the program does not match the
/// network.
pub fn software_cost(
    network: &Network,
    program: &DetectionProgram,
    important_density: f32,
) -> Result<SoftwareCostReport> {
    let density = important_density.clamp(0.0, 1.0) as f64;
    // Validate compatibility up front.
    let _ = path_layout(network, program)?;
    let weight_layers = network.weight_layer_indices();

    let mut report = SoftwareCostReport {
        inference_macs: network.total_macs(),
        ..SoftwareCostReport::default()
    };
    for layer in network.layers() {
        report.inference_activation_bytes += 4 * layer.output_len() as u64;
    }

    for (ordinal, &layer_idx) in weight_layers.iter().enumerate() {
        let spec = program.specs()[ordinal];
        if !spec.enabled {
            continue;
        }
        let layer = network.layer(layer_idx)?;
        let kind = layer.kind();
        let layer_macs = kind.macs();
        let out_len = layer.output_len() as u64;
        // Average receptive-field size = partial sums per output neuron.
        let rf = layer_macs.checked_div(out_len).unwrap_or(0);
        // How many output neurons drive extraction at this layer.
        let important_outputs = match program.direction() {
            Direction::Backward => ((out_len as f64) * density).ceil() as u64,
            Direction::Forward => out_len,
        }
        .max(1);

        if spec.threshold.is_cumulative() {
            // Every partial sum produced during inference must be stored, then the
            // receptive fields of important neurons are sorted and accumulated.
            report.partial_sums_stored += layer_macs;
            let sorted = important_outputs * rf;
            report.sort_elements += sorted;
            // A sorting network performs ~n log2 n comparisons.
            let log = (rf.max(2) as f64).log2().ceil() as u64;
            report.compare_ops += sorted * log;
            report.accumulate_ops += sorted;
            report.extra_memory_bytes += 4 * layer_macs + 4 * sorted;
        } else {
            // Absolute thresholds: one compare per partial sum, one mask bit stored.
            report.mask_bits_stored += layer_macs;
            report.compare_ops += layer_macs;
            report.extra_memory_bytes += layer_macs.div_ceil(8);
            match kind {
                LayerKind::Dense { .. } | LayerKind::Conv2d { .. } | LayerKind::Residual { .. } => {
                }
                _ => {}
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    #[test]
    fn cumulative_costs_dominate_absolute_costs() {
        let net = zoo::conv_net(10, &mut Rng64::new(0)).unwrap();
        let bwcu = software_cost(&net, &variants::bw_cu(&net, 0.5).unwrap(), 0.05).unwrap();
        let bwab = software_cost(&net, &variants::bw_ab(&net, 0.3).unwrap(), 0.05).unwrap();
        let fwab = software_cost(&net, &variants::fw_ab(&net, 0.3).unwrap(), 0.05).unwrap();

        // BwCu stores every partial sum; BwAb/FwAb store only mask bits.
        assert!(bwcu.partial_sums_stored > 0);
        assert_eq!(bwab.partial_sums_stored, 0);
        assert!(bwab.mask_bits_stored > 0);
        assert!(bwcu.extra_memory_bytes > bwab.extra_memory_bytes);
        assert!(bwcu.memory_overhead_ratio() > bwab.memory_overhead_ratio());
        // The paper's observation: storing partial sums is a multiple of the
        // activation traffic itself.
        assert!(bwcu.memory_overhead_ratio() > 1.0);
        // Absolute-threshold masks are a tiny fraction of it.
        assert!(fwab.memory_overhead_ratio() < 1.0);
        // Sorting work exists only for cumulative thresholds.
        assert!(bwcu.sort_elements > 0);
        assert_eq!(bwab.sort_elements, 0);
        assert!(bwcu.compute_overhead_ratio() > 0.0);
    }

    #[test]
    fn early_termination_reduces_cost() {
        let net = zoo::conv_net(10, &mut Rng64::new(1)).unwrap();
        let full = software_cost(&net, &variants::bw_cu(&net, 0.5).unwrap(), 0.05).unwrap();
        let partial = software_cost(
            &net,
            &variants::bw_cu_early_termination(&net, 0.5, 2).unwrap(),
            0.05,
        )
        .unwrap();
        assert!(partial.partial_sums_stored < full.partial_sums_stored);
        assert!(partial.extra_memory_bytes < full.extra_memory_bytes);
        assert_eq!(partial.inference_macs, full.inference_macs);
    }

    #[test]
    fn density_scales_backward_sorting_work() {
        let net = zoo::conv_net(10, &mut Rng64::new(2)).unwrap();
        let sparse = software_cost(&net, &variants::bw_cu(&net, 0.5).unwrap(), 0.01).unwrap();
        let dense = software_cost(&net, &variants::bw_cu(&net, 0.5).unwrap(), 0.5).unwrap();
        assert!(dense.sort_elements > sparse.sort_elements);
        assert_eq!(dense.partial_sums_stored, sparse.partial_sums_stored);
    }

    #[test]
    fn scaled_report_is_linear_and_ratio_invariant() {
        let net = zoo::conv_net(10, &mut Rng64::new(4)).unwrap();
        let one = software_cost(&net, &variants::bw_cu(&net, 0.5).unwrap(), 0.05).unwrap();
        let eight = one.scaled(8);
        assert_eq!(eight.inference_macs, 8 * one.inference_macs);
        assert_eq!(eight.sort_elements, 8 * one.sort_elements);
        assert_eq!(eight.extra_memory_bytes, 8 * one.extra_memory_bytes);
        assert_eq!(
            eight.inference_activation_bytes,
            8 * one.inference_activation_bytes
        );
        // Ratios are invariant under batch scaling.
        assert!((eight.memory_overhead_ratio() - one.memory_overhead_ratio()).abs() < 1e-12);
        assert!((eight.compute_overhead_ratio() - one.compute_overhead_ratio()).abs() < 1e-12);
        // Scaling by 1 is the identity.
        assert_eq!(one.scaled(1), one);
    }

    #[test]
    fn mismatched_program_is_rejected() {
        let net = zoo::conv_net(10, &mut Rng64::new(3)).unwrap();
        let other = zoo::lenet(3, 10, &mut Rng64::new(3)).unwrap();
        let program = variants::bw_cu(&other, 0.5).unwrap();
        assert!(software_cost(&net, &program, 0.05).is_err());
    }
}
