//! A compact bit vector used to represent activation-path masks.
//!
//! The paper represents a path as a bitmask where bit `m(i, j)` records whether
//! neuron `j` of layer `i` is important (Sec. III-A).  [`BitVec`] is the per-layer
//! storage for those masks, sized exactly like the hardware's mask SRAM: one bit per
//! feature-map element.

/// Fixed-length bit vector with the operations path construction needs
/// (set/test, population count, AND-count, OR-assign).
///
/// # Example
///
/// ```
/// use ptolemy_core::BitVec;
///
/// let mut bits = BitVec::new(100);
/// bits.set(3);
/// bits.set(64);
/// assert_eq!(bits.count_ones(), 2);
/// assert!(bits.get(64));
/// assert!(!bits.get(65));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`; path construction always indexes within the
    /// feature-map size it was built for.
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn clear(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// Tests bit `index` (out-of-range indices read as `false`).
    pub fn get(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set in both `self` and `other` (the `‖P & Pc‖₁` term of the
    /// paper's similarity metric).  Extra bits in the longer vector are ignored.
    pub fn and_count(&self, other: &BitVec) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of bits set in `self` or `other`.
    pub fn or_count(&self, other: &BitVec) -> usize {
        let common: usize = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum();
        // Account for tail words present in only one of the vectors.
        let tail_self: usize = self.words[other.words.len().min(self.words.len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let tail_other: usize = other.words[self.words.len().min(other.words.len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        common + tail_self + tail_other
    }

    /// ORs `other` into `self` (class-path aggregation).  Lengths must match.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; class paths are always aggregated from paths of
    /// the same program and network, which guarantees matching lengths.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "cannot OR bit vectors of different lengths"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The raw 64-bit words backing the mask (for serialisation).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bit vector from its raw words (the inverse of [`BitVec::words`]).
    ///
    /// Returns `None` if the word count does not match `len` or a bit beyond `len`
    /// is set.
    pub(crate) fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if let Some(last) = words.last() {
            let tail_bits = len % 64;
            if tail_bits != 0 && *last >> tail_bits != 0 {
                return None;
            }
        }
        Some(BitVec { words, len })
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |i| self.get(*i))
    }

    /// Fraction of set bits (0.0 for an empty vector).
    pub fn density(&self) -> f32 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f32 / self.len as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitVec::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert_eq!(b.count_ones(), 4);
        assert!(b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert!(!b.get(1000));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::new(10).set(10);
    }

    #[test]
    fn and_or_counts() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        for i in [1usize, 5, 70, 99] {
            a.set(i);
        }
        for i in [5usize, 70, 80] {
            b.set(i);
        }
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 5);
        assert_eq!(b.and_count(&a), 2);
    }

    #[test]
    fn or_assign_aggregates() {
        let mut a = BitVec::new(70);
        let mut b = BitVec::new(70);
        a.set(1);
        b.set(65);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(65));
        assert_eq!(a.count_ones(), 2);
        // Aggregation is monotone: OR-ing again changes nothing.
        let before = a.clone();
        a.or_assign(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn iter_ones_and_density() {
        let mut a = BitVec::new(10);
        a.set(2);
        a.set(7);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2, 7]);
        assert!((a.density() - 0.2).abs() < 1e-6);
        assert_eq!(BitVec::new(0).density(), 0.0);
        assert!(BitVec::new(0).is_empty());
    }
}
