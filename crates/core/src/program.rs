//! The detection-program description: the paper's programming interface (Sec. III-D).
//!
//! A [`DetectionProgram`] captures the three algorithmic knobs:
//!
//! * **extraction direction** — backward (class-conditioned, more accurate) or
//!   forward (overlappable with inference, cheaper), applied network-wide because
//!   the paper forbids mixing directions inside one network;
//! * **thresholding mechanism** — cumulative (θ, needs sorting and accumulation of
//!   partial sums) or absolute (φ, a single compare per partial sum), chosen per
//!   layer;
//! * **selective extraction** — individual layers can be disabled, giving
//!   early-termination (backward) or late-start (forward).
//!
//! The same program object drives offline profiling, online detection, the compiler
//! and the hardware cost model, which guarantees the offline/online extraction
//! methods match (paper Fig. 4).

use crate::{CoreError, Result};

/// Extraction direction (paper Sec. III-C, "Hiding Detection Cost").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Start from the predicted class in the last layer and walk towards the input.
    Backward,
    /// Extract each layer's important neurons as soon as the layer finishes.
    Forward,
}

/// Thresholding mechanism (paper Sec. III-C, "Reducing Detection Cost").
///
/// Both thresholds are expressed relative to the layer's own scale so that a single
/// value works across layers without per-layer calibration: the cumulative threshold
/// θ is the fraction of the target neuron's value that the selected partial sums
/// must reach (exactly as in the paper), and the absolute threshold φ selects
/// partial sums / activations that exceed `φ ×` the target's magnitude (the paper
/// uses raw per-layer constants; a relative constant is the calibration-free
/// equivalent and is noted as a deviation in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdKind {
    /// Select the minimal set of contributors whose cumulative partial sums reach
    /// `theta ×` the target value.  Requires sorting.
    Cumulative {
        /// Coverage fraction θ ∈ [0, 1].
        theta: f32,
    },
    /// Select every contributor whose partial sum exceeds `phi ×` the target
    /// magnitude.  A single comparison per partial sum.
    Absolute {
        /// Relative threshold φ ∈ [0, 1].
        phi: f32,
    },
}

impl ThresholdKind {
    fn validate(&self) -> Result<()> {
        let value = match self {
            ThresholdKind::Cumulative { theta } => *theta,
            ThresholdKind::Absolute { phi } => *phi,
        };
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            return Err(CoreError::InvalidProgram(format!(
                "threshold {value} outside [0, 1]"
            )));
        }
        Ok(())
    }

    /// `true` for cumulative thresholds (which require sort + accumulate hardware).
    pub fn is_cumulative(&self) -> bool {
        matches!(self, ThresholdKind::Cumulative { .. })
    }
}

/// Per-layer extraction directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionSpec {
    /// Whether important neurons are extracted from this layer at all.
    pub enabled: bool,
    /// Thresholding mechanism used when enabled.
    pub threshold: ThresholdKind,
}

impl ExtractionSpec {
    /// An enabled spec with the given threshold.
    pub fn new(threshold: ThresholdKind) -> Self {
        ExtractionSpec {
            enabled: true,
            threshold,
        }
    }

    /// A disabled spec (the layer is skipped by selective extraction).
    pub fn disabled() -> Self {
        ExtractionSpec {
            enabled: false,
            threshold: ThresholdKind::Absolute { phi: 0.0 },
        }
    }
}

/// A complete detection program: one [`ExtractionSpec`] per weight layer plus the
/// network-wide extraction direction.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionProgram {
    direction: Direction,
    specs: Vec<ExtractionSpec>,
}

impl DetectionProgram {
    /// Starts building a program for a network with `num_weight_layers` extraction
    /// units.  All layers start enabled with a cumulative threshold of 0.5.
    pub fn builder(direction: Direction, num_weight_layers: usize) -> DetectionProgramBuilder {
        DetectionProgramBuilder {
            direction,
            specs: vec![
                ExtractionSpec::new(ThresholdKind::Cumulative { theta: 0.5 });
                num_weight_layers
            ],
        }
    }

    /// The network-wide extraction direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Per-weight-layer extraction directives (ordinal order, first weight layer
    /// first).
    pub fn specs(&self) -> &[ExtractionSpec] {
        &self.specs
    }

    /// Number of weight layers this program describes.
    pub fn num_weight_layers(&self) -> usize {
        self.specs.len()
    }

    /// Ordinals of the weight layers with extraction enabled.
    pub fn enabled_layers(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.enabled)
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` if any enabled layer uses a cumulative threshold (this is what makes
    /// partial-sum sorting hardware necessary).
    pub fn uses_cumulative_thresholds(&self) -> bool {
        self.specs
            .iter()
            .any(|s| s.enabled && s.threshold.is_cumulative())
    }

    /// Short string identifying the program; stored with profiled class paths so the
    /// online phase can verify it uses the same extraction method.
    pub fn fingerprint(&self) -> String {
        let dir = match self.direction {
            Direction::Backward => "bw",
            Direction::Forward => "fw",
        };
        let layers: Vec<String> = self
            .specs
            .iter()
            .map(|s| {
                if !s.enabled {
                    "off".to_string()
                } else {
                    match s.threshold {
                        ThresholdKind::Cumulative { theta } => format!("cu{theta:.2}"),
                        ThresholdKind::Absolute { phi } => format!("ab{phi:.2}"),
                    }
                }
            })
            .collect();
        format!("{dir}|{}", layers.join(","))
    }
}

/// Builder for [`DetectionProgram`] (the Fig. 6 programming interface).
///
/// # Example
///
/// ```
/// use ptolemy_core::{DetectionProgram, Direction, ThresholdKind};
///
/// # fn main() -> Result<(), ptolemy_core::CoreError> {
/// // Fig. 6: forward extraction, only the last three layers, the last of which
/// // uses a cumulative threshold.
/// let program = DetectionProgram::builder(Direction::Forward, 8)
///     .all_layers(ThresholdKind::Absolute { phi: 0.3 })
///     .disable_before(5)
///     .layer(7, ThresholdKind::Cumulative { theta: 0.5 })?
///     .build()?;
/// assert_eq!(program.enabled_layers(), vec![5, 6, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DetectionProgramBuilder {
    direction: Direction,
    specs: Vec<ExtractionSpec>,
}

impl DetectionProgramBuilder {
    /// Sets every layer to the given threshold (enabled).
    pub fn all_layers(mut self, threshold: ThresholdKind) -> Self {
        for spec in &mut self.specs {
            *spec = ExtractionSpec::new(threshold);
        }
        self
    }

    /// Sets the threshold of one layer (by weight-layer ordinal), enabling it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] if the ordinal is out of range.
    pub fn layer(mut self, ordinal: usize, threshold: ThresholdKind) -> Result<Self> {
        let len = self.specs.len();
        let spec = self.specs.get_mut(ordinal).ok_or_else(|| {
            CoreError::InvalidProgram(format!(
                "layer ordinal {ordinal} out of range ({len} weight layers)"
            ))
        })?;
        *spec = ExtractionSpec::new(threshold);
        Ok(self)
    }

    /// Disables extraction for one layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] if the ordinal is out of range.
    pub fn disable_layer(mut self, ordinal: usize) -> Result<Self> {
        let len = self.specs.len();
        let spec = self.specs.get_mut(ordinal).ok_or_else(|| {
            CoreError::InvalidProgram(format!(
                "layer ordinal {ordinal} out of range ({len} weight layers)"
            ))
        })?;
        *spec = ExtractionSpec::disabled();
        Ok(self)
    }

    /// Disables every layer before `ordinal` ("late-start" in forward extraction).
    pub fn disable_before(mut self, ordinal: usize) -> Self {
        let limit = ordinal.min(self.specs.len());
        for spec in self.specs.iter_mut().take(limit) {
            *spec = ExtractionSpec::disabled();
        }
        self
    }

    /// Disables every layer strictly after `ordinal` ("early-termination" counts
    /// backwards from the last layer in the paper; disabling a prefix of the
    /// backward walk is equivalent to stopping the walk at `ordinal`).
    pub fn disable_after(mut self, ordinal: usize) -> Self {
        for spec in self.specs.iter_mut().skip(ordinal.saturating_add(1)) {
            *spec = ExtractionSpec::disabled();
        }
        self
    }

    /// Finalises and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] if no layer is enabled, the program has
    /// zero layers, or any threshold is outside `[0, 1]`.
    pub fn build(self) -> Result<DetectionProgram> {
        if self.specs.is_empty() {
            return Err(CoreError::InvalidProgram(
                "program must cover at least one weight layer".into(),
            ));
        }
        if !self.specs.iter().any(|s| s.enabled) {
            return Err(CoreError::InvalidProgram(
                "at least one layer must have extraction enabled".into(),
            ));
        }
        for spec in &self.specs {
            if spec.enabled {
                spec.threshold.validate()?;
            }
        }
        Ok(DetectionProgram {
            direction: self.direction,
            specs: self.specs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_fig6_style_program() {
        let program = DetectionProgram::builder(Direction::Forward, 8)
            .all_layers(ThresholdKind::Absolute { phi: 0.3 })
            .disable_before(5)
            .layer(7, ThresholdKind::Cumulative { theta: 0.5 })
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(program.direction(), Direction::Forward);
        assert_eq!(program.enabled_layers(), vec![5, 6, 7]);
        assert!(program.uses_cumulative_thresholds());
        assert_eq!(program.num_weight_layers(), 8);
        assert!(program.fingerprint().starts_with("fw|"));
        assert!(program.fingerprint().contains("off"));
    }

    #[test]
    fn disable_after_models_early_termination() {
        let program = DetectionProgram::builder(Direction::Backward, 8)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .disable_after(5)
            .build()
            .unwrap();
        assert_eq!(program.enabled_layers(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn invalid_programs_are_rejected() {
        assert!(DetectionProgram::builder(Direction::Backward, 0)
            .build()
            .is_err());
        assert!(DetectionProgram::builder(Direction::Backward, 3)
            .disable_before(3)
            .build()
            .is_err());
        assert!(DetectionProgram::builder(Direction::Backward, 3)
            .all_layers(ThresholdKind::Cumulative { theta: 1.5 })
            .build()
            .is_err());
        assert!(DetectionProgram::builder(Direction::Backward, 3)
            .all_layers(ThresholdKind::Absolute { phi: -0.1 })
            .build()
            .is_err());
        assert!(DetectionProgram::builder(Direction::Backward, 3)
            .layer(5, ThresholdKind::Absolute { phi: 0.1 })
            .is_err());
        assert!(DetectionProgram::builder(Direction::Backward, 3)
            .disable_layer(9)
            .is_err());
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let a = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        let b = DetectionProgram::builder(Direction::Backward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.9 })
            .build()
            .unwrap();
        let c = DetectionProgram::builder(Direction::Forward, 2)
            .all_layers(ThresholdKind::Cumulative { theta: 0.5 })
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(!a.uses_cumulative_thresholds() || a.uses_cumulative_thresholds());
    }

    #[test]
    fn threshold_kind_properties() {
        assert!(ThresholdKind::Cumulative { theta: 0.5 }.is_cumulative());
        assert!(!ThresholdKind::Absolute { phi: 0.5 }.is_cumulative());
        assert!(!ExtractionSpec::disabled().enabled);
    }
}
