//! Online adversarial-sample detection (the dynamic half of Fig. 4).
//!
//! [`Detector`] is the original one-shot API and survives as a thin shim over
//! the serving-oriented [`crate::engine`] module; new code should bind a
//! [`crate::DetectionEngine`] once and drive it in batches instead.

use ptolemy_forest::{ForestConfig, RandomForest};
use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::engine::DEFAULT_THRESHOLD;
use crate::{ClassPathSet, CoreError, DetectionProgram, Result};

/// Result of detecting one input at inference time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Final verdict of the random-forest classifier.
    pub is_adversary: bool,
    /// Adversarial probability reported by the classifier (higher = more suspicious).
    pub score: f32,
    /// Path similarity `S` between the input's activation path and the canary path
    /// of its predicted class.
    pub similarity: f32,
    /// The class the DNN predicted for the input.
    pub predicted_class: usize,
}

/// The online detector: extraction program + canary class paths + random forest.
#[derive(Debug, Clone)]
pub struct Detector {
    program: DetectionProgram,
    class_paths: ClassPathSet,
    forest: RandomForest,
}

#[allow(deprecated)]
impl Detector {
    /// Computes the `(predicted class, path similarity)` pair for an input — the
    /// feature the classifier consumes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] if the program and class paths were not
    /// produced together, and propagates extraction errors.
    #[deprecated(since = "0.2.0", note = "use `ptolemy_core::path_similarity` instead")]
    pub fn path_similarity(
        network: &Network,
        program: &DetectionProgram,
        class_paths: &ClassPathSet,
        input: &Tensor,
    ) -> Result<(usize, f32)> {
        crate::engine::path_similarity(network, program, class_paths, input)
    }

    /// Fits the detection classifier from benign and adversarial calibration inputs.
    ///
    /// The classifier sees exactly one feature per input — the path similarity `S` —
    /// matching the paper's lightweight classification module (Sec. III-B).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if either calibration set is empty, and
    /// propagates extraction/classifier errors.
    #[deprecated(
        since = "0.2.0",
        note = "use `DetectionEngine::builder(..).calibrate(..).build()` instead"
    )]
    pub fn fit(
        network: &Network,
        program: DetectionProgram,
        class_paths: ClassPathSet,
        benign: &[Tensor],
        adversarial: &[Tensor],
        forest_config: &ForestConfig,
    ) -> Result<Self> {
        if benign.is_empty() || adversarial.is_empty() {
            return Err(CoreError::InvalidInput(
                "fitting the detector requires both benign and adversarial calibration inputs"
                    .into(),
            ));
        }
        let mut features = Vec::with_capacity(benign.len() + adversarial.len());
        let mut labels = Vec::with_capacity(benign.len() + adversarial.len());
        for input in benign {
            let (_, similarity) = Self::path_similarity(network, &program, &class_paths, input)?;
            features.push(vec![similarity]);
            labels.push(false);
        }
        for input in adversarial {
            let (_, similarity) = Self::path_similarity(network, &program, &class_paths, input)?;
            features.push(vec![similarity]);
            labels.push(true);
        }
        let forest = RandomForest::fit(&features, &labels, forest_config)?;
        Ok(Detector {
            program,
            class_paths,
            forest,
        })
    }

    /// Like [`Detector::fit`] with the paper's default forest (100 trees, depth 12).
    ///
    /// # Errors
    ///
    /// See [`Detector::fit`].
    #[deprecated(
        since = "0.2.0",
        note = "use `DetectionEngine::builder(..).calibrate(..).build()` instead"
    )]
    pub fn fit_default(
        network: &Network,
        program: DetectionProgram,
        class_paths: ClassPathSet,
        benign: &[Tensor],
        adversarial: &[Tensor],
    ) -> Result<Self> {
        Self::fit(
            network,
            program,
            class_paths,
            benign,
            adversarial,
            &ForestConfig::default(),
        )
    }

    /// Detects whether an input is adversarial, at the default decision
    /// threshold ([`crate::engine::DEFAULT_THRESHOLD`]).  The threshold is a
    /// builder knob on [`crate::DetectionEngine`].
    ///
    /// # Errors
    ///
    /// Propagates extraction and classifier errors.
    #[deprecated(since = "0.2.0", note = "use `DetectionEngine::detect` instead")]
    pub fn detect(&self, network: &Network, input: &Tensor) -> Result<Detection> {
        let (predicted_class, similarity) =
            Self::path_similarity(network, &self.program, &self.class_paths, input)?;
        let score = self.forest.predict_proba(&[similarity])?;
        Ok(Detection {
            is_adversary: score >= DEFAULT_THRESHOLD,
            score,
            similarity,
            predicted_class,
        })
    }

    /// Adversarial probability of an input (used to compute AUC curves).
    ///
    /// # Errors
    ///
    /// Propagates extraction and classifier errors.
    #[deprecated(since = "0.2.0", note = "use `DetectionEngine::score` instead")]
    pub fn score(&self, network: &Network, input: &Tensor) -> Result<f32> {
        Ok(self.detect(network, input)?.score)
    }

    /// The extraction program this detector runs.
    pub fn program(&self) -> &DetectionProgram {
        &self.program
    }

    /// The canary class paths this detector compares against.
    pub fn class_paths(&self) -> &ClassPathSet {
        &self.class_paths
    }

    /// The fitted random forest (exposed for the MCU cost model).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{variants, Profiler};
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    /// Builds a small trained classifier plus benign/adversarial calibration inputs.
    /// "Adversarial" inputs here are benign inputs of one class pushed across the
    /// decision boundary by blending towards another class's prototype — enough to
    /// flip predictions while keeping the input close to its origin, which is the
    /// behaviour real attacks exhibit.
    /// `(network, training samples, benign inputs, adversarial inputs)`.
    type Setup = (Network, Vec<(Tensor, usize)>, Vec<Tensor>, Vec<Tensor>);

    fn setup() -> Setup {
        let mut rng = Rng64::new(17);
        let prototypes: Vec<Vec<f32>> = vec![
            (0..8).map(|d| if d < 4 { 1.0 } else { 0.0 }).collect(),
            (0..8).map(|d| if d < 4 { 0.0 } else { 1.0 }).collect(),
        ];
        let mut samples = Vec::new();
        for (class, prototype) in prototypes.iter().enumerate() {
            for _ in 0..25 {
                let data: Vec<f32> = prototype.iter().map(|v| v + 0.08 * rng.normal()).collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();

        let benign: Vec<Tensor> = samples.iter().take(20).map(|(x, _)| x.clone()).collect();
        // "Adversarial" inputs keep the original class's signal but super-impose a
        // slightly stronger copy of the other class's prototype, so the prediction
        // flips while the activation path still contains the original class's
        // neurons — the same structural effect a real perturbation attack has.
        let mut adversarial = Vec::new();
        for (x, y) in samples.iter().take(20) {
            let other = 1 - *y;
            let data: Vec<f32> = x
                .as_slice()
                .iter()
                .zip(&prototypes[other])
                .map(|(a, b)| a + 1.2 * b)
                .collect();
            adversarial.push(Tensor::from_vec(data, &[8]).unwrap());
        }
        (net, samples, benign, adversarial)
    }

    #[test]
    fn detector_separates_benign_from_boundary_crossing_inputs() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        let detector =
            Detector::fit_default(&net, program, class_paths, &benign, &adversarial).unwrap();

        // Benign similarities should exceed adversarial similarities on average.
        let mean = |inputs: &[Tensor]| {
            inputs
                .iter()
                .map(|x| detector.detect(&net, x).unwrap().similarity)
                .sum::<f32>()
                / inputs.len() as f32
        };
        assert!(mean(&benign) > mean(&adversarial));

        // Scores are probabilities and the detector exposes its parts.
        let d = detector.detect(&net, &benign[0]).unwrap();
        assert!((0.0..=1.0).contains(&d.score));
        assert!(d.predicted_class < 2);
        assert_eq!(detector.class_paths().num_classes(), 2);
        assert_eq!(detector.forest().num_trees(), 100);
        assert!(detector.score(&net, &adversarial[0]).unwrap() >= 0.0);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let (net, samples, benign, adversarial) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program).profile(&net, &samples).unwrap();
        let other_program = variants::bw_cu(&net, 0.9).unwrap();
        assert!(Detector::path_similarity(&net, &other_program, &class_paths, &benign[0]).is_err());
        assert!(
            Detector::fit_default(&net, other_program, class_paths, &benign, &adversarial).is_err()
        );
    }

    #[test]
    fn empty_calibration_sets_are_rejected() {
        let (net, samples, benign, _) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&net, &samples)
            .unwrap();
        assert!(Detector::fit_default(&net, program, class_paths, &benign, &[]).is_err());
    }
}
