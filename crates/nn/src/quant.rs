//! Int8 quantized inference: calibration, [`QuantizedNetwork`] and its
//! integer forward pass.
//!
//! # Contract
//!
//! Unlike every other fast path in this workspace, the quantized path is
//! **not** bit-parity pinned against f32 inference — rounding activations and
//! weights to 8 bits changes logits, and occasionally verdicts, *by design*.
//! Its contract is behavioural and measured: the `quantized_detect` benchmark
//! gates the activation-path agreement rate and the detection-AUC delta
//! against f32.  What *is* guaranteed here is determinism — i32 accumulation
//! is exact, so the quantized path produces identical results across runs,
//! thread counts and (unlike f32) even re-association.
//!
//! # Scheme
//!
//! Per-tensor symmetric scales ([`QuantParams`], zero-point 0):
//!
//! * **Weights** are quantized once at build time from their own max-abs.
//! * **Activations** get per-layer-input scales from a calibration pass: the
//!   f32 network runs over a user-supplied calibration set while a
//!   [`TraceSink`] records each activation boundary's max-abs.
//!
//! Each quantized layer computes `i8 · i8 → i32` (exact), then requantizes on
//! output: `acc * s_act * s_weight + bias` in f32.  The network therefore
//! carries ordinary f32 activations between layers, which keeps every
//! non-weight layer (ReLU, pooling, reshape) byte-identical to the f32 path
//! and lets the standard [`ForwardTrace`] / path-extraction machinery consume
//! quantized runs unchanged.  `Residual` blocks and any layer whose
//! parameters don't follow the `[weight, bias]` convention simply run their
//! f32 `forward` — quantization is per-layer opportunistic, never required.
//!
//! # Kernels and batching
//!
//! All integer matmuls route through the blocked, register-tiled i8 GEMM in
//! `ptolemy_tensor::gemm_i8`; conv inputs lower through the fused int8
//! `im2col` (`ptolemy_tensor::im2col_i8`), which quantizes while packing
//! instead of staging an f32 column matrix.  Because i32 accumulation is
//! exact, the blocked/fused kernels are *bit-identical* to the naive
//! references — the kernel swap changes throughput, never results.  The same
//! exactness makes [`QuantizedNetwork::forward_batch`] trivially parity-safe:
//! sample `b` of a fused batch equals `forward(&inputs[b])` bit-for-bit, the
//! same widening-only contract as the f32 `Network::forward_batch`.

use std::sync::Arc;

use ptolemy_tensor::gemm_i8::{matmul_i8_blocked_nt, matmul_i8_parallel, matmul_i8_parallel_nt};
use ptolemy_tensor::quant::{quantize_slice, tensor_max_abs, QuantParams};
use ptolemy_tensor::{im2col_i8, im2col_i8_batch, Conv2dGeometry, Tensor};

use crate::batch::check_batch;
use crate::trace::predicted_class;
use crate::{BatchTrace, ForwardTrace, LayerKind, Network, NnError, Result, TraceSink};

/// One layer's pre-quantized integer kernel.
#[derive(Debug, Clone)]
enum QuantKernel {
    /// Dense: `qweight` is `[outputs, inputs]` row-major i8.
    Dense {
        qweight: Vec<i8>,
        wparams: QuantParams,
        bias: Vec<f32>,
        inputs: usize,
        outputs: usize,
    },
    /// Conv2d: `qweight` is `[out_channels, patch_len]` row-major i8.
    Conv {
        qweight: Vec<i8>,
        wparams: QuantParams,
        bias: Vec<f32>,
        geometry: Conv2dGeometry,
        out_channels: usize,
    },
}

/// A layer slot: integer kernel plus the calibrated input-activation scale,
/// or `None` for layers that run the f32 path.
#[derive(Debug, Clone)]
struct QuantSlot {
    kernel: QuantKernel,
    act: QuantParams,
}

/// Records the max-abs of every activation boundary across calibration runs.
#[derive(Debug)]
struct MaxAbsSink {
    maxes: Vec<f32>,
}

impl TraceSink for MaxAbsSink {
    fn on_input(&mut self, input: &Tensor) {
        self.maxes[0] = self.maxes[0].max(tensor_max_abs(input));
    }

    fn on_layer(&mut self, index: usize, output: &Tensor) {
        self.maxes[index + 1] = self.maxes[index + 1].max(tensor_max_abs(output));
    }
}

/// An int8-quantized view of a [`Network`]: weight layers run integer GEMMs
/// with calibrated activation scales, everything else runs the original f32
/// layer.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ptolemy_nn::{zoo, QuantizedNetwork};
/// use ptolemy_tensor::{Initializer, Rng64};
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let mut rng = Rng64::new(7);
/// let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng)?);
/// let calibration: Vec<_> = (0..4)
///     .map(|_| Initializer::Uniform(1.0).build(network.input_shape(), &mut rng))
///     .collect::<Result<_, _>>()?;
/// let qnet = QuantizedNetwork::quantize(network.clone(), &calibration)?;
/// let logits = qnet.forward(&calibration[0])?;
/// assert_eq!(logits.len(), network.num_classes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    network: Arc<Network>,
    slots: Vec<Option<QuantSlot>>,
}

impl QuantizedNetwork {
    /// Quantizes `network`: calibrates per-boundary activation scales by
    /// running the f32 network over `calibration`, then pre-quantizes every
    /// dense / conv weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `calibration` is empty, and
    /// propagates forward errors from the calibration runs (e.g. inputs of
    /// the wrong shape).
    pub fn quantize(network: Arc<Network>, calibration: &[Tensor]) -> Result<Self> {
        if calibration.is_empty() {
            return Err(NnError::InvalidConfig(
                "quantization needs at least one calibration input".into(),
            ));
        }
        let mut sink = MaxAbsSink {
            maxes: vec![0.0; network.num_layers() + 1],
        };
        for input in calibration {
            network.forward_with_sink(input, &mut sink)?;
        }
        let slots = network
            .layers()
            .enumerate()
            .map(|(i, layer)| {
                let act = QuantParams::from_max_abs(sink.maxes[i]);
                Self::build_kernel(layer.kind(), layer.params())
                    .map(|kernel| QuantSlot { kernel, act })
            })
            .collect();
        Ok(QuantizedNetwork { network, slots })
    }

    /// Builds the integer kernel for a layer, or `None` when the layer kind
    /// (or its parameter layout) doesn't support quantization.
    fn build_kernel(kind: LayerKind, params: Vec<&Tensor>) -> Option<QuantKernel> {
        let [weight, bias] = params.as_slice() else {
            return None;
        };
        let wparams = QuantParams::from_max_abs(tensor_max_abs(weight));
        let qweight = quantize_slice(weight.as_slice(), wparams);
        let bias = bias.as_slice().to_vec();
        match kind {
            LayerKind::Dense { inputs, outputs } => Some(QuantKernel::Dense {
                qweight,
                wparams,
                bias,
                inputs,
                outputs,
            }),
            LayerKind::Conv2d {
                geometry,
                out_channels,
            } => Some(QuantKernel::Conv {
                qweight,
                wparams,
                bias,
                geometry,
                out_channels,
            }),
            _ => None,
        }
    }

    /// The underlying f32 network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Number of layers running the integer kernel (the rest run f32).
    pub fn num_quantized_layers(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn forward_layer(
        &self,
        index: usize,
        layer: &dyn crate::Layer,
        input: &Tensor,
    ) -> Result<Tensor> {
        let Some(slot) = &self.slots[index] else {
            return layer.forward(input);
        };
        match &slot.kernel {
            QuantKernel::Dense {
                qweight,
                wparams,
                bias,
                inputs,
                outputs,
            } => {
                if input.len() != *inputs {
                    return layer.forward(input);
                }
                let qx = quantize_slice(input.as_slice(), slot.act);
                let acc = matmul_i8_blocked_nt(&qx, qweight, 1, *inputs, *outputs)?;
                let scale = slot.act.scale() * wparams.scale();
                let out: Vec<f32> = acc
                    .iter()
                    .zip(bias)
                    .map(|(a, b)| *a as f32 * scale + b)
                    .collect();
                Ok(Tensor::from_vec(out, &[*outputs])?)
            }
            QuantKernel::Conv {
                qweight,
                wparams,
                bias,
                geometry,
                out_channels,
            } => {
                let expected = [geometry.in_channels, geometry.in_h, geometry.in_w];
                if input.dims() != expected {
                    return layer.forward(input);
                }
                let qcols = im2col_i8(input, geometry, slot.act)?;
                let patches = geometry.num_patches();
                let patch_len = geometry.patch_len();
                let acc = matmul_i8_parallel(qweight, &qcols, *out_channels, patch_len, patches)?;
                let scale = slot.act.scale() * wparams.scale();
                let mut out = vec![0.0f32; out_channels * patches];
                for (oc, (chunk, b)) in out.chunks_mut(patches).zip(bias).enumerate() {
                    let row = &acc[oc * patches..(oc + 1) * patches];
                    for (o, a) in chunk.iter_mut().zip(row) {
                        *o = *a as f32 * scale + b;
                    }
                }
                Ok(Tensor::from_vec(
                    out,
                    &[*out_channels, geometry.out_h, geometry.out_w],
                )?)
            }
        }
    }

    /// Batched twin of [`Self::forward_layer`]: runs one fused integer kernel
    /// over a stacked `[B] ++ sample_shape` boundary.  Row `b` of the output
    /// is bit-for-bit `forward_layer` of sample `b` — i32 accumulation is
    /// exact, so fusing the batch into one GEMM cannot change results, and
    /// the requantization expression is textually the single-input one.
    fn forward_layer_batch(
        &self,
        index: usize,
        layer: &dyn crate::Layer,
        batch: &Tensor,
    ) -> Result<Tensor> {
        let Some(slot) = &self.slots[index] else {
            return layer.forward_batch(batch);
        };
        match &slot.kernel {
            QuantKernel::Dense {
                qweight,
                wparams,
                bias,
                inputs,
                outputs,
            } => {
                if check_batch(batch, &[*inputs], "quantized dense").is_err() {
                    return layer.forward_batch(batch);
                }
                let b_sz = batch.dims()[0];
                // One quantization sweep over the whole [B, inputs] slab: the
                // per-element expression is identical to the single-input
                // path's, so slicing the batch preserves bits.
                let qx = quantize_slice(batch.as_slice(), slot.act);
                let acc = matmul_i8_parallel_nt(&qx, qweight, b_sz, *inputs, *outputs)?;
                let scale = slot.act.scale() * wparams.scale();
                let mut out = vec![0.0f32; b_sz * *outputs];
                for (orow, arow) in out.chunks_mut(*outputs).zip(acc.chunks(*outputs)) {
                    for ((o, a), b) in orow.iter_mut().zip(arow).zip(bias) {
                        *o = *a as f32 * scale + b;
                    }
                }
                Ok(Tensor::from_vec(out, &[b_sz, *outputs])?)
            }
            QuantKernel::Conv {
                qweight,
                wparams,
                bias,
                geometry,
                out_channels,
            } => {
                let expected = [geometry.in_channels, geometry.in_h, geometry.in_w];
                if check_batch(batch, &expected, "quantized conv").is_err() {
                    return layer.forward_batch(batch);
                }
                let b_sz = batch.dims()[0];
                let patches = geometry.num_patches();
                let patch_len = geometry.patch_len();
                // Fused batched int8 im2col: column `b * patches + j` is
                // bit-for-bit column `j` of the per-sample lowering.
                let qcols = im2col_i8_batch(batch, geometry, slot.act)?;
                let cols = b_sz * patches;
                let acc = matmul_i8_parallel(qweight, &qcols, *out_channels, patch_len, cols)?;
                let scale = slot.act.scale() * wparams.scale();
                // Re-layout [out_c, B * patches] -> [B, out_c, out_h, out_w],
                // requantizing on the way out.
                let mut out = vec![0.0f32; b_sz * out_channels * patches];
                for b in 0..b_sz {
                    for (oc, bv) in bias.iter().enumerate() {
                        let arow = &acc[oc * cols + b * patches..oc * cols + (b + 1) * patches];
                        let orow = &mut out[(b * out_channels + oc) * patches..][..patches];
                        for (o, a) in orow.iter_mut().zip(arow) {
                            *o = *a as f32 * scale + bv;
                        }
                    }
                }
                Ok(Tensor::from_vec(
                    out,
                    &[b_sz, *out_channels, geometry.out_h, geometry.out_w],
                )?)
            }
        }
    }

    /// Stacks `inputs` into one `[B] ++ input_shape` batch, validating shapes
    /// (same contract as the f32 `Network::forward_batch` entry).
    fn stack_batch(&self, inputs: &[Tensor]) -> Result<Tensor> {
        if inputs.is_empty() {
            return Err(NnError::InvalidConfig(
                "batched quantized forward pass requires at least one input".into(),
            ));
        }
        for input in inputs {
            if input.dims() != self.network.input_shape() {
                return Err(NnError::InvalidConfig(format!(
                    "network expects input shape {:?}, got {:?}",
                    self.network.input_shape(),
                    input.dims()
                )));
            }
        }
        Ok(Tensor::stack(inputs)?)
    }

    /// Runs the quantized forward pass, returning the logits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for (i, layer) in self.network.layers().enumerate() {
            x = self.forward_layer(i, layer, &x)?;
        }
        Ok(x)
    }

    /// Runs the quantized forward pass, materialising every activation
    /// boundary as a standard [`ForwardTrace`] — the entry point for
    /// activation-path extraction over quantized inference.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_trace(&self, input: &Tensor) -> Result<ForwardTrace> {
        let mut activations = Vec::with_capacity(self.network.num_layers() + 1);
        activations.push(input.clone());
        let mut x = input.clone();
        for (i, layer) in self.network.layers().enumerate() {
            x = self.forward_layer(i, layer, &x)?;
            activations.push(x.clone());
        }
        ForwardTrace::from_activations(activations)
    }

    /// Runs one fused quantized forward pass over a whole batch and returns
    /// the stacked logits (`[B, num_classes]`).
    ///
    /// Row `b` is bit-for-bit identical to `forward(&inputs[b])`: integer
    /// accumulation is exact, the batched int8 `im2col` widens columns
    /// without reordering them, and every f32-fallback layer already carries
    /// the same guarantee through `Layer::forward_batch`.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or any input does not match the
    /// network input shape.
    pub fn forward_batch(&self, inputs: &[Tensor]) -> Result<Tensor> {
        let mut cur = self.stack_batch(inputs)?;
        for (i, layer) in self.network.layers().enumerate() {
            cur = self.forward_layer_batch(i, layer, &cur)?;
        }
        Ok(cur)
    }

    /// Runs one fused quantized forward pass over a whole batch, materialising
    /// every stacked activation boundary as a [`BatchTrace`] — the batched
    /// twin of [`Self::forward_trace`], and the entry point for batched
    /// quantized path extraction in `ptolemy-core`.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or any input does not match the
    /// network input shape.
    pub fn forward_trace_batch(&self, inputs: &[Tensor]) -> Result<BatchTrace> {
        let mut activations = Vec::with_capacity(self.network.num_layers() + 1);
        let mut cur = self.stack_batch(inputs)?;
        activations.push(cur.clone());
        for (i, layer) in self.network.layers().enumerate() {
            cur = self.forward_layer_batch(i, layer, &cur)?;
            activations.push(cur.clone());
        }
        Ok(BatchTrace::new(inputs.len(), activations))
    }

    /// Argmax class of the quantized logits.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; fails on empty or NaN logits.
    pub fn predict(&self, input: &Tensor) -> Result<usize> {
        predicted_class(&self.forward(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use ptolemy_tensor::{Initializer, Rng64};

    fn calibration(network: &Network, rng: &mut Rng64, n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|_| {
                Initializer::Uniform(1.0)
                    .build(network.input_shape(), rng)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn rejects_empty_calibration() {
        let mut rng = Rng64::new(1);
        let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng).unwrap());
        assert!(QuantizedNetwork::quantize(network, &[]).is_err());
    }

    #[test]
    fn quantized_logits_track_f32_logits() {
        let mut rng = Rng64::new(2);
        let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 8);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        assert!(qnet.num_quantized_layers() >= 2);
        let mut close = 0;
        for x in &cal {
            let f = network.forward(x).unwrap();
            let q = qnet.forward(x).unwrap();
            assert_eq!(f.len(), q.len());
            let max_err = f
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            let range = tensor_max_abs(&f).max(1e-3);
            if max_err <= 0.15 * range {
                close += 1;
            }
        }
        // int8 rounding wiggles logits but must stay in the same ballpark.
        assert!(close >= cal.len() - 1, "only {close}/{} close", cal.len());
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.dims(), b.dims(), "{what}: dims");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
        }
    }

    #[test]
    fn batched_quantized_forward_is_bit_identical_to_single() {
        let mut rng = Rng64::new(11);
        for network in [
            Arc::new(zoo::mlp_net(&[16, 12], 4, &mut rng).unwrap()),
            Arc::new(zoo::lenet(1, 4, &mut rng).unwrap()),
        ] {
            let cal = calibration(&network, &mut rng, 6);
            let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
            let stacked = qnet.forward_batch(&cal).unwrap();
            for (b, input) in cal.iter().enumerate() {
                let single = qnet.forward(input).unwrap();
                let row = stacked.slice_batch(b).unwrap();
                assert_bits_eq(&row, &single, "logits row");
            }
        }
    }

    #[test]
    fn batched_quantized_trace_slices_match_single_traces() {
        let mut rng = Rng64::new(13);
        let network = Arc::new(zoo::lenet(1, 4, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 3);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        let batch = qnet.forward_trace_batch(&cal).unwrap();
        assert_eq!(batch.batch_size(), cal.len());
        assert_eq!(batch.num_layers(), network.num_layers());
        for (b, input) in cal.iter().enumerate() {
            let single = qnet.forward_trace(input).unwrap();
            let sliced = batch.trace(b).unwrap();
            for (layer, (s, f)) in sliced
                .activations()
                .iter()
                .zip(single.activations())
                .enumerate()
            {
                assert_bits_eq(s, f, &format!("sample {b} boundary {layer}"));
            }
        }
    }

    #[test]
    fn batched_quantized_forward_rejects_bad_inputs() {
        let mut rng = Rng64::new(17);
        let network = Arc::new(zoo::mlp_net(&[8], 3, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 2);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        assert!(qnet.forward_batch(&[]).is_err());
        let wrong = Tensor::zeros(&[3]);
        assert!(qnet.forward_batch(&[cal[0].clone(), wrong]).is_err());
    }

    #[test]
    fn quantized_trace_has_every_boundary_and_is_deterministic() {
        let mut rng = Rng64::new(3);
        let network = Arc::new(zoo::lenet(1, 4, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 4);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        assert_eq!(qnet.num_quantized_layers(), 4);
        let trace = qnet.forward_trace(&cal[0]).unwrap();
        assert_eq!(trace.num_layers(), network.num_layers());
        let again = qnet.forward_trace(&cal[0]).unwrap();
        for (a, b) in trace.activations().iter().zip(again.activations()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let class = qnet.predict(&cal[0]).unwrap();
        assert!(class < network.num_classes());
    }
}
