//! Int8 quantized inference: calibration, [`QuantizedNetwork`] and its
//! integer forward pass.
//!
//! # Contract
//!
//! Unlike every other fast path in this workspace, the quantized path is
//! **not** bit-parity pinned against f32 inference — rounding activations and
//! weights to 8 bits changes logits, and occasionally verdicts, *by design*.
//! Its contract is behavioural and measured: the `quantized_detect` benchmark
//! gates the activation-path agreement rate and the detection-AUC delta
//! against f32.  What *is* guaranteed here is determinism — i32 accumulation
//! is exact, so the quantized path produces identical results across runs,
//! thread counts and (unlike f32) even re-association.
//!
//! # Scheme
//!
//! Per-tensor symmetric scales ([`QuantParams`], zero-point 0):
//!
//! * **Weights** are quantized once at build time from their own max-abs.
//! * **Activations** get per-layer-input scales from a calibration pass: the
//!   f32 network runs over a user-supplied calibration set while a
//!   [`TraceSink`] records each activation boundary's max-abs.
//!
//! Each quantized layer computes `i8 · i8 → i32` (exact), then requantizes on
//! output: `acc * s_act * s_weight + bias` in f32.  The network therefore
//! carries ordinary f32 activations between layers, which keeps every
//! non-weight layer (ReLU, pooling, reshape) byte-identical to the f32 path
//! and lets the standard [`ForwardTrace`] / path-extraction machinery consume
//! quantized runs unchanged.  `Residual` blocks and any layer whose
//! parameters don't follow the `[weight, bias]` convention simply run their
//! f32 `forward` — quantization is per-layer opportunistic, never required.

use std::sync::Arc;

use ptolemy_tensor::quant::{matmul_i8, matmul_i8_nt, quantize_slice, tensor_max_abs, QuantParams};
use ptolemy_tensor::{im2col, Conv2dGeometry, Tensor};

use crate::trace::predicted_class;
use crate::{ForwardTrace, LayerKind, Network, NnError, Result, TraceSink};

/// One layer's pre-quantized integer kernel.
#[derive(Debug, Clone)]
enum QuantKernel {
    /// Dense: `qweight` is `[outputs, inputs]` row-major i8.
    Dense {
        qweight: Vec<i8>,
        wparams: QuantParams,
        bias: Vec<f32>,
        inputs: usize,
        outputs: usize,
    },
    /// Conv2d: `qweight` is `[out_channels, patch_len]` row-major i8.
    Conv {
        qweight: Vec<i8>,
        wparams: QuantParams,
        bias: Vec<f32>,
        geometry: Conv2dGeometry,
        out_channels: usize,
    },
}

/// A layer slot: integer kernel plus the calibrated input-activation scale,
/// or `None` for layers that run the f32 path.
#[derive(Debug, Clone)]
struct QuantSlot {
    kernel: QuantKernel,
    act: QuantParams,
}

/// Records the max-abs of every activation boundary across calibration runs.
#[derive(Debug)]
struct MaxAbsSink {
    maxes: Vec<f32>,
}

impl TraceSink for MaxAbsSink {
    fn on_input(&mut self, input: &Tensor) {
        self.maxes[0] = self.maxes[0].max(tensor_max_abs(input));
    }

    fn on_layer(&mut self, index: usize, output: &Tensor) {
        self.maxes[index + 1] = self.maxes[index + 1].max(tensor_max_abs(output));
    }
}

/// An int8-quantized view of a [`Network`]: weight layers run integer GEMMs
/// with calibrated activation scales, everything else runs the original f32
/// layer.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ptolemy_nn::{zoo, QuantizedNetwork};
/// use ptolemy_tensor::{Initializer, Rng64};
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let mut rng = Rng64::new(7);
/// let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng)?);
/// let calibration: Vec<_> = (0..4)
///     .map(|_| Initializer::Uniform(1.0).build(network.input_shape(), &mut rng))
///     .collect::<Result<_, _>>()?;
/// let qnet = QuantizedNetwork::quantize(network.clone(), &calibration)?;
/// let logits = qnet.forward(&calibration[0])?;
/// assert_eq!(logits.len(), network.num_classes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    network: Arc<Network>,
    slots: Vec<Option<QuantSlot>>,
}

impl QuantizedNetwork {
    /// Quantizes `network`: calibrates per-boundary activation scales by
    /// running the f32 network over `calibration`, then pre-quantizes every
    /// dense / conv weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `calibration` is empty, and
    /// propagates forward errors from the calibration runs (e.g. inputs of
    /// the wrong shape).
    pub fn quantize(network: Arc<Network>, calibration: &[Tensor]) -> Result<Self> {
        if calibration.is_empty() {
            return Err(NnError::InvalidConfig(
                "quantization needs at least one calibration input".into(),
            ));
        }
        let mut sink = MaxAbsSink {
            maxes: vec![0.0; network.num_layers() + 1],
        };
        for input in calibration {
            network.forward_with_sink(input, &mut sink)?;
        }
        let slots = network
            .layers()
            .enumerate()
            .map(|(i, layer)| {
                let act = QuantParams::from_max_abs(sink.maxes[i]);
                Self::build_kernel(layer.kind(), layer.params())
                    .map(|kernel| QuantSlot { kernel, act })
            })
            .collect();
        Ok(QuantizedNetwork { network, slots })
    }

    /// Builds the integer kernel for a layer, or `None` when the layer kind
    /// (or its parameter layout) doesn't support quantization.
    fn build_kernel(kind: LayerKind, params: Vec<&Tensor>) -> Option<QuantKernel> {
        let [weight, bias] = params.as_slice() else {
            return None;
        };
        let wparams = QuantParams::from_max_abs(tensor_max_abs(weight));
        let qweight = quantize_slice(weight.as_slice(), wparams);
        let bias = bias.as_slice().to_vec();
        match kind {
            LayerKind::Dense { inputs, outputs } => Some(QuantKernel::Dense {
                qweight,
                wparams,
                bias,
                inputs,
                outputs,
            }),
            LayerKind::Conv2d {
                geometry,
                out_channels,
            } => Some(QuantKernel::Conv {
                qweight,
                wparams,
                bias,
                geometry,
                out_channels,
            }),
            _ => None,
        }
    }

    /// The underlying f32 network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Number of layers running the integer kernel (the rest run f32).
    pub fn num_quantized_layers(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn forward_layer(
        &self,
        index: usize,
        layer: &dyn crate::Layer,
        input: &Tensor,
    ) -> Result<Tensor> {
        let Some(slot) = &self.slots[index] else {
            return layer.forward(input);
        };
        match &slot.kernel {
            QuantKernel::Dense {
                qweight,
                wparams,
                bias,
                inputs,
                outputs,
            } => {
                if input.len() != *inputs {
                    return layer.forward(input);
                }
                let qx = quantize_slice(input.as_slice(), slot.act);
                let acc = matmul_i8_nt(&qx, qweight, 1, *inputs, *outputs)?;
                let scale = slot.act.scale() * wparams.scale();
                let out: Vec<f32> = acc
                    .iter()
                    .zip(bias)
                    .map(|(a, b)| *a as f32 * scale + b)
                    .collect();
                Ok(Tensor::from_vec(out, &[*outputs])?)
            }
            QuantKernel::Conv {
                qweight,
                wparams,
                bias,
                geometry,
                out_channels,
            } => {
                let expected = [geometry.in_channels, geometry.in_h, geometry.in_w];
                if input.dims() != expected {
                    return layer.forward(input);
                }
                let cols = im2col(input, geometry)?;
                let qcols = quantize_slice(cols.as_slice(), slot.act);
                let patches = geometry.num_patches();
                let patch_len = geometry.patch_len();
                let acc = matmul_i8(qweight, &qcols, *out_channels, patch_len, patches)?;
                let scale = slot.act.scale() * wparams.scale();
                let mut out = vec![0.0f32; out_channels * patches];
                for (oc, (chunk, b)) in out.chunks_mut(patches).zip(bias).enumerate() {
                    let row = &acc[oc * patches..(oc + 1) * patches];
                    for (o, a) in chunk.iter_mut().zip(row) {
                        *o = *a as f32 * scale + b;
                    }
                }
                Ok(Tensor::from_vec(
                    out,
                    &[*out_channels, geometry.out_h, geometry.out_w],
                )?)
            }
        }
    }

    /// Runs the quantized forward pass, returning the logits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for (i, layer) in self.network.layers().enumerate() {
            x = self.forward_layer(i, layer, &x)?;
        }
        Ok(x)
    }

    /// Runs the quantized forward pass, materialising every activation
    /// boundary as a standard [`ForwardTrace`] — the entry point for
    /// activation-path extraction over quantized inference.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_trace(&self, input: &Tensor) -> Result<ForwardTrace> {
        let mut activations = Vec::with_capacity(self.network.num_layers() + 1);
        activations.push(input.clone());
        let mut x = input.clone();
        for (i, layer) in self.network.layers().enumerate() {
            x = self.forward_layer(i, layer, &x)?;
            activations.push(x.clone());
        }
        ForwardTrace::from_activations(activations)
    }

    /// Argmax class of the quantized logits.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; fails on empty or NaN logits.
    pub fn predict(&self, input: &Tensor) -> Result<usize> {
        predicted_class(&self.forward(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use ptolemy_tensor::{Initializer, Rng64};

    fn calibration(network: &Network, rng: &mut Rng64, n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|_| {
                Initializer::Uniform(1.0)
                    .build(network.input_shape(), rng)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn rejects_empty_calibration() {
        let mut rng = Rng64::new(1);
        let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng).unwrap());
        assert!(QuantizedNetwork::quantize(network, &[]).is_err());
    }

    #[test]
    fn quantized_logits_track_f32_logits() {
        let mut rng = Rng64::new(2);
        let network = Arc::new(zoo::mlp_net(&[16], 4, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 8);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        assert!(qnet.num_quantized_layers() >= 2);
        let mut close = 0;
        for x in &cal {
            let f = network.forward(x).unwrap();
            let q = qnet.forward(x).unwrap();
            assert_eq!(f.len(), q.len());
            let max_err = f
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            let range = tensor_max_abs(&f).max(1e-3);
            if max_err <= 0.15 * range {
                close += 1;
            }
        }
        // int8 rounding wiggles logits but must stay in the same ballpark.
        assert!(close >= cal.len() - 1, "only {close}/{} close", cal.len());
    }

    #[test]
    fn quantized_trace_has_every_boundary_and_is_deterministic() {
        let mut rng = Rng64::new(3);
        let network = Arc::new(zoo::lenet(1, 4, &mut rng).unwrap());
        let cal = calibration(&network, &mut rng, 4);
        let qnet = QuantizedNetwork::quantize(network.clone(), &cal).unwrap();
        assert_eq!(qnet.num_quantized_layers(), 4);
        let trace = qnet.forward_trace(&cal[0]).unwrap();
        assert_eq!(trace.num_layers(), network.num_layers());
        let again = qnet.forward_trace(&cal[0]).unwrap();
        for (a, b) in trace.activations().iter().zip(again.activations()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let class = qnet.predict(&cal[0]).unwrap();
        assert!(class < network.num_classes());
    }
}
