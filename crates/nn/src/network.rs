use ptolemy_tensor::Tensor;

use crate::trace::TraceRecorder;
use crate::{BatchTrace, ForwardTrace, Layer, NnError, Result, TraceSink};

/// Parameter gradients for a whole network, one entry per layer (in layer order).
#[derive(Debug, Clone)]
pub struct NetworkGrads {
    /// Per-layer parameter gradients (same nesting as `Network::layer(i).params()`).
    pub param_grads: Vec<Vec<Tensor>>,
    /// Gradient of the loss with respect to the network input.
    pub input_grad: Tensor,
}

/// A feed-forward network: an ordered stack of [`Layer`]s operating on one sample.
///
/// Residual/skip structure is encapsulated inside composite layers
/// ([`crate::layer::Residual`]), so the network itself is strictly sequential —
/// which is also how Ptolemy's per-layer path extraction (and its ISA, whose
/// `inf`/`infsp` instructions are per-layer) views the model.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Vec<usize>,
    num_classes: usize,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("input_shape", &self.input_shape)
            .field("num_classes", &self.num_classes)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Network {
    /// Builds a network from a layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the stack is empty or consecutive
    /// layers disagree about activation shapes.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig(
                "network must have at least one layer".into(),
            ));
        }
        let input_shape = layers[0].input_shape();
        let mut cur = input_shape.clone();
        for (i, layer) in layers.iter().enumerate() {
            if layer.input_shape() != cur {
                return Err(NnError::InvalidConfig(format!(
                    "layer {i} ({}) expects shape {:?} but receives {:?}",
                    layer.name(),
                    layer.input_shape(),
                    cur
                )));
            }
            cur = layer.output_shape();
        }
        if cur.len() != 1 {
            return Err(NnError::InvalidConfig(format!(
                "network output must be a class-score vector, got shape {cur:?}"
            )));
        }
        Ok(Network {
            num_classes: cur[0],
            input_shape,
            layers,
        })
    }

    /// Number of layers (including activation/pooling layers).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Expected per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Borrow a layer by index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerOutOfRange`] if `index >= num_layers()`.
    pub fn layer(&self, index: usize) -> Result<&dyn Layer> {
        self.layers
            .get(index)
            .map(|b| b.as_ref())
            .ok_or(NnError::LayerOutOfRange {
                index,
                num_layers: self.layers.len(),
            })
    }

    /// Iterator over all layers in order.
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|b| b.as_ref())
    }

    /// Indices of layers that carry weights (the layers Ptolemy extracts important
    /// neurons from).
    pub fn weight_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind().is_weight_layer())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total multiply-accumulate count of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.kind().macs()).sum()
    }

    /// Runs a plain forward pass and returns the logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network input shape.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut cur = input.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Runs a forward pass, handing every activation boundary to `sink` as it
    /// is produced — the streaming driver both [`Network::forward_trace`] and
    /// the `ptolemy-core` streaming extraction pipeline are adapters over.
    ///
    /// The driver itself holds only the current layer's input and output; what
    /// outlives a layer is entirely the sink's decision, so a selective sink
    /// observes the full pass in O(largest layer) memory.  Returns the final
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network input shape.
    pub fn forward_with_sink<S: TraceSink + ?Sized>(
        &self,
        input: &Tensor,
        sink: &mut S,
    ) -> Result<Tensor> {
        sink.on_input(input);
        let mut cur = input.clone();
        for (index, layer) in self.layers.iter().enumerate() {
            let out = layer.forward(&cur)?;
            sink.on_layer(index, &out);
            cur = out;
        }
        Ok(cur)
    }

    /// Runs a forward pass recording every activation boundary (a thin adapter
    /// over [`Network::forward_with_sink`] with a keep-everything sink).
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network input shape.
    pub fn forward_trace(&self, input: &Tensor) -> Result<ForwardTrace> {
        let mut recorder = TraceRecorder::with_capacity(self.layers.len());
        self.forward_with_sink(input, &mut recorder)?;
        ForwardTrace::from_activations(recorder.activations)
    }

    /// Stacks `inputs` into one `[B] ++ input_shape` batch, validating shapes.
    fn stack_batch(&self, inputs: &[Tensor]) -> Result<Tensor> {
        if inputs.is_empty() {
            return Err(NnError::InvalidConfig(
                "batched forward pass requires at least one input".into(),
            ));
        }
        for input in inputs {
            if input.dims() != self.input_shape {
                return Err(NnError::InvalidConfig(format!(
                    "network expects input shape {:?}, got {:?}",
                    self.input_shape,
                    input.dims()
                )));
            }
        }
        Ok(Tensor::stack(inputs)?)
    }

    /// Runs one fused forward pass over a whole batch and returns the stacked
    /// logits (`[B, num_classes]`).
    ///
    /// Row `b` is bit-for-bit identical to `forward(&inputs[b])` — every layer's
    /// [`Layer::forward_batch`] preserves the per-input reduction order, so
    /// batching changes throughput, never arithmetic.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or any input does not match the
    /// network input shape.
    pub fn forward_batch(&self, inputs: &[Tensor]) -> Result<Tensor> {
        let mut cur = self.stack_batch(inputs)?;
        for layer in &self.layers {
            cur = layer.forward_batch(&cur)?;
        }
        Ok(cur)
    }

    /// Runs one fused forward pass over a whole batch, handing each stacked
    /// activation boundary (`[B] ++ boundary_shape`) to `sink` as it is
    /// produced — the batched twin of [`Network::forward_with_sink`].  Returns
    /// the stacked logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or any input does not match the
    /// network input shape.
    pub fn forward_with_sink_batch<S: TraceSink + ?Sized>(
        &self,
        inputs: &[Tensor],
        sink: &mut S,
    ) -> Result<Tensor> {
        let mut cur = self.stack_batch(inputs)?;
        sink.on_input(&cur);
        for (index, layer) in self.layers.iter().enumerate() {
            let out = layer.forward_batch(&cur)?;
            sink.on_layer(index, &out);
            cur = out;
        }
        Ok(cur)
    }

    /// Runs one fused forward pass over a whole batch, recording every stacked
    /// activation boundary (a thin adapter over
    /// [`Network::forward_with_sink_batch`] with a keep-everything sink).
    ///
    /// `forward_trace_batch(xs)?.trace(b)?` is bit-for-bit identical to
    /// `forward_trace(&xs[b])?` — the property that lets `ptolemy-core` extract
    /// each input's activation path from the slices of a single fused trace.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or any input does not match the
    /// network input shape.
    pub fn forward_trace_batch(&self, inputs: &[Tensor]) -> Result<BatchTrace> {
        let mut recorder = TraceRecorder::with_capacity(self.layers.len());
        self.forward_with_sink_batch(inputs, &mut recorder)?;
        Ok(BatchTrace::new(inputs.len(), recorder.activations))
    }

    /// Predicted class of `input` (argmax of the logits).
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network input shape.
    pub fn predict(&self, input: &Tensor) -> Result<usize> {
        Ok(self.forward(input)?.argmax()?)
    }

    /// Backward pass given a recorded trace and the gradient of the loss w.r.t. the
    /// logits.  Returns parameter gradients per layer plus the input gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if the trace does not match the network or shapes are
    /// inconsistent.
    pub fn backward(&self, trace: &ForwardTrace, grad_logits: &Tensor) -> Result<NetworkGrads> {
        if trace.num_layers() != self.layers.len() {
            return Err(NnError::InvalidConfig(format!(
                "trace has {} layers but network has {}",
                trace.num_layers(),
                self.layers.len()
            )));
        }
        let mut grad = grad_logits.clone();
        let mut per_layer = vec![Vec::new(); self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let grads = layer.backward(trace.input(i), &grad)?;
            per_layer[i] = grads.param_grads;
            grad = grads.input_grad;
        }
        Ok(NetworkGrads {
            param_grads: per_layer,
            input_grad: grad,
        })
    }

    /// Gradient of the softmax-cross-entropy loss (w.r.t. the input) for a given
    /// label — the quantity white-box attacks ascend.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLabel`] if `label` is out of range, or shape errors
    /// from the forward/backward passes.
    pub fn input_gradient(&self, input: &Tensor, label: usize) -> Result<Tensor> {
        if label >= self.num_classes {
            return Err(NnError::InvalidLabel {
                label,
                num_classes: self.num_classes,
            });
        }
        let trace = self.forward_trace(input)?;
        let grad_logits = crate::loss::softmax_cross_entropy_grad(trace.logits(), label)?;
        Ok(self.backward(&trace, &grad_logits)?.input_grad)
    }

    /// Applies a gradient step `p -= lr * g` to every parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if `grads` does not match the network structure.
    pub fn apply_gradients(&mut self, grads: &NetworkGrads, lr: f32) -> Result<()> {
        if grads.param_grads.len() != self.layers.len() {
            return Err(NnError::InvalidConfig(
                "gradient/layer count mismatch".into(),
            ));
        }
        for (layer, layer_grads) in self.layers.iter_mut().zip(&grads.param_grads) {
            let params = layer.params_mut();
            if params.len() != layer_grads.len() {
                return Err(NnError::InvalidConfig(
                    "gradient/parameter count mismatch inside a layer".into(),
                ));
            }
            for (p, g) in params.into_iter().zip(layer_grads) {
                p.add_scaled_inplace(g, -lr)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Flatten, ReLU};
    use ptolemy_tensor::Rng64;

    fn tiny_net(rng: &mut Rng64) -> Network {
        Network::new(vec![
            Box::new(Flatten::new(&[1, 2, 2])),
            Box::new(Dense::new(4, 5, rng).unwrap()),
            Box::new(ReLU::new(&[5])),
            Box::new(Dense::new(5, 3, rng).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_shapes() {
        let mut rng = Rng64::new(0);
        assert!(Network::new(vec![]).is_err());
        // Mismatched consecutive shapes.
        let bad = Network::new(vec![
            Box::new(Dense::new(4, 5, &mut rng).unwrap()) as Box<dyn Layer>,
            Box::new(Dense::new(6, 3, &mut rng).unwrap()),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn forward_and_trace_agree() {
        let mut rng = Rng64::new(1);
        let net = tiny_net(&mut rng);
        let x = Tensor::ones(&[1, 2, 2]);
        let logits = net.forward(&x).unwrap();
        let trace = net.forward_trace(&x).unwrap();
        assert_eq!(trace.num_layers(), 4);
        assert_eq!(trace.logits().as_slice(), logits.as_slice());
        assert_eq!(net.predict(&x).unwrap(), logits.argmax().unwrap());
        // Chaining property: output(i) and input(i + 1) are the same boundary.
        for i in 0..trace.num_layers() - 1 {
            assert_eq!(trace.output(i).as_slice(), trace.input(i + 1).as_slice());
        }
        // The trace holds each boundary once: num_layers + 1 activations.
        assert_eq!(trace.activations().len(), trace.num_layers() + 1);
    }

    /// A sink that keeps only the layer indices and boundary lengths it saw —
    /// the streaming driver must visit every layer in order without the sink
    /// retaining any activation.
    #[test]
    fn forward_with_sink_streams_boundaries_in_order() {
        struct Probe {
            seen: Vec<(usize, usize)>,
            input_len: usize,
        }
        impl TraceSink for Probe {
            fn on_input(&mut self, input: &Tensor) {
                self.input_len = input.len();
            }
            fn on_layer(&mut self, index: usize, output: &Tensor) {
                self.seen.push((index, output.len()));
            }
        }
        let mut rng = Rng64::new(9);
        let net = tiny_net(&mut rng);
        let x = Tensor::ones(&[1, 2, 2]);
        let mut probe = Probe {
            seen: Vec::new(),
            input_len: 0,
        };
        let logits = net.forward_with_sink(&x, &mut probe).unwrap();
        assert_eq!(logits.as_slice(), net.forward(&x).unwrap().as_slice());
        assert_eq!(probe.input_len, 4);
        assert_eq!(
            probe.seen,
            vec![(0usize, 4usize), (1, 5), (2, 5), (3, 3)],
            "every layer must be observed in order"
        );

        // The batched driver observes stacked boundaries.
        let mut probe = Probe {
            seen: Vec::new(),
            input_len: 0,
        };
        let batch = vec![x.clone(), x];
        let stacked = net.forward_with_sink_batch(&batch, &mut probe).unwrap();
        assert_eq!(stacked.dims(), &[2, 3]);
        assert_eq!(probe.input_len, 8);
        assert_eq!(probe.seen, vec![(0usize, 8usize), (1, 10), (2, 10), (3, 6)]);
    }

    #[test]
    fn weight_layer_indices_and_macs() {
        let mut rng = Rng64::new(2);
        let net = tiny_net(&mut rng);
        assert_eq!(net.weight_layer_indices(), vec![1, 3]);
        assert_eq!(net.total_macs(), 4 * 5 + 5 * 3);
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.input_shape(), &[1, 2, 2]);
        assert!(net.layer(4).is_err());
        assert_eq!(net.layer(2).unwrap().name(), "relu");
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut rng = Rng64::new(3);
        let net = tiny_net(&mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1], &[1, 2, 2]).unwrap();
        let label = 1;
        let grad = net.input_gradient(&x, label).unwrap();
        let loss = |input: &Tensor| {
            let logits = net.forward(input).unwrap();
            crate::loss::cross_entropy_loss(&logits, label).unwrap()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = grad.as_slice()[i];
            assert!((num - ana).abs() < 1e-2, "grad {i}: {num} vs {ana}");
        }
        assert!(net.input_gradient(&x, 99).is_err());
    }

    #[test]
    fn fused_batch_matches_per_input_path_bit_for_bit() {
        let mut rng = Rng64::new(11);
        // A conv net exercises every fused kernel: conv, relu, pools, flatten,
        // dense and the residual block.
        let net = crate::zoo::resnet_mini(3, &mut rng).unwrap();
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| {
                let data = (0..net.input_shape().iter().product::<usize>())
                    .map(|_| rng.normal() * (1.0 + i as f32 * 0.3))
                    .collect();
                Tensor::from_vec(data, net.input_shape()).unwrap()
            })
            .collect();

        let logits = net.forward_batch(&inputs).unwrap();
        assert_eq!(logits.dims(), &[5, net.num_classes()]);
        let batch_trace = net.forward_trace_batch(&inputs).unwrap();
        assert_eq!(batch_trace.batch_size(), 5);
        assert_eq!(batch_trace.num_layers(), net.num_layers());

        for (b, input) in inputs.iter().enumerate() {
            let single = net.forward(input).unwrap();
            let fused = logits.slice_batch(b).unwrap();
            for (f, s) in fused.as_slice().iter().zip(single.as_slice()) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
            let single_trace = net.forward_trace(input).unwrap();
            let sliced = batch_trace.trace(b).unwrap();
            for layer in 0..net.num_layers() {
                for (f, s) in sliced
                    .output(layer)
                    .as_slice()
                    .iter()
                    .zip(single_trace.output(layer).as_slice())
                {
                    assert_eq!(f.to_bits(), s.to_bits());
                }
                assert_eq!(sliced.input(layer).dims(), single_trace.input(layer).dims());
            }
        }
    }

    #[test]
    fn batched_forward_rejects_empty_and_mismatched_inputs() {
        let mut rng = Rng64::new(12);
        let net = tiny_net(&mut rng);
        assert!(net.forward_batch(&[]).is_err());
        let bad = vec![Tensor::ones(&[1, 2, 2]), Tensor::ones(&[4])];
        assert!(net.forward_batch(&bad).is_err());
        assert!(net.forward_trace_batch(&bad).is_err());
        // A batch of one works and equals the single path.
        let one = vec![Tensor::ones(&[1, 2, 2])];
        let fused = net.forward_batch(&one).unwrap();
        let single = net.forward(&one[0]).unwrap();
        assert_eq!(fused.slice_batch(0).unwrap().as_slice(), single.as_slice());
    }

    #[test]
    fn apply_gradients_moves_parameters_downhill() {
        let mut rng = Rng64::new(4);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::from_vec(vec![0.5, -0.5, 0.25, 1.0], &[1, 2, 2]).unwrap();
        let label = 2;
        let before = {
            let logits = net.forward(&x).unwrap();
            crate::loss::cross_entropy_loss(&logits, label).unwrap()
        };
        for _ in 0..20 {
            let trace = net.forward_trace(&x).unwrap();
            let grad_logits =
                crate::loss::softmax_cross_entropy_grad(trace.logits(), label).unwrap();
            let grads = net.backward(&trace, &grad_logits).unwrap();
            net.apply_gradients(&grads, 0.1).unwrap();
        }
        let after = {
            let logits = net.forward(&x).unwrap();
            crate::loss::cross_entropy_loss(&logits, label).unwrap()
        };
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }
}
