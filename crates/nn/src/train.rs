//! Mini-batch SGD training with momentum.

use ptolemy_tensor::{Rng64, Tensor};

use crate::{cross_entropy_loss, softmax_cross_entropy_grad, Network, NnError, Result};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 0x9e3779b9,
        }
    }
}

/// Summary statistics returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_accuracy: f32,
}

/// Mini-batch SGD trainer for [`Network`].
///
/// # Example
///
/// ```
/// use ptolemy_nn::{zoo, TrainConfig, Trainer};
/// use ptolemy_tensor::{Rng64, Tensor};
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let mut rng = Rng64::new(1);
/// let mut net = zoo::mlp_net(&[4], 2, &mut rng)?;
/// let samples = vec![
///     (Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[4])?, 0),
///     (Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[4])?, 1),
/// ];
/// let report = Trainer::new(TrainConfig { epochs: 30, ..TrainConfig::default() })
///     .fit(&mut net, &samples)?;
/// assert!(report.final_accuracy >= 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    velocity: Option<Vec<Vec<Tensor>>>,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            velocity: None,
        }
    }

    /// The configuration this trainer uses.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `network` on `(input, label)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] for an empty sample slice,
    /// [`NnError::InvalidLabel`] if a label exceeds the network's class count, and
    /// propagates shape errors from the forward/backward passes.
    pub fn fit(
        &mut self,
        network: &mut Network,
        samples: &[(Tensor, usize)],
    ) -> Result<TrainReport> {
        if samples.is_empty() {
            return Err(NnError::EmptyDataset);
        }
        for (_, label) in samples {
            if *label >= network.num_classes() {
                return Err(NnError::InvalidLabel {
                    label: *label,
                    num_classes: network.num_classes(),
                });
            }
        }
        let mut rng = Rng64::new(self.config.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                epoch_loss += self.train_batch(network, samples, batch)? * batch.len() as f32;
            }
            epoch_losses.push(epoch_loss / samples.len() as f32);
        }

        let correct = samples
            .iter()
            .filter(|(x, y)| network.predict(x).map(|p| p == *y).unwrap_or(false))
            .count();
        Ok(TrainReport {
            epoch_losses,
            final_accuracy: correct as f32 / samples.len() as f32,
        })
    }

    /// Evaluates classification accuracy on a sample set.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] if `samples` is empty.
    pub fn evaluate(&self, network: &Network, samples: &[(Tensor, usize)]) -> Result<f32> {
        if samples.is_empty() {
            return Err(NnError::EmptyDataset);
        }
        let correct = samples
            .iter()
            .filter(|(x, y)| network.predict(x).map(|p| p == *y).unwrap_or(false))
            .count();
        Ok(correct as f32 / samples.len() as f32)
    }

    fn train_batch(
        &mut self,
        network: &mut Network,
        samples: &[(Tensor, usize)],
        batch: &[usize],
    ) -> Result<f32> {
        let mut accumulated: Option<Vec<Vec<Tensor>>> = None;
        let mut batch_loss = 0.0;
        for &idx in batch {
            let (input, label) = &samples[idx];
            let trace = network.forward_trace(input)?;
            batch_loss += cross_entropy_loss(trace.logits(), *label)?;
            let grad_logits = softmax_cross_entropy_grad(trace.logits(), *label)?;
            let grads = network.backward(&trace, &grad_logits)?;
            match &mut accumulated {
                None => accumulated = Some(grads.param_grads),
                Some(acc) => {
                    for (layer_acc, layer_new) in acc.iter_mut().zip(grads.param_grads) {
                        for (a, n) in layer_acc.iter_mut().zip(layer_new) {
                            a.add_scaled_inplace(&n, 1.0)?;
                        }
                    }
                }
            }
        }
        // lint:allow(panic-in-worker): chunks() never yields an empty batch
        let mut accumulated = accumulated.expect("non-empty batch");
        let scale = 1.0 / batch.len() as f32;
        for layer in &mut accumulated {
            for g in layer {
                g.map_inplace(|v| v * scale);
            }
        }

        // Momentum update: v = momentum * v + g; p -= lr * v.
        if self.config.momentum > 0.0 {
            match &mut self.velocity {
                None => self.velocity = Some(accumulated.clone()),
                Some(vel) => {
                    for (vl, gl) in vel.iter_mut().zip(&accumulated) {
                        for (v, g) in vl.iter_mut().zip(gl) {
                            v.map_inplace(|x| x * self.config.momentum);
                            v.add_scaled_inplace(g, 1.0)?;
                        }
                    }
                }
            }
        }
        let update = if self.config.momentum > 0.0 {
            self.velocity
                .as_ref()
                // lint:allow(panic-in-worker): seeded by the momentum branch just above
                .expect("velocity initialised")
                .clone()
        } else {
            accumulated
        };
        let grads = crate::NetworkGrads {
            param_grads: update,
            input_grad: Tensor::default(),
        };
        network.apply_gradients(&grads, self.config.learning_rate)?;
        Ok(batch_loss / batch.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn toy_dataset(rng: &mut Rng64, per_class: usize) -> Vec<(Tensor, usize)> {
        // Two linearly separable Gaussian blobs in 6 dimensions.
        let mut samples = Vec::new();
        for class in 0..2usize {
            let centre = if class == 0 { 1.0 } else { -1.0 };
            for _ in 0..per_class {
                let data: Vec<f32> = (0..6).map(|_| centre + 0.3 * rng.normal()).collect();
                samples.push((Tensor::from_vec(data, &[6]).unwrap(), class));
            }
        }
        samples
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut rng = Rng64::new(42);
        let samples = toy_dataset(&mut rng, 30);
        let mut net = zoo::mlp_net(&[6], 2, &mut rng).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 15,
            batch_size: 8,
            learning_rate: 0.1,
            momentum: 0.9,
            seed: 1,
        });
        let report = trainer.fit(&mut net, &samples).unwrap();
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
        assert!(
            report.final_accuracy > 0.9,
            "accuracy {}",
            report.final_accuracy
        );
        assert!(trainer.evaluate(&net, &samples).unwrap() > 0.9);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut rng = Rng64::new(0);
        let mut net = zoo::mlp_net(&[6], 2, &mut rng).unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        assert_eq!(
            trainer.fit(&mut net, &[]).unwrap_err(),
            NnError::EmptyDataset
        );
        assert!(trainer.evaluate(&net, &[]).is_err());
    }

    #[test]
    fn out_of_range_label_is_rejected() {
        let mut rng = Rng64::new(0);
        let mut net = zoo::mlp_net(&[6], 2, &mut rng).unwrap();
        let samples = vec![(Tensor::ones(&[6]), 5usize)];
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(matches!(
            trainer.fit(&mut net, &samples),
            Err(NnError::InvalidLabel { .. })
        ));
    }

    #[test]
    fn momentum_free_training_also_learns() {
        let mut rng = Rng64::new(7);
        let samples = toy_dataset(&mut rng, 20);
        let mut net = zoo::mlp_net(&[6], 2, &mut rng).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 20,
            momentum: 0.0,
            learning_rate: 0.2,
            batch_size: 4,
            seed: 3,
        });
        let report = trainer.fit(&mut net, &samples).unwrap();
        assert!(report.final_accuracy > 0.85);
    }
}
