//! # ptolemy-nn
//!
//! The DNN inference/training substrate of the Ptolemy reproduction.
//!
//! The Ptolemy detection framework treats a DNN inference like an imperative program
//! execution: every output neuron is a sum of *partial sums*, and the detector needs
//! to ask, for any output neuron of any layer, "which input elements contributed how
//! much?".  This crate therefore exposes, in addition to the usual
//! forward/backward/training machinery:
//!
//! * [`Layer::contributions`] — the per-output-neuron partial-sum decomposition used
//!   by the important-neuron extraction algorithms (paper Fig. 3);
//! * [`Network::forward_with_sink`] / [`Network::forward_with_sink_batch`] —
//!   the **streaming drivers**: a forward pass hands each activation boundary
//!   to a [`TraceSink`] the moment the producing layer finishes, before the
//!   next layer starts.  The driver itself keeps only the current layer's
//!   input and output alive, so what outlives a layer is entirely the sink's
//!   decision — a selective sink observes a whole inference in O(largest
//!   layer) memory.  This is the hook `ptolemy-core` uses to overlap path
//!   extraction with the next layer's inference (the paper's Sec. III-C
//!   compiler insight) and to drop activations eagerly;
//! * [`Network::forward_trace`] — the materializing adapter over the streaming
//!   driver: a keep-everything sink recording each activation boundary
//!   **once** (`activations[i + 1]` is both layer `i`'s output and layer
//!   `i + 1`'s input — no duplicated storage) so extraction can run after the
//!   fact;
//! * [`Network::forward_batch`] / [`Network::forward_trace_batch`] — the fused
//!   NCHW batch path: B inputs are stacked into one `[B, C, H, W]` tensor and
//!   executed layer by layer through [`Layer::forward_batch`] (batched
//!   `im2col`/matmul for convolutions, weight-row-reuse kernels for dense
//!   layers).  The resulting [`BatchTrace`] slices back to per-input
//!   [`ForwardTrace`]s **bit-for-bit identical** to the per-input path — each
//!   output element depends only on its own input sample, and every fused
//!   kernel preserves the single-sample reduction order exactly;
//! * [`Network::input_gradient`] — the loss gradient w.r.t. the input, which the
//!   attack generators in `ptolemy-attacks` need;
//! * a [`zoo`] of small architectures standing in for AlexNet, ResNet-18, VGG and
//!   friends at laptop scale.
//!
//! # Example
//!
//! ```
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), ptolemy_nn::NnError> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 3, &mut rng)?;
//! let samples = vec![
//!     (Tensor::full(&[8], 1.0), 0usize),
//!     (Tensor::full(&[8], -1.0), 1usize),
//! ];
//! let mut trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::default() });
//! trainer.fit(&mut net, &samples)?;
//! let class = net.predict(&samples[0].0)?;
//! assert!(class < 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
pub mod layer;
mod loss;
mod network;
mod quant;
mod trace;
mod train;
pub mod zoo;

pub use error::NnError;
pub use layer::{Contribution, Layer, LayerGrads, LayerKind};
pub use loss::{cross_entropy_loss, softmax_cross_entropy_grad};
pub use network::{Network, NetworkGrads};
pub use quant::QuantizedNetwork;
pub use trace::{predicted_class, BatchTrace, ForwardTrace, LayerTimingSink, TraceSink};
pub use train::{TrainConfig, TrainReport, Trainer};

/// Cached [`std::thread::available_parallelism`] (clamped to at least 1).
///
/// The std lookup re-reads cgroup state on Linux — microseconds per call, far
/// too slow for per-layer or per-batch queries on hot paths.  Every Ptolemy
/// crate that fans work out over scoped threads (the fused batch kernels here,
/// `ptolemy_core::par_map`) shares this single cached read.
pub fn available_parallelism() -> usize {
    batch::parallelism()
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
