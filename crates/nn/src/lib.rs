//! # ptolemy-nn
//!
//! The DNN inference/training substrate of the Ptolemy reproduction.
//!
//! The Ptolemy detection framework treats a DNN inference like an imperative program
//! execution: every output neuron is a sum of *partial sums*, and the detector needs
//! to ask, for any output neuron of any layer, "which input elements contributed how
//! much?".  This crate therefore exposes, in addition to the usual
//! forward/backward/training machinery:
//!
//! * [`Layer::contributions`] — the per-output-neuron partial-sum decomposition used
//!   by the important-neuron extraction algorithms (paper Fig. 3);
//! * [`Network::forward_trace`] — a forward pass that records every layer's input
//!   and output activations so extraction can run after (backward extraction) or
//!   during (forward extraction) inference;
//! * [`Network::forward_batch`] / [`Network::forward_trace_batch`] — the fused
//!   NCHW batch path: B inputs are stacked into one `[B, C, H, W]` tensor and
//!   executed layer by layer through [`Layer::forward_batch`] (batched
//!   `im2col`/matmul for convolutions, weight-row-reuse kernels for dense
//!   layers).  The resulting [`BatchTrace`] slices back to per-input
//!   [`ForwardTrace`]s **bit-for-bit identical** to the per-input path — each
//!   output element depends only on its own input sample, and every fused
//!   kernel preserves the single-sample reduction order exactly;
//! * [`Network::input_gradient`] — the loss gradient w.r.t. the input, which the
//!   attack generators in `ptolemy-attacks` need;
//! * a [`zoo`] of small architectures standing in for AlexNet, ResNet-18, VGG and
//!   friends at laptop scale.
//!
//! # Example
//!
//! ```
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), ptolemy_nn::NnError> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 3, &mut rng)?;
//! let samples = vec![
//!     (Tensor::full(&[8], 1.0), 0usize),
//!     (Tensor::full(&[8], -1.0), 1usize),
//! ];
//! let mut trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::default() });
//! trainer.fit(&mut net, &samples)?;
//! let class = net.predict(&samples[0].0)?;
//! assert!(class < 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
mod error;
pub mod layer;
mod loss;
mod network;
mod trace;
mod train;
pub mod zoo;

pub use error::NnError;
pub use layer::{Contribution, Layer, LayerGrads, LayerKind};
pub use loss::{cross_entropy_loss, softmax_cross_entropy_grad};
pub use network::{Network, NetworkGrads};
pub use trace::{BatchTrace, ForwardTrace};
pub use train::{TrainConfig, TrainReport, Trainer};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
