//! Softmax cross-entropy loss helpers shared by training and attack generation.

use ptolemy_tensor::Tensor;

use crate::{NnError, Result};

/// Softmax cross-entropy loss of a logits vector against an integer label.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabel`] if `label` is out of range for the logits
/// length, or [`NnError::Tensor`] if the logits tensor is empty.
///
/// # Example
///
/// ```
/// use ptolemy_nn::cross_entropy_loss;
/// use ptolemy_tensor::Tensor;
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let confident = Tensor::from_vec(vec![10.0, -10.0], &[2])?;
/// assert!(cross_entropy_loss(&confident, 0)? < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy_loss(logits: &Tensor, label: usize) -> Result<f32> {
    check_label(logits, label)?;
    let max = logits.max()?;
    let log_sum: f32 = logits
        .as_slice()
        .iter()
        .map(|v| (v - max).exp())
        .sum::<f32>()
        .ln();
    Ok(log_sum - (logits.as_slice()[label] - max))
}

/// Gradient of [`cross_entropy_loss`] with respect to the logits
/// (`softmax(logits) - onehot(label)`).
///
/// # Errors
///
/// Returns [`NnError::InvalidLabel`] if `label` is out of range.
pub fn softmax_cross_entropy_grad(logits: &Tensor, label: usize) -> Result<Tensor> {
    check_label(logits, label)?;
    let max = logits.max()?;
    let exps: Vec<f32> = logits.as_slice().iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut grad: Vec<f32> = exps.into_iter().map(|e| e / sum).collect();
    grad[label] -= 1.0;
    Ok(Tensor::from_vec(grad, logits.dims())?)
}

fn check_label(logits: &Tensor, label: usize) -> Result<()> {
    if logits.is_empty() {
        return Err(NnError::Tensor(ptolemy_tensor::TensorError::Empty(
            "cross_entropy_loss",
        )));
    }
    if label >= logits.len() {
        return Err(NnError::InvalidLabel {
            label,
            num_classes: logits.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_for_confident_correct_prediction() {
        let logits = Tensor::from_vec(vec![8.0, 0.0, -4.0], &[3]).unwrap();
        assert!(cross_entropy_loss(&logits, 0).unwrap() < 0.01);
        assert!(cross_entropy_loss(&logits, 2).unwrap() > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_n() {
        let logits = Tensor::zeros(&[4]);
        let loss = cross_entropy_loss(&logits, 1).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let grad = softmax_cross_entropy_grad(&logits, 2).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (cross_entropy_loss(&lp, 2).unwrap() - cross_entropy_loss(&lm, 2).unwrap())
                / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3);
        }
        // Gradient entries sum to zero (softmax sums to one, one-hot sums to one).
        assert!(grad.sum().abs() < 1e-5);
    }

    #[test]
    fn invalid_label_is_rejected() {
        let logits = Tensor::zeros(&[3]);
        assert!(cross_entropy_loss(&logits, 3).is_err());
        assert!(softmax_cross_entropy_grad(&logits, 5).is_err());
        assert!(cross_entropy_loss(&Tensor::zeros(&[0]), 0).is_err());
    }
}
