use ptolemy_tensor::Tensor;

use crate::Result;

/// Record of a full forward pass through a [`crate::Network`].
///
/// `inputs[i]` / `outputs[i]` are the activations entering and leaving layer `i`
/// (single sample, no batch dimension).  The Ptolemy extraction algorithms consume
/// this trace: backward extraction walks it from the last layer to the first,
/// forward extraction walks it in layer order, and the per-layer partial sums are
/// recomputed on demand from `inputs[i]` via [`crate::Layer::contributions`].
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Input activation of each layer.
    pub inputs: Vec<Tensor>,
    /// Output activation of each layer (`outputs[i] == inputs[i + 1]`).
    pub outputs: Vec<Tensor>,
}

impl ForwardTrace {
    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.outputs.len()
    }

    /// Final network output (logits).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty; [`crate::Network::forward_trace`] never
    /// produces an empty trace for a non-empty network.
    pub fn logits(&self) -> &Tensor {
        self.outputs
            .last()
            .expect("forward trace of a non-empty network")
    }

    /// Index of the predicted class (argmax of the logits).
    pub fn predicted_class(&self) -> usize {
        self.logits().argmax().unwrap_or(0)
    }
}

/// Record of one fused forward pass over a whole batch
/// ([`crate::Network::forward_trace_batch`]).
///
/// Activations are stored stacked: `inputs[i]` / `outputs[i]` have shape
/// `[B] ++ layer_shape` (NCHW convention — sample `b` is the contiguous slab
/// `b` of the leading dimension).  [`BatchTrace::trace`] slices one sample's
/// activations back out as an ordinary [`ForwardTrace`]; because the fused
/// kernels are bit-for-bit identical to the per-input path, the sliced trace
/// equals `forward_trace` of that sample exactly, so the extraction algorithms
/// in `ptolemy-core` can consume the slices without any tolerance.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    batch_size: usize,
    /// Stacked input activation of each layer (`[B] ++ layer_input_shape`).
    pub inputs: Vec<Tensor>,
    /// Stacked output activation of each layer (`[B] ++ layer_output_shape`).
    pub outputs: Vec<Tensor>,
}

impl BatchTrace {
    /// Assembles a batch trace from stacked per-layer activations.
    pub(crate) fn new(batch_size: usize, inputs: Vec<Tensor>, outputs: Vec<Tensor>) -> Self {
        BatchTrace {
            batch_size,
            inputs,
            outputs,
        }
    }

    /// Number of samples in the fused batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.outputs.len()
    }

    /// Slices sample `index` out of the fused trace as a per-input
    /// [`ForwardTrace`] (bit-for-bit what `forward_trace` on that sample alone
    /// records).
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= batch_size()`.
    pub fn trace(&self, index: usize) -> Result<ForwardTrace> {
        let slice_all = |tensors: &[Tensor]| -> Result<Vec<Tensor>> {
            tensors.iter().map(|t| Ok(t.slice_batch(index)?)).collect()
        };
        Ok(ForwardTrace {
            inputs: slice_all(&self.inputs)?,
            outputs: slice_all(&self.outputs)?,
        })
    }

    /// Final logits of sample `index`.
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= batch_size()`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty; [`crate::Network::forward_trace_batch`]
    /// never produces an empty trace for a non-empty network.
    pub fn logits(&self, index: usize) -> Result<Tensor> {
        Ok(self
            .outputs
            .last()
            .expect("batch trace of a non-empty network")
            .slice_batch(index)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accessors() {
        let trace = ForwardTrace {
            inputs: vec![Tensor::zeros(&[4])],
            outputs: vec![Tensor::from_vec(vec![0.1, 0.9, 0.0], &[3]).unwrap()],
        };
        assert_eq!(trace.num_layers(), 1);
        assert_eq!(trace.predicted_class(), 1);
        assert_eq!(trace.logits().len(), 3);
    }

    #[test]
    fn batch_trace_slices_back_to_per_sample_traces() {
        // Two samples, one layer: inputs [2, 4], outputs [2, 3].
        let inputs = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 4]).unwrap();
        let outputs = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        let batch = BatchTrace::new(2, vec![inputs], vec![outputs]);
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.num_layers(), 1);
        let t0 = batch.trace(0).unwrap();
        assert_eq!(t0.inputs[0].as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t0.predicted_class(), 1);
        let t1 = batch.trace(1).unwrap();
        assert_eq!(t1.predicted_class(), 0);
        assert_eq!(batch.logits(1).unwrap().as_slice(), &[0.7, 0.2, 0.1]);
        assert!(batch.trace(2).is_err());
    }
}
