use ptolemy_tensor::Tensor;

/// Record of a full forward pass through a [`crate::Network`].
///
/// `inputs[i]` / `outputs[i]` are the activations entering and leaving layer `i`
/// (single sample, no batch dimension).  The Ptolemy extraction algorithms consume
/// this trace: backward extraction walks it from the last layer to the first,
/// forward extraction walks it in layer order, and the per-layer partial sums are
/// recomputed on demand from `inputs[i]` via [`crate::Layer::contributions`].
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Input activation of each layer.
    pub inputs: Vec<Tensor>,
    /// Output activation of each layer (`outputs[i] == inputs[i + 1]`).
    pub outputs: Vec<Tensor>,
}

impl ForwardTrace {
    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.outputs.len()
    }

    /// Final network output (logits).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty; [`crate::Network::forward_trace`] never
    /// produces an empty trace for a non-empty network.
    pub fn logits(&self) -> &Tensor {
        self.outputs
            .last()
            .expect("forward trace of a non-empty network")
    }

    /// Index of the predicted class (argmax of the logits).
    pub fn predicted_class(&self) -> usize {
        self.logits().argmax().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accessors() {
        let trace = ForwardTrace {
            inputs: vec![Tensor::zeros(&[4])],
            outputs: vec![Tensor::from_vec(vec![0.1, 0.9, 0.0], &[3]).unwrap()],
        };
        assert_eq!(trace.num_layers(), 1);
        assert_eq!(trace.predicted_class(), 1);
        assert_eq!(trace.logits().len(), 3);
    }
}
