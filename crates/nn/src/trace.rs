//! Forward-pass observation: the streaming [`TraceSink`] abstraction and the
//! materialized [`ForwardTrace`] / [`BatchTrace`] records built on top of it.
//!
//! A forward pass produces `num_layers + 1` *activation boundaries*: boundary
//! `0` is the network input, boundary `i + 1` is layer `i`'s output (which is
//! also layer `i + 1`'s input — the two were historically stored twice, as
//! `inputs[i + 1]` *and* `outputs[i]`; they are now stored once).  A
//! [`TraceSink`] observes the boundaries as they are produced by
//! [`crate::Network::forward_with_sink`], deciding per layer what to keep —
//! the hook that lets `ptolemy-core` run path extraction *during* inference
//! and drop activations eagerly instead of materialising the whole trace.

use std::sync::Arc;

use ptolemy_obs::{HistogramHandle, Registry};
use ptolemy_tensor::Tensor;

use crate::{NnError, Result};

/// Layer-indexed observer of a forward pass — the streaming alternative to
/// materialising a full [`ForwardTrace`].
///
/// [`crate::Network::forward_with_sink`] (and its batched twin) call
/// [`TraceSink::on_input`] once with the activation entering layer 0, then
/// [`TraceSink::on_layer`] after each layer finishes, **before** the next
/// layer starts.  The sink only borrows the activation: it clones what it
/// needs to keep and lets everything else die with the driver's scratch
/// buffer, so a sink that retains nothing observes an entire forward pass in
/// O(largest layer) memory.  For the batched driver the tensors are stacked
/// (`[B] ++ shape`, NCHW).
///
/// Sinks are infallible by design — a sink that can fail (e.g. a channel to a
/// worker thread) records the failure internally and surfaces it after the
/// drive; the forward pass itself never turns back.
pub trait TraceSink {
    /// Observes the activation entering layer 0 (boundary 0).
    fn on_input(&mut self, _input: &Tensor) {}

    /// Observes layer `index`'s freshly produced output activation (boundary
    /// `index + 1`), called before layer `index + 1` runs.
    fn on_layer(&mut self, index: usize, output: &Tensor);
}

/// A [`TraceSink`] that keeps every boundary — the adapter that turns the
/// streaming driver back into a materialized trace.
#[derive(Debug, Default)]
pub(crate) struct TraceRecorder {
    pub(crate) activations: Vec<Tensor>,
}

impl TraceRecorder {
    pub(crate) fn with_capacity(num_layers: usize) -> Self {
        TraceRecorder {
            activations: Vec::with_capacity(num_layers + 1),
        }
    }
}

impl TraceSink for TraceRecorder {
    fn on_input(&mut self, input: &Tensor) {
        self.activations.push(input.clone());
    }

    fn on_layer(&mut self, _index: usize, output: &Tensor) {
        self.activations.push(output.clone());
    }
}

/// A [`TraceSink`] decorator that times the gap between consecutive boundary
/// deliveries — i.e. each layer's compute *plus* whatever per-layer work the
/// wrapped sink does with the boundary (for `ptolemy-core`'s streaming
/// extraction sinks, that is exactly the paper's per-layer
/// forward+extraction cost).
///
/// Timings flow into the `nn.layer_ns` histogram of the supplied
/// [`Registry`] and into a per-drive `(layer index, ns)` list retrievable
/// with [`LayerTimingSink::layer_timings`].  The whole observer is behind
/// the registry's [`Registry::enabled`] gate: when disabled, `on_input` /
/// `on_layer` forward to the wrapped sink with one relaxed atomic load of
/// added cost and record nothing.
#[derive(Debug)]
pub struct LayerTimingSink<S> {
    inner: S,
    registry: Arc<Registry>,
    hist: HistogramHandle,
    last_ns: Option<u64>,
    layers: Vec<(usize, u64)>,
}

impl<S: TraceSink> LayerTimingSink<S> {
    /// Wraps `inner`, recording per-layer timings into `registry`'s
    /// `nn.layer_ns` histogram whenever the registry is enabled.
    pub fn new(inner: S, registry: Arc<Registry>) -> Self {
        let hist = registry.histogram("nn.layer_ns");
        LayerTimingSink {
            inner,
            registry,
            hist,
            last_ns: None,
            layers: Vec::new(),
        }
    }

    /// The per-layer `(layer index, duration ns)` pairs recorded so far, in
    /// delivery order (empty while the registry is disabled).
    pub fn layer_timings(&self) -> &[(usize, u64)] {
        &self.layers
    }

    /// Unwraps the decorated sink, returning it with the recorded timings.
    pub fn into_inner(self) -> (S, Vec<(usize, u64)>) {
        (self.inner, self.layers)
    }
}

impl<S: TraceSink> TraceSink for LayerTimingSink<S> {
    fn on_input(&mut self, input: &Tensor) {
        self.inner.on_input(input);
        if self.registry.enabled() {
            self.last_ns = Some(self.registry.clock().now_ns());
        }
    }

    fn on_layer(&mut self, index: usize, output: &Tensor) {
        self.inner.on_layer(index, output);
        if !self.registry.enabled() {
            return;
        }
        let now = self.registry.clock().now_ns();
        // Without an observed on_input (sink attached mid-drive) the first
        // layer has no start mark; begin timing from here instead.
        if let Some(last) = self.last_ns {
            let dur = now.saturating_sub(last);
            self.hist.record(dur);
            self.layers.push((index, dur));
        }
        self.last_ns = Some(now);
    }
}

/// Picks the predicted class from a logits tensor: the index of the largest
/// non-NaN logit.
///
/// Only NaN is excluded — infinities are totally ordered under `>`, so an
/// overflow-saturated `+∞` logit wins exactly as it does under
/// [`Tensor::argmax`] (and [`crate::Network::predict`]); filtering it out
/// would silently score the input against the wrong class's canary path.
///
/// # Errors
///
/// Returns [`NnError::InvalidLogits`] if `logits` is empty or all-NaN (the
/// historical `argmax().unwrap_or(0)` silently classified those as class 0).
pub fn predicted_class(logits: &Tensor) -> Result<usize> {
    let values = logits.as_slice();
    let mut best: Option<usize> = None;
    for (i, v) in values.iter().enumerate() {
        if !v.is_nan() && best.map_or(true, |b| *v > values[b]) {
            best = Some(i);
        }
    }
    best.ok_or_else(|| {
        NnError::InvalidLogits(if values.is_empty() {
            "logits tensor is empty".into()
        } else {
            format!("all {} logits are NaN", values.len())
        })
    })
}

/// Record of a full forward pass through a [`crate::Network`].
///
/// Stores each activation boundary exactly once: [`ForwardTrace::input`]`(i)`
/// and [`ForwardTrace::output`]`(i)` are views into the same list (layer `i`'s
/// output *is* layer `i + 1`'s input), so a materialized trace costs half of
/// what the historical `inputs`/`outputs` pair did.  The Ptolemy extraction
/// algorithms consume this trace: backward extraction walks it from the last
/// layer to the first, forward extraction walks it in layer order, and the
/// per-layer partial sums are recomputed on demand from `input(i)` via
/// [`crate::Layer::contributions`].
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `activations[0]` is the network input; `activations[i + 1]` is layer
    /// `i`'s output.
    activations: Vec<Tensor>,
}

impl ForwardTrace {
    /// Assembles a trace from its activation boundaries (`num_layers + 1`
    /// tensors: the network input followed by every layer output in order).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if fewer than two boundaries are
    /// supplied (a non-empty network has at least one layer).
    pub fn from_activations(activations: Vec<Tensor>) -> Result<Self> {
        if activations.len() < 2 {
            return Err(NnError::InvalidConfig(format!(
                "a forward trace needs at least 2 activation boundaries, got {}",
                activations.len()
            )));
        }
        Ok(ForwardTrace { activations })
    }

    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.activations.len() - 1
    }

    /// All activation boundaries: the network input followed by every layer
    /// output in order.
    pub fn activations(&self) -> &[Tensor] {
        &self.activations
    }

    /// Input activation of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_layers()` (same contract as indexing the
    /// historical `inputs` vector).
    pub fn input(&self, index: usize) -> &Tensor {
        &self.activations[index]
    }

    /// Output activation of layer `index` (identical to `input(index + 1)` for
    /// non-final layers).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_layers()`.
    pub fn output(&self, index: usize) -> &Tensor {
        &self.activations[index + 1]
    }

    /// Final network output (logits).
    pub fn logits(&self) -> &Tensor {
        self.activations
            .last()
            // lint:allow(panic-in-worker): forward_trace always records >= 2 boundaries
            .expect("a trace holds at least two boundaries")
    }

    /// Index of the predicted class (largest finite logit).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLogits`] if the logits contain no finite
    /// value — the historical `argmax().unwrap_or(0)` silently classified an
    /// all-NaN output as class 0.
    pub fn predicted_class(&self) -> Result<usize> {
        predicted_class(self.logits())
    }

    /// Total bytes of activation data this materialized trace holds resident —
    /// the baseline the streaming extraction pipeline's peak footprint is
    /// compared against.
    pub fn activation_bytes(&self) -> usize {
        self.activations
            .iter()
            .map(|t| t.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Record of one fused forward pass over a whole batch
/// ([`crate::Network::forward_trace_batch`]).
///
/// Activations are stored stacked, one tensor per boundary: boundary `i` has
/// shape `[B] ++ layer_shape` (NCHW convention — sample `b` is the contiguous
/// slab `b` of the leading dimension).  [`BatchTrace::trace`] slices one
/// sample's activations back out as an ordinary [`ForwardTrace`]; because the
/// fused kernels are bit-for-bit identical to the per-input path, the sliced
/// trace equals `forward_trace` of that sample exactly, so the extraction
/// algorithms in `ptolemy-core` can consume the slices without any tolerance.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    batch_size: usize,
    /// `activations[0]` is the stacked batch input; `activations[i + 1]` is
    /// layer `i`'s stacked output.
    activations: Vec<Tensor>,
}

impl BatchTrace {
    /// Assembles a batch trace from stacked activation boundaries.
    pub(crate) fn new(batch_size: usize, activations: Vec<Tensor>) -> Self {
        BatchTrace {
            batch_size,
            activations,
        }
    }

    /// Number of samples in the fused batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.activations.len() - 1
    }

    /// All stacked activation boundaries (`[B] ++ boundary_shape` each).
    pub fn activations(&self) -> &[Tensor] {
        &self.activations
    }

    /// Stacked input activation of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_layers()`.
    pub fn input(&self, index: usize) -> &Tensor {
        &self.activations[index]
    }

    /// Stacked output activation of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_layers()`.
    pub fn output(&self, index: usize) -> &Tensor {
        &self.activations[index + 1]
    }

    /// Slices sample `index` out of the fused trace as a per-input
    /// [`ForwardTrace`] (bit-for-bit what `forward_trace` on that sample alone
    /// records).
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= batch_size()`.
    pub fn trace(&self, index: usize) -> Result<ForwardTrace> {
        let activations = self
            .activations
            .iter()
            .map(|t| Ok(t.slice_batch(index)?))
            .collect::<Result<Vec<Tensor>>>()?;
        ForwardTrace::from_activations(activations)
    }

    /// Final logits of sample `index`.
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= batch_size()`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty; [`crate::Network::forward_trace_batch`]
    /// never produces an empty trace for a non-empty network.
    pub fn logits(&self, index: usize) -> Result<Tensor> {
        Ok(self
            .activations
            .last()
            // lint:allow(panic-in-worker): forward_trace_batch never yields an empty trace
            .expect("batch trace of a non-empty network")
            .slice_batch(index)?)
    }

    /// Total bytes of stacked activation data this materialized batch trace
    /// holds resident.
    pub fn activation_bytes(&self) -> usize {
        self.activations
            .iter()
            .map(|t| t.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accessors() {
        let trace = ForwardTrace::from_activations(vec![
            Tensor::zeros(&[4]),
            Tensor::from_vec(vec![0.1, 0.9, 0.0], &[3]).unwrap(),
        ])
        .unwrap();
        assert_eq!(trace.num_layers(), 1);
        assert_eq!(trace.predicted_class().unwrap(), 1);
        assert_eq!(trace.logits().len(), 3);
        assert_eq!(trace.input(0).len(), 4);
        assert_eq!(trace.output(0).len(), 3);
        assert_eq!(trace.activations().len(), 2);
        assert_eq!(trace.activation_bytes(), (4 + 3) * 4);
        assert!(ForwardTrace::from_activations(vec![Tensor::zeros(&[4])]).is_err());
    }

    #[test]
    fn predicted_class_rejects_degenerate_logits() {
        // All-NaN logits must error instead of silently classifying as 0.
        let nan = Tensor::from_vec(vec![f32::NAN, f32::NAN], &[2]).unwrap();
        assert!(matches!(
            predicted_class(&nan),
            Err(NnError::InvalidLogits(_))
        ));
        // An empty logits tensor errors too.
        let empty = Tensor::zeros(&[0]);
        assert!(matches!(
            predicted_class(&empty),
            Err(NnError::InvalidLogits(_))
        ));
        // Infinities stay totally ordered: a saturated +inf logit wins exactly
        // as it does under argmax (Network::predict must agree with the
        // detection pipeline's predicted class).
        let saturated = Tensor::from_vec(vec![0.0, f32::INFINITY], &[2]).unwrap();
        assert_eq!(
            predicted_class(&saturated).unwrap(),
            saturated.argmax().unwrap()
        );
        let mixed = Tensor::from_vec(vec![f32::NAN, 0.25, f32::INFINITY], &[3]).unwrap();
        assert_eq!(predicted_class(&mixed).unwrap(), 2);
        // NaN entries are skipped, never poisoning later comparisons.
        let nan_first = Tensor::from_vec(vec![f32::NAN, 2.0, 1.0], &[3]).unwrap();
        assert_eq!(predicted_class(&nan_first).unwrap(), 1);
        // Plain finite logits match argmax exactly.
        let plain = Tensor::from_vec(vec![0.1, 0.9, 0.0], &[3]).unwrap();
        assert_eq!(predicted_class(&plain).unwrap(), plain.argmax().unwrap());
        // Ties keep the first index, like argmax.
        let tie = Tensor::from_vec(vec![0.7, 0.7], &[2]).unwrap();
        assert_eq!(predicted_class(&tie).unwrap(), 0);
    }

    #[test]
    fn batch_trace_slices_back_to_per_sample_traces() {
        // Two samples, one layer: inputs [2, 4], outputs [2, 3].
        let inputs = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 4]).unwrap();
        let outputs = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        let batch = BatchTrace::new(2, vec![inputs, outputs]);
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.num_layers(), 1);
        assert_eq!(batch.input(0).dims(), &[2, 4]);
        assert_eq!(batch.output(0).dims(), &[2, 3]);
        assert_eq!(batch.activation_bytes(), (8 + 6) * 4);
        let t0 = batch.trace(0).unwrap();
        assert_eq!(t0.input(0).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t0.predicted_class().unwrap(), 1);
        let t1 = batch.trace(1).unwrap();
        assert_eq!(t1.predicted_class().unwrap(), 0);
        assert_eq!(batch.logits(1).unwrap().as_slice(), &[0.7, 0.2, 0.1]);
        assert!(batch.trace(2).is_err());
    }

    #[test]
    fn layer_timing_sink_times_gaps_and_respects_the_gate() {
        use ptolemy_obs::Clock;

        /// A sink that scripts the manual clock: each boundary "costs" 100 ns
        /// more than the previous one.
        struct Advancer {
            registry: Arc<Registry>,
            next_cost: u64,
        }
        impl TraceSink for Advancer {
            fn on_layer(&mut self, _index: usize, _output: &Tensor) {
                self.registry.clock().advance(self.next_cost);
                self.next_cost += 100;
            }
        }

        let registry = Arc::new(Registry::with_clock("nn", Clock::manual()));
        let advancer = Advancer {
            registry: Arc::clone(&registry),
            next_cost: 100,
        };
        let mut sink = LayerTimingSink::new(advancer, Arc::clone(&registry));
        let x = Tensor::zeros(&[4]);
        sink.on_input(&x);
        sink.on_layer(0, &x);
        sink.on_layer(1, &x);
        assert_eq!(sink.layer_timings(), &[(0, 100), (1, 200)]);
        let hist = registry.histogram("nn.layer_ns").snapshot();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), Some(100));
        assert_eq!(hist.max(), Some(200));

        // Disabled registry: the decorator forwards but records nothing.
        registry.set_enabled(false);
        let advancer = Advancer {
            registry: Arc::clone(&registry),
            next_cost: 100,
        };
        let mut sink = LayerTimingSink::new(advancer, Arc::clone(&registry));
        sink.on_input(&x);
        sink.on_layer(0, &x);
        let (_, timings) = sink.into_inner();
        assert!(timings.is_empty());
        assert_eq!(registry.histogram("nn.layer_ns").snapshot().count(), 2);
    }

    #[test]
    fn recorder_sink_materializes_all_boundaries() {
        let mut recorder = TraceRecorder::with_capacity(2);
        let x = Tensor::zeros(&[4]);
        let h = Tensor::ones(&[3]);
        let y = Tensor::full(&[2], 0.5);
        recorder.on_input(&x);
        recorder.on_layer(0, &h);
        recorder.on_layer(1, &y);
        let trace = ForwardTrace::from_activations(recorder.activations).unwrap();
        assert_eq!(trace.num_layers(), 2);
        assert_eq!(trace.input(1).as_slice(), h.as_slice());
        assert_eq!(trace.logits().as_slice(), y.as_slice());
    }
}
