use std::fmt;

use ptolemy_tensor::TensorError;

/// Error type for the DNN substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch, bad index, …).
    Tensor(TensorError),
    /// The network or a layer was configured inconsistently.
    InvalidConfig(String),
    /// A layer index was out of range for the network.
    LayerOutOfRange {
        /// Requested layer index.
        index: usize,
        /// Number of layers in the network.
        num_layers: usize,
    },
    /// A label was outside the valid class range.
    InvalidLabel {
        /// Offending label.
        label: usize,
        /// Number of classes.
        num_classes: usize,
    },
    /// Training was requested with an empty sample set.
    EmptyDataset,
    /// The network produced logits no class can be predicted from (empty
    /// tensor, or no finite value to take an argmax over).
    InvalidLogits(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid network configuration: {msg}"),
            NnError::LayerOutOfRange { index, num_layers } => {
                write!(
                    f,
                    "layer index {index} out of range (network has {num_layers} layers)"
                )
            }
            NnError::InvalidLabel { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            NnError::EmptyDataset => write!(f, "training requires a non-empty sample set"),
            NnError::InvalidLogits(msg) => {
                write!(f, "no class can be predicted from the logits: {msg}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::Empty("argmax"));
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(NnError::EmptyDataset.to_string().contains("non-empty"));
        assert!(NnError::LayerOutOfRange {
            index: 3,
            num_layers: 2
        }
        .to_string()
        .contains("out of range"));
        assert!(NnError::InvalidLogits("all NaN".into())
            .to_string()
            .contains("logits"));
    }
}
