//! Crate-private helpers for the fused NCHW batch path.
//!
//! The batch convention across `ptolemy-nn` is a single stacked tensor with a
//! leading batch dimension: `[B, C, H, W]` for images, `[B, features]` for
//! vectors.  Sample `b` occupies the contiguous row-major slab
//! `[b * sample_len, (b + 1) * sample_len)`, so slicing a batch back into its
//! samples is a copy, never a re-association — the foundation of the
//! bit-for-bit parity guarantee between `forward_batch` and per-input
//! `forward`.

use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

use ptolemy_tensor::Tensor;

use crate::{NnError, Result};

/// Cached [`thread::available_parallelism`]: the lookup re-reads cgroup state
/// on Linux (microseconds per call), far too slow to query per layer on the
/// fused hot path.  Exported as [`crate::available_parallelism`] so the whole
/// workspace (notably `ptolemy_core::par_map`) shares this one cached read
/// instead of each crate paying the lookup per call.
pub(crate) fn parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Validates that `batch` has shape `[B] ++ sample_shape` with `B >= 1` and
/// returns `B`.
pub(crate) fn check_batch(batch: &Tensor, sample_shape: &[usize], layer: &str) -> Result<usize> {
    let dims = batch.dims();
    let valid = dims.len() == sample_shape.len() + 1 && dims[0] >= 1 && &dims[1..] == sample_shape;
    if !valid {
        return Err(NnError::InvalidConfig(format!(
            "{layer} expects a batch of shape [B]+{sample_shape:?}, got {dims:?}"
        )));
    }
    Ok(dims[0])
}

/// Runs `f` over contiguous row chunks of `out` (a row-major `[rows, row_len]`
/// buffer), fanning the chunks out over scoped threads.
///
/// `f(first_row, chunk)` fills rows `first_row ..` of its chunk.  Each row is
/// computed by exactly one invocation, so per-element arithmetic is identical
/// to a serial pass — threading partitions the output, never a reduction.
/// Falls back to one serial call when only one core is available (or the work
/// is a single row).
pub(crate) fn par_row_chunks<F>(out: &mut [f32], rows: usize, row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    let threads = parallelism().min(rows);
    if threads <= 1 || row_len == 0 {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    thread::scope(|scope| {
        let f = &f;
        for (i, chunk) in out.chunks_mut(chunk_rows * row_len).enumerate() {
            scope.spawn(move || f(i * chunk_rows, chunk));
        }
    });
}

/// Matrix multiplication `a · b` with rows of the result computed in parallel.
///
/// Per output element the reduction runs in exactly the same order as
/// [`Tensor::matmul`] (ascending `k`, skipping zero `a` entries), so the result
/// is bit-for-bit identical to the serial product — rows are independent, and
/// threading only partitions them.
pub(crate) fn matmul_rows_parallel(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        // Delegate to the serial path for the exact shape error.
        return Ok(a.matmul(b)?);
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    par_row_chunks(&mut out, m, n, |first_row, chunk| {
        for (local, orow) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + local;
            for kk in 0..k {
                let aik = av[i * k + kk];
                // lint:allow(float-eq): sparsity skip; +/-0.0 both contribute nothing
                if aik == 0.0 {
                    continue;
                }
                let brow = &bv[kk * n..(kk + 1) * n];
                for (o, bvv) in orow.iter_mut().zip(brow) {
                    *o += aik * bvv;
                }
            }
        }
    });
    Ok(Tensor::from_vec(out, &[m, n])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_tensor::{Initializer, Rng64};

    #[test]
    fn check_batch_accepts_and_rejects() {
        let batch = Tensor::zeros(&[4, 2, 3]);
        assert_eq!(check_batch(&batch, &[2, 3], "test").unwrap(), 4);
        assert!(check_batch(&batch, &[3, 2], "test").is_err());
        assert!(check_batch(&Tensor::zeros(&[2, 3]), &[2, 3], "test").is_err());
        assert!(check_batch(&Tensor::zeros(&[0, 2, 3]), &[2, 3], "test").is_err());
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        let mut rng = Rng64::new(42);
        let a = Initializer::Uniform(1.0).build(&[7, 13], &mut rng).unwrap();
        let mut a = a;
        // Sprinkle zeros so the skip branch is exercised.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = 0.0;
            }
        }
        let b = Initializer::Uniform(1.0)
            .build(&[13, 33], &mut rng)
            .unwrap();
        let serial = a.matmul(&b).unwrap();
        let parallel = matmul_rows_parallel(&a, &b).unwrap();
        assert_eq!(serial.dims(), parallel.dims());
        for (s, p) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        // Shape errors surface like the serial path's.
        assert!(matmul_rows_parallel(&a, &Tensor::zeros(&[5, 2])).is_err());
    }

    #[test]
    fn par_row_chunks_covers_every_row_once() {
        let rows = 11;
        let row_len = 3;
        let mut out = vec![0.0f32; rows * row_len];
        par_row_chunks(&mut out, rows, row_len, |first_row, chunk| {
            for (local, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + local) as f32;
                }
            }
        });
        for (i, row) in out.chunks(row_len).enumerate() {
            assert!(row.iter().all(|v| *v == i as f32));
        }
    }
}
