//! Crate-private helpers for the fused NCHW batch path.
//!
//! The batch convention across `ptolemy-nn` is a single stacked tensor with a
//! leading batch dimension: `[B, C, H, W]` for images, `[B, features]` for
//! vectors.  Sample `b` occupies the contiguous row-major slab
//! `[b * sample_len, (b + 1) * sample_len)`, so slicing a batch back into its
//! samples is a copy, never a re-association — the foundation of the
//! bit-for-bit parity guarantee between `forward_batch` and per-input
//! `forward`.

use ptolemy_tensor::Tensor;

use crate::{NnError, Result};

/// Cached core count, shared workspace-wide.  The cache itself now lives in
/// `ptolemy_tensor::parallel` (so large standalone `Tensor::matmul` calls
/// parallelize too); this remains the nn-internal accessor and
/// [`crate::available_parallelism`] the workspace-facing export.
pub(crate) fn parallelism() -> usize {
    ptolemy_tensor::available_parallelism()
}

/// Validates that `batch` has shape `[B] ++ sample_shape` with `B >= 1` and
/// returns `B`.
pub(crate) fn check_batch(batch: &Tensor, sample_shape: &[usize], layer: &str) -> Result<usize> {
    let dims = batch.dims();
    let valid = dims.len() == sample_shape.len() + 1 && dims[0] >= 1 && &dims[1..] == sample_shape;
    if !valid {
        return Err(NnError::InvalidConfig(format!(
            "{layer} expects a batch of shape [B]+{sample_shape:?}, got {dims:?}"
        )));
    }
    Ok(dims[0])
}

/// Row-chunk partitioner — re-exported from `ptolemy_tensor::parallel`, where
/// it moved so the tensor crate's own kernels can fan rows out.  Each row is
/// computed by exactly one invocation, so per-element arithmetic is identical
/// to a serial pass — threading partitions the output, never a reduction.
pub(crate) use ptolemy_tensor::par_row_chunks;

/// Matrix multiplication `a · b` with rows of the result computed in parallel.
///
/// Delegates to the blocked row-parallel kernel in `ptolemy_tensor::gemm`:
/// per output element the reduction runs in exactly the same order as
/// [`Tensor::matmul`] (ascending `k`, skipping zero `a` entries), so the
/// result is bit-for-bit identical to the serial product — rows are
/// independent, and threading only partitions them.
pub(crate) fn matmul_rows_parallel(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    Ok(ptolemy_tensor::matmul_parallel(a, b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_tensor::{Initializer, Rng64};

    #[test]
    fn check_batch_accepts_and_rejects() {
        let batch = Tensor::zeros(&[4, 2, 3]);
        assert_eq!(check_batch(&batch, &[2, 3], "test").unwrap(), 4);
        assert!(check_batch(&batch, &[3, 2], "test").is_err());
        assert!(check_batch(&Tensor::zeros(&[2, 3]), &[2, 3], "test").is_err());
        assert!(check_batch(&Tensor::zeros(&[0, 2, 3]), &[2, 3], "test").is_err());
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        let mut rng = Rng64::new(42);
        let a = Initializer::Uniform(1.0).build(&[7, 13], &mut rng).unwrap();
        let mut a = a;
        // Sprinkle zeros so the skip branch is exercised.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = 0.0;
            }
        }
        let b = Initializer::Uniform(1.0)
            .build(&[13, 33], &mut rng)
            .unwrap();
        let serial = a.matmul(&b).unwrap();
        let parallel = matmul_rows_parallel(&a, &b).unwrap();
        assert_eq!(serial.dims(), parallel.dims());
        for (s, p) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        // Shape errors surface like the serial path's.
        assert!(matmul_rows_parallel(&a, &Tensor::zeros(&[5, 2])).is_err());
    }

    #[test]
    fn par_row_chunks_covers_every_row_once() {
        let rows = 11;
        let row_len = 3;
        let mut out = vec![0.0f32; rows * row_len];
        par_row_chunks(&mut out, rows, row_len, |first_row, chunk| {
            for (local, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + local) as f32;
                }
            }
        });
        for (i, row) in out.chunks(row_len).enumerate() {
            assert!(row.iter().all(|v| *v == i as f32));
        }
    }
}
