//! Layer abstraction and concrete layer implementations.
//!
//! The canonical [`Layer::forward`] operates on a **single sample** (no batch
//! dimension); the training loop iterates over a mini-batch and averages
//! parameter gradients.  This keeps the partial-sum bookkeeping that Ptolemy's
//! extraction algorithms rely on simple and exactly mirrors the per-input path
//! semantics of the paper.  For serving, [`Layer::forward_batch`] additionally
//! executes a stacked `[B] ++ input_shape` batch (NCHW) in one fused pass while
//! preserving the per-input reduction order bit for bit.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;
mod residual;

pub use activation::ReLU;
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::Residual;

use ptolemy_tensor::{Conv2dGeometry, Tensor};

use crate::Result;

/// Gradients produced by one layer's backward pass.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Gradient of the loss with respect to the layer input.
    pub input_grad: Tensor,
    /// Gradients of the loss with respect to each parameter tensor, in the same
    /// order as [`Layer::params`].  Empty for parameter-free layers.
    pub param_grads: Vec<Tensor>,
}

/// Partial-sum decomposition of one output neuron (paper Fig. 3).
///
/// `Weighted` lists `(input_flat_index, partial_sum)` pairs: the output neuron's
/// value is (up to the bias term) the sum of the partial sums.  `PassThrough` is
/// used by layers that merely route activations (ReLU, pooling, flatten): the output
/// neuron's importance propagates unchanged to the listed input elements.
#[derive(Debug, Clone, PartialEq)]
pub enum Contribution {
    /// Weighted partial sums from input elements.
    Weighted(Vec<(usize, f32)>),
    /// Importance passes through unchanged to these input elements.
    PassThrough(Vec<usize>),
}

impl Contribution {
    /// Indices of all contributing input elements, regardless of kind.
    pub fn indices(&self) -> Vec<usize> {
        match self {
            Contribution::Weighted(pairs) => pairs.iter().map(|(i, _)| *i).collect(),
            Contribution::PassThrough(idx) => idx.clone(),
        }
    }
}

/// Coarse classification of a layer used by the compiler and the hardware model.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Fully-connected layer with `inputs × outputs` weights.
    Dense {
        /// Number of input features.
        inputs: usize,
        /// Number of output features.
        outputs: usize,
    },
    /// 2-D convolution.
    Conv2d {
        /// Convolution geometry (input size, kernel, stride, padding, output size).
        geometry: Conv2dGeometry,
        /// Number of output channels.
        out_channels: usize,
    },
    /// Element-wise activation (ReLU).
    Activation,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Shape-only change.
    Reshape,
    /// Residual block wrapping inner layers.
    Residual {
        /// Kinds of the wrapped layers, in order.
        inner: Vec<LayerKind>,
    },
}

impl LayerKind {
    /// `true` if the layer holds trainable weights and therefore participates in
    /// important-neuron extraction.
    pub fn is_weight_layer(&self) -> bool {
        matches!(
            self,
            LayerKind::Dense { .. } | LayerKind::Conv2d { .. } | LayerKind::Residual { .. }
        )
    }

    /// Number of multiply-accumulate operations one inference of this layer performs.
    pub fn macs(&self) -> u64 {
        match self {
            LayerKind::Dense { inputs, outputs } => (*inputs as u64) * (*outputs as u64),
            LayerKind::Conv2d {
                geometry,
                out_channels,
            } => {
                geometry.patch_len() as u64 * geometry.num_patches() as u64 * (*out_channels as u64)
            }
            LayerKind::Residual { inner } => inner.iter().map(LayerKind::macs).sum(),
            _ => 0,
        }
    }
}

/// A neural-network layer operating on a single sample.
///
/// The trait is object-safe: networks store `Box<dyn Layer>`.
pub trait Layer: Send + Sync {
    /// Short human-readable layer name (e.g. `"conv2d"`).
    fn name(&self) -> &'static str;

    /// Shape of the output given the (per-sample) input shape this layer was built
    /// for.
    fn output_shape(&self) -> Vec<usize>;

    /// Shape of the input this layer expects.
    fn input_shape(&self) -> Vec<usize>;

    /// Computes the layer output for a single sample.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the layer's expected input shape.
    fn forward(&self, input: &Tensor) -> Result<Tensor>;

    /// Computes the layer output for a stacked batch (`[B] ++ input_shape`,
    /// NCHW convention), returning `[B] ++ output_shape`.
    ///
    /// The contract is **bit-for-bit parity** with the per-input path: row `b`
    /// of the result must be identical to `forward(&batch.slice_batch(b)?)?` —
    /// each output element depends only on its own input sample and its
    /// reduction order must match the single-sample kernel exactly.  The
    /// default implementation is the per-input loop itself; the conv, dense,
    /// pooling, activation, flatten and residual layers override it with fused
    /// kernels (batched `im2col`/matmul for convolutions) that preserve the
    /// same per-element order.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch` is not `[B] ++ input_shape` with `B >= 1`.
    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let batch_size = crate::batch::check_batch(batch, &self.input_shape(), self.name())?;
        let outputs: Vec<Tensor> = (0..batch_size)
            .map(|b| self.forward(&batch.slice_batch(b)?))
            .collect::<Result<_>>()?;
        Ok(Tensor::stack(&outputs)?)
    }

    /// Computes input and parameter gradients given the upstream gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes are inconsistent with the layer configuration.
    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads>;

    /// Trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable access to trainable parameters, in the same order as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Partial-sum decomposition of output neuron `out_idx` (flat index into the
    /// output) for the given input.
    ///
    /// # Errors
    ///
    /// Returns an error if `out_idx` is out of range or `input` has the wrong shape.
    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution>;

    /// `true` if the *index routing* of [`Layer::contributions`] never depends
    /// on activation values — i.e. [`Layer::static_routing`] returns `Some`
    /// for every in-range output index.
    ///
    /// ReLU and flatten route each output to the same-index input; average
    /// pooling always routes to its fixed window members.  Max pooling routes
    /// to the window's arg-max, which depends on the input, so it stays
    /// `false` (the conservative default).  The streaming extraction pipeline
    /// in `ptolemy-core` uses this to decide which layer inputs a backward
    /// program must retain: statically-routed pass-through layers can have
    /// their activations dropped the moment the next layer starts.
    fn has_static_routing(&self) -> bool {
        false
    }

    /// Input indices output neuron `out_idx`'s importance routes to, when that
    /// routing is input-independent ([`Layer::has_static_routing`]); `None`
    /// when the routing needs the actual input activations.
    ///
    /// Implementations must keep this bit-for-bit consistent with
    /// [`Layer::contributions`]: `static_routing(i)` is either `None` or
    /// exactly `contributions(input, i)?.indices()` for every valid input.
    ///
    /// # Errors
    ///
    /// Returns an error if `out_idx` is out of range.
    fn static_routing(&self, out_idx: usize) -> Result<Option<Vec<usize>>> {
        let _ = out_idx;
        Ok(None)
    }

    /// Coarse layer classification for cost modelling and compilation.
    fn kind(&self) -> LayerKind;

    /// Flat number of output elements.
    fn output_len(&self) -> usize {
        self.output_shape().iter().product()
    }

    /// Flat number of input elements.
    fn input_len(&self) -> usize {
        self.input_shape().iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribution_indices() {
        let w = Contribution::Weighted(vec![(3, 0.5), (7, 0.1)]);
        assert_eq!(w.indices(), vec![3, 7]);
        let p = Contribution::PassThrough(vec![2]);
        assert_eq!(p.indices(), vec![2]);
    }

    #[test]
    fn layer_kind_macs() {
        let dense = LayerKind::Dense {
            inputs: 10,
            outputs: 4,
        };
        assert_eq!(dense.macs(), 40);
        assert!(dense.is_weight_layer());
        assert!(!LayerKind::Activation.is_weight_layer());
        assert_eq!(LayerKind::Reshape.macs(), 0);

        let geom = Conv2dGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let conv = LayerKind::Conv2d {
            geometry: geom,
            out_channels: 4,
        };
        assert_eq!(conv.macs(), 27 * 64 * 4);

        let res = LayerKind::Residual {
            inner: vec![dense.clone(), dense],
        };
        assert_eq!(res.macs(), 80);
        assert!(res.is_weight_layer());
    }
}
