use ptolemy_tensor::Tensor;

use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// Residual block: `y = relu(body(x) + x)` where `body` is a short stack of inner
/// layers whose output shape equals the input shape.
///
/// The block is treated as a **single extraction unit** by the Ptolemy framework:
/// paths index neurons per network layer, and a residual block is one network layer.
/// The partial-sum decomposition of an output neuron combines the contributions of
/// the last inner layer (computed on the body's intermediate activation) with the
/// identity shortcut contribution `x[out_idx]` (paper Sec. III-A generalises
/// naturally: the shortcut is a partial sum with weight 1).
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    shape: Vec<usize>,
    post_relu: bool,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("shape", &self.shape)
            .field("body_layers", &self.body.len())
            .field("post_relu", &self.post_relu)
            .finish()
    }
}

impl Residual {
    /// Wraps `body` into a residual block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the body is empty, if consecutive inner
    /// layers disagree on shapes, or if the body output shape differs from its input
    /// shape (the shortcut requires matching shapes).
    pub fn new(body: Vec<Box<dyn Layer>>, post_relu: bool) -> Result<Self> {
        if body.is_empty() {
            return Err(NnError::InvalidConfig(
                "residual body must not be empty".into(),
            ));
        }
        let shape = body[0].input_shape();
        let mut cur = shape.clone();
        for (i, layer) in body.iter().enumerate() {
            if layer.input_shape() != cur {
                return Err(NnError::InvalidConfig(format!(
                    "residual body layer {i} expects {:?} but receives {:?}",
                    layer.input_shape(),
                    cur
                )));
            }
            cur = layer.output_shape();
        }
        if cur != shape {
            return Err(NnError::InvalidConfig(format!(
                "residual body maps {shape:?} to {cur:?}; shortcut requires equal shapes"
            )));
        }
        Ok(Residual {
            body,
            shape,
            post_relu,
        })
    }

    /// Number of inner layers.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Runs the body, returning every intermediate activation (`acts[0]` is the
    /// block input, `acts[i+1]` the output of inner layer `i`).
    fn body_trace(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let mut acts = vec![input.clone()];
        for layer in &self.body {
            // lint:allow(panic-in-worker): acts is seeded with the block input
            let next = layer.forward(acts.last().expect("non-empty"))?;
            acts.push(next);
        }
        Ok(acts)
    }

    fn check(&self, input: &Tensor) -> Result<()> {
        if input.dims() != self.shape.as_slice() {
            return Err(NnError::InvalidConfig(format!(
                "residual expects shape {:?}, got {:?}",
                self.shape,
                input.dims()
            )));
        }
        Ok(())
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn output_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn input_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check(input)?;
        let acts = self.body_trace(input)?;
        // lint:allow(panic-in-worker): body_trace always yields the seed input
        let mut out = acts.last().expect("non-empty").add(input)?;
        if self.post_relu {
            out.map_inplace(|v| v.max(0.0));
        }
        Ok(out)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        crate::batch::check_batch(batch, &self.shape, self.name())?;
        // Chain the body's fused kernels, then apply the shortcut add (and the
        // optional post-ReLU) element-wise over the stacked buffer — the same
        // per-element operations as the single-sample path, in the same order.
        // lint:allow(panic-in-worker): an empty body is rejected at construction
        let (first, rest) = self.body.split_first().expect("non-empty");
        let mut cur = first.forward_batch(batch)?;
        for layer in rest {
            cur = layer.forward_batch(&cur)?;
        }
        let mut out = cur.add(batch)?;
        if self.post_relu {
            out.map_inplace(|v| v.max(0.0));
        }
        Ok(out)
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.check(input)?;
        let acts = self.body_trace(input)?;
        // lint:allow(panic-in-worker): body_trace always yields the seed input
        let pre_act = acts.last().expect("non-empty").add(input)?;

        // Gradient through the optional post-ReLU.
        let grad_pre = if self.post_relu {
            Tensor::from_vec(
                pre_act
                    .as_slice()
                    .iter()
                    .zip(grad_output.as_slice())
                    .map(|(v, g)| if *v > 0.0 { *g } else { 0.0 })
                    .collect(),
                grad_output.dims(),
            )?
        } else {
            grad_output.clone()
        };

        // Backprop through the body.
        let mut param_grads = Vec::new();
        let mut grad = grad_pre.clone();
        let mut per_layer: Vec<Vec<Tensor>> = Vec::with_capacity(self.body.len());
        for (i, layer) in self.body.iter().enumerate().rev() {
            let grads = layer.backward(&acts[i], &grad)?;
            grad = grads.input_grad;
            per_layer.push(grads.param_grads);
        }
        per_layer.reverse();
        for mut grads in per_layer {
            param_grads.append(&mut grads);
        }

        // Shortcut adds the pre-activation gradient directly to the input gradient.
        let input_grad = grad.add(&grad_pre)?;
        Ok(LayerGrads {
            input_grad,
            param_grads,
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        self.body.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.body.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.check(input)?;
        if out_idx >= self.output_len() {
            return Err(NnError::InvalidConfig(format!(
                "residual output index {out_idx} out of range"
            )));
        }
        let acts = self.body_trace(input)?;
        let last_input = &acts[acts.len() - 2];
        // lint:allow(panic-in-worker): an empty body is rejected at construction
        let last = self.body.last().expect("non-empty");
        let mut pairs = match last.contributions(last_input, out_idx)? {
            Contribution::Weighted(pairs) => pairs,
            Contribution::PassThrough(idx) => idx
                .into_iter()
                .map(|i| (i, last_input.as_slice()[i]))
                .collect(),
        };
        // Identity shortcut: the block input contributes its own value at the same
        // position.
        pairs.push((out_idx, input.as_slice()[out_idx]));
        Ok(Contribution::Weighted(pairs))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Residual {
            inner: self.body.iter().map(|l| l.kind()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, ReLU};
    use ptolemy_tensor::{Initializer, Rng64};

    fn block(rng: &mut Rng64, post_relu: bool) -> Residual {
        let conv1 = Conv2d::new(2, 2, 4, 4, 3, 1, 1, rng).unwrap();
        let relu = ReLU::new(&[2, 4, 4]);
        let conv2 = Conv2d::new(2, 2, 4, 4, 3, 1, 1, rng).unwrap();
        Residual::new(
            vec![Box::new(conv1), Box::new(relu), Box::new(conv2)],
            post_relu,
        )
        .unwrap()
    }

    #[test]
    fn forward_adds_shortcut() {
        let mut rng = Rng64::new(0);
        let res = block(&mut rng, false);
        let x = Initializer::Uniform(1.0)
            .build(&[2, 4, 4], &mut rng)
            .unwrap();
        let y = res.forward(&x).unwrap();
        assert_eq!(y.dims(), x.dims());
        // With a zero body the output would equal the input; with a random body it
        // should at least differ from the pure body output by exactly x.
        let body_only = {
            let acts = res.body_trace(&x).unwrap();
            acts.last().unwrap().clone()
        };
        let diff = y.sub(&body_only).unwrap();
        for (d, xi) in diff.as_slice().iter().zip(x.as_slice()) {
            assert!((d - xi).abs() < 1e-5);
        }
    }

    #[test]
    fn contributions_sum_close_to_preactivation() {
        let mut rng = Rng64::new(1);
        let res = block(&mut rng, false);
        let x = Initializer::Uniform(1.0)
            .build(&[2, 4, 4], &mut rng)
            .unwrap();
        let y = res.forward(&x).unwrap();
        let idx = 5;
        match res.contributions(&x, idx).unwrap() {
            Contribution::Weighted(pairs) => {
                let sum: f32 = pairs.iter().map(|(_, p)| p).sum();
                // Sum of partial sums = output - last conv bias; biases are zero here.
                assert!((sum - y.as_slice()[idx]).abs() < 1e-3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = Rng64::new(2);
        let res = block(&mut rng, true);
        let x = Initializer::Uniform(1.0)
            .build(&[2, 4, 4], &mut rng)
            .unwrap();
        let gy = Tensor::ones(&[2, 4, 4]);
        let grads = res.backward(&x, &gy).unwrap();
        let eps = 1e-3;
        for i in [0usize, 7, 13, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num =
                (res.forward(&xp).unwrap().sum() - res.forward(&xm).unwrap().sum()) / (2.0 * eps);
            let ana = grads.input_grad.as_slice()[i];
            assert!((num - ana).abs() < 2e-2, "grad {i}: {num} vs {ana}");
        }
    }

    #[test]
    fn rejects_shape_mismatched_body() {
        let mut rng = Rng64::new(3);
        // Body changes the channel count -> shortcut impossible.
        let conv = Conv2d::new(2, 3, 4, 4, 3, 1, 1, &mut rng).unwrap();
        assert!(Residual::new(vec![Box::new(conv)], false).is_err());
        assert!(Residual::new(vec![], false).is_err());
    }

    #[test]
    fn params_are_collected_from_body() {
        let mut rng = Rng64::new(4);
        let mut res = block(&mut rng, false);
        assert_eq!(res.params().len(), 4); // two convs × (weight, bias)
        assert_eq!(res.params_mut().len(), 4);
        match res.kind() {
            LayerKind::Residual { inner } => assert_eq!(inner.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
