use ptolemy_tensor::{Initializer, Rng64, Tensor};

use crate::batch::{check_batch, par_row_chunks};
use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// Fully-connected layer: `y = W·x + b` with `W` of shape `[outputs, inputs]`.
///
/// # Example
///
/// ```
/// use ptolemy_nn::layer::Dense;
/// use ptolemy_nn::Layer;
/// use ptolemy_tensor::{Rng64, Tensor};
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let mut rng = Rng64::new(0);
/// let layer = Dense::new(4, 2, &mut rng)?;
/// let y = layer.forward(&Tensor::ones(&[4]))?;
/// assert_eq!(y.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either dimension is zero.
    pub fn new(inputs: usize, outputs: usize, rng: &mut Rng64) -> Result<Self> {
        if inputs == 0 || outputs == 0 {
            return Err(NnError::InvalidConfig(
                "dense layer dimensions must be non-zero".into(),
            ));
        }
        Ok(Dense {
            weight: Initializer::HeNormal { fan_in: inputs }.build(&[outputs, inputs], rng)?,
            bias: Tensor::zeros(&[outputs]),
            inputs,
            outputs,
        })
    }

    /// Creates a dense layer from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        let dims = weight.dims().to_vec();
        if dims.len() != 2 || bias.dims() != [dims[0]] {
            return Err(NnError::InvalidConfig(format!(
                "dense weight {dims:?} and bias {:?} are inconsistent",
                bias.dims()
            )));
        }
        Ok(Dense {
            inputs: dims[1],
            outputs: dims[0],
            weight,
            bias,
        })
    }

    /// The weight matrix (`[outputs, inputs]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector (`[outputs]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.len() != self.inputs {
            return Err(NnError::InvalidConfig(format!(
                "dense layer expects {} inputs, got {}",
                self.inputs,
                input.len()
            )));
        }
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn output_shape(&self) -> Vec<usize> {
        vec![self.outputs]
    }

    fn input_shape(&self) -> Vec<usize> {
        vec![self.inputs]
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let x = input.as_slice();
        let w = self.weight.as_slice();
        let b = self.bias.as_slice();
        let mut out = vec![0.0f32; self.outputs];
        for (j, o) in out.iter_mut().enumerate() {
            let row = &w[j * self.inputs..(j + 1) * self.inputs];
            let mut acc = b[j];
            for (xi, wi) in x.iter().zip(row) {
                acc += xi * wi;
            }
            *o = acc;
        }
        Ok(Tensor::from_vec(out, &[self.outputs])?)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let batch_size = check_batch(batch, &self.input_shape(), self.name())?;
        let xs = batch.as_slice();
        let w = self.weight.as_slice();
        let b = self.bias.as_slice();
        let inputs = self.inputs;
        let outputs = self.outputs;
        let mut out = vec![0.0f32; batch_size * outputs];
        // Prefill every row with the bias, then let the blocked NT kernel
        // accumulate X · Wᵀ on top (W stays in its natural [outputs, inputs]
        // layout; the kernel packs it transposed).  Per output neuron the
        // accumulation (bias first, then x·w in input order, no sparsity
        // skip) is exactly the single-sample kernel, so the fused result is
        // bit-for-bit identical to the per-input loop.
        for row in out.chunks_mut(outputs) {
            row.copy_from_slice(b);
        }
        par_row_chunks(&mut out, batch_size, outputs, |first_sample, chunk| {
            let samples = chunk.len() / outputs;
            let x = &xs[first_sample * inputs..(first_sample + samples) * inputs];
            ptolemy_tensor::gemm_nt_into(chunk, x, w, samples, inputs, outputs);
        });
        Ok(Tensor::from_vec(out, &[batch_size, outputs])?)
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.check_input(input)?;
        if grad_output.len() != self.outputs {
            return Err(NnError::InvalidConfig(format!(
                "dense layer expects {} output grads, got {}",
                self.outputs,
                grad_output.len()
            )));
        }
        let x = input.as_slice();
        let w = self.weight.as_slice();
        let gy = grad_output.as_slice();

        let mut gx = vec![0.0f32; self.inputs];
        let mut gw = vec![0.0f32; self.outputs * self.inputs];
        for j in 0..self.outputs {
            let row = &w[j * self.inputs..(j + 1) * self.inputs];
            let g = gy[j];
            for i in 0..self.inputs {
                gx[i] += g * row[i];
                gw[j * self.inputs + i] = g * x[i];
            }
        }
        Ok(LayerGrads {
            input_grad: Tensor::from_vec(gx, &[self.inputs])?,
            param_grads: vec![
                Tensor::from_vec(gw, &[self.outputs, self.inputs])?,
                grad_output.clone(),
            ],
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.check_input(input)?;
        if out_idx >= self.outputs {
            return Err(NnError::InvalidConfig(format!(
                "output index {out_idx} out of range for {} outputs",
                self.outputs
            )));
        }
        let x = input.as_slice();
        let row = &self.weight.as_slice()[out_idx * self.inputs..(out_idx + 1) * self.inputs];
        let partials = x
            .iter()
            .zip(row)
            .enumerate()
            .map(|(i, (xi, wi))| (i, xi * wi))
            .collect();
        Ok(Contribution::Weighted(partials))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dense {
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_layer() -> Dense {
        // W = [[1, 2, 3], [0, -1, 1]], b = [0.5, -0.5]
        Dense::from_parts(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, -1.0, 1.0], &[2, 3]).unwrap(),
            Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn forward_matches_manual_computation() {
        let layer = fixed_layer();
        let x = Tensor::from_vec(vec![1.0, 1.0, 2.0], &[3]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[1.0 + 2.0 + 6.0 + 0.5, -1.0 + 2.0 - 0.5]);
    }

    #[test]
    fn contributions_sum_to_output_minus_bias() {
        let layer = fixed_layer();
        let x = Tensor::from_vec(vec![1.0, -1.0, 2.0], &[3]).unwrap();
        let y = layer.forward(&x).unwrap();
        for j in 0..2 {
            match layer.contributions(&x, j).unwrap() {
                Contribution::Weighted(pairs) => {
                    let sum: f32 = pairs.iter().map(|(_, p)| p).sum();
                    let expected = y.get(&[j]).unwrap() - layer.bias().get(&[j]).unwrap();
                    assert!((sum - expected).abs() < 1e-5);
                    assert_eq!(pairs.len(), 3);
                }
                other => panic!("expected weighted contributions, got {other:?}"),
            }
        }
        assert!(layer.contributions(&x, 2).is_err());
    }

    #[test]
    fn backward_gradients_match_numeric() {
        let mut rng = Rng64::new(9);
        let layer = Dense::new(4, 3, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![0.2, -0.3, 0.5, 1.0], &[4]).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let gy = Tensor::ones(&[3]);
        let grads = layer.backward(&x, &gy).unwrap();

        let eps = 1e-3;
        // Numeric gradient w.r.t. input.
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (layer.forward(&xp).unwrap().sum() - layer.forward(&xm).unwrap().sum())
                / (2.0 * eps);
            let ana = grads.input_grad.as_slice()[i];
            assert!((num - ana).abs() < 1e-2, "input grad {i}: {num} vs {ana}");
        }
        // Shapes of parameter gradients.
        assert_eq!(grads.param_grads[0].dims(), &[3, 4]);
        assert_eq!(grads.param_grads[1].dims(), &[3]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut rng = Rng64::new(1);
        assert!(Dense::new(0, 3, &mut rng).is_err());
        let layer = Dense::new(4, 2, &mut rng).unwrap();
        assert!(layer.forward(&Tensor::ones(&[3])).is_err());
        assert!(layer
            .backward(&Tensor::ones(&[4]), &Tensor::ones(&[3]))
            .is_err());
        assert!(Dense::from_parts(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn kind_reports_dimensions() {
        let mut rng = Rng64::new(2);
        let layer = Dense::new(5, 7, &mut rng).unwrap();
        assert_eq!(
            layer.kind(),
            LayerKind::Dense {
                inputs: 5,
                outputs: 7
            }
        );
        assert_eq!(layer.input_len(), 5);
        assert_eq!(layer.output_len(), 7);
        assert_eq!(layer.params().len(), 2);
    }
}
