use ptolemy_tensor::Tensor;

use crate::batch::{check_batch, par_row_chunks};
use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// Shared geometry for the pooling layers.
#[derive(Debug, Clone, Copy)]
struct PoolGeom {
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    out_h: usize,
    out_w: usize,
}

impl PoolGeom {
    fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if window == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "pooling window and stride must be non-zero".into(),
            ));
        }
        if in_h < window || in_w < window {
            return Err(NnError::InvalidConfig(format!(
                "pooling window {window} larger than input {in_h}x{in_w}"
            )));
        }
        Ok(PoolGeom {
            channels,
            in_h,
            in_w,
            window,
            stride,
            out_h: (in_h - window) / stride + 1,
            out_w: (in_w - window) / stride + 1,
        })
    }

    fn check(&self, input: &Tensor) -> Result<()> {
        if input.dims() != [self.channels, self.in_h, self.in_w] {
            return Err(NnError::InvalidConfig(format!(
                "pool expects shape [{}, {}, {}], got {:?}",
                self.channels,
                self.in_h,
                self.in_w,
                input.dims()
            )));
        }
        Ok(())
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.channels, self.out_h, self.out_w]
    }

    fn in_shape(&self) -> Vec<usize> {
        vec![self.channels, self.in_h, self.in_w]
    }

    /// Flat input indices covered by output position (c, oy, ox).
    fn window_indices(&self, c: usize, oy: usize, ox: usize) -> Vec<usize> {
        let mut idx = Vec::with_capacity(self.window * self.window);
        for wy in 0..self.window {
            for wx in 0..self.window {
                let y = oy * self.stride + wy;
                let x = ox * self.stride + wx;
                idx.push((c * self.in_h + y) * self.in_w + x);
            }
        }
        idx
    }

    /// Fused batch pass shared by both pooling layers: every output window is
    /// reduced by `fold` over exactly the window-index sequence the
    /// single-sample kernel visits ([`PoolGeom::window_indices`] order —
    /// `wy` outer, `wx` inner), sample slabs are independent, and samples are
    /// partitioned over threads — so the result is bit-for-bit identical to
    /// the per-input loop, while the fused pass skips the per-window index
    /// `Vec` the single-sample path allocates.
    fn forward_batch_with(
        &self,
        batch: &Tensor,
        layer: &str,
        init: f32,
        fold: impl Fn(f32, f32) -> f32 + Sync,
        finish: impl Fn(f32) -> f32 + Sync,
    ) -> Result<Tensor> {
        let batch_size = check_batch(batch, &self.in_shape(), layer)?;
        let xs = batch.as_slice();
        let in_len = self.channels * self.in_h * self.in_w;
        let out_len = self.channels * self.out_h * self.out_w;
        let mut out = vec![0.0f32; batch_size * out_len];
        par_row_chunks(&mut out, batch_size, out_len, |first_sample, chunk| {
            for (s, sample_out) in chunk.chunks_mut(out_len).enumerate() {
                let x = &xs[(first_sample + s) * in_len..(first_sample + s + 1) * in_len];
                let mut idx = 0usize;
                for c in 0..self.channels {
                    for oy in 0..self.out_h {
                        for ox in 0..self.out_w {
                            let mut acc = init;
                            for wy in 0..self.window {
                                let y = oy * self.stride + wy;
                                let row = (c * self.in_h + y) * self.in_w + ox * self.stride;
                                for wx in 0..self.window {
                                    acc = fold(acc, x[row + wx]);
                                }
                            }
                            sample_out[idx] = finish(acc);
                            idx += 1;
                        }
                    }
                }
            }
        });
        let mut dims = vec![batch_size];
        dims.extend(self.out_shape());
        Ok(Tensor::from_vec(out, &dims)?)
    }

    fn decompose(&self, out_idx: usize) -> Result<(usize, usize, usize)> {
        let per_channel = self.out_h * self.out_w;
        if out_idx >= self.channels * per_channel {
            return Err(NnError::InvalidConfig(format!(
                "pool output index {out_idx} out of range"
            )));
        }
        let c = out_idx / per_channel;
        let rem = out_idx % per_channel;
        Ok((c, rem / self.out_w, rem % self.out_w))
    }
}

/// Max pooling over square windows.
///
/// For path extraction a max-pool output neuron passes its importance to the single
/// input element that won the max — exactly how the gradient is routed.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    geom: PoolGeom,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero window/stride or a window
    /// larger than the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        Ok(MaxPool2d {
            geom: PoolGeom::new(channels, in_h, in_w, window, stride)?,
        })
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn output_shape(&self) -> Vec<usize> {
        self.geom.out_shape()
    }

    fn input_shape(&self) -> Vec<usize> {
        self.geom.in_shape()
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.geom.check(input)?;
        let x = input.as_slice();
        let mut out = Vec::with_capacity(self.geom.channels * self.geom.out_h * self.geom.out_w);
        for c in 0..self.geom.channels {
            for oy in 0..self.geom.out_h {
                for ox in 0..self.geom.out_w {
                    let m = self
                        .geom
                        .window_indices(c, oy, ox)
                        .into_iter()
                        .map(|i| x[i])
                        .fold(f32::NEG_INFINITY, f32::max);
                    out.push(m);
                }
            }
        }
        Ok(Tensor::from_vec(out, &self.geom.out_shape())?)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        self.geom
            .forward_batch_with(batch, self.name(), f32::NEG_INFINITY, f32::max, |acc| acc)
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.geom.check(input)?;
        if grad_output.dims() != self.geom.out_shape().as_slice() {
            return Err(NnError::InvalidConfig("maxpool grad shape mismatch".into()));
        }
        let x = input.as_slice();
        let gy = grad_output.as_slice();
        let mut gx = vec![0.0f32; input.len()];
        let mut out_idx = 0usize;
        for c in 0..self.geom.channels {
            for oy in 0..self.geom.out_h {
                for ox in 0..self.geom.out_w {
                    let win = self.geom.window_indices(c, oy, ox);
                    let best = win
                        .iter()
                        .copied()
                        .max_by(|a, b| {
                            x[*a]
                                .partial_cmp(&x[*b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or(win[0]);
                    gx[best] += gy[out_idx];
                    out_idx += 1;
                }
            }
        }
        Ok(LayerGrads {
            input_grad: Tensor::from_vec(gx, input.dims())?,
            param_grads: Vec::new(),
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.geom.check(input)?;
        let (c, oy, ox) = self.geom.decompose(out_idx)?;
        let x = input.as_slice();
        let win = self.geom.window_indices(c, oy, ox);
        let best = win
            .iter()
            .copied()
            .max_by(|a, b| {
                x[*a]
                    .partial_cmp(&x[*b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(win[0]);
        Ok(Contribution::PassThrough(vec![best]))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool
    }
}

/// Average pooling over square windows.
///
/// Each output neuron is a uniform weighted sum of its window, so its contributions
/// are genuine partial sums (`x / window²`).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    geom: PoolGeom,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero window/stride or a window
    /// larger than the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        Ok(AvgPool2d {
            geom: PoolGeom::new(channels, in_h, in_w, window, stride)?,
        })
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avgpool2d"
    }

    fn output_shape(&self) -> Vec<usize> {
        self.geom.out_shape()
    }

    fn input_shape(&self) -> Vec<usize> {
        self.geom.in_shape()
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.geom.check(input)?;
        let x = input.as_slice();
        let norm = (self.geom.window * self.geom.window) as f32;
        let mut out = Vec::with_capacity(self.geom.channels * self.geom.out_h * self.geom.out_w);
        for c in 0..self.geom.channels {
            for oy in 0..self.geom.out_h {
                for ox in 0..self.geom.out_w {
                    let sum: f32 = self
                        .geom
                        .window_indices(c, oy, ox)
                        .into_iter()
                        .map(|i| x[i])
                        .sum();
                    out.push(sum / norm);
                }
            }
        }
        Ok(Tensor::from_vec(out, &self.geom.out_shape())?)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let norm = (self.geom.window * self.geom.window) as f32;
        self.geom.forward_batch_with(
            batch,
            self.name(),
            0.0,
            |acc, v| acc + v,
            move |acc| acc / norm,
        )
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.geom.check(input)?;
        if grad_output.dims() != self.geom.out_shape().as_slice() {
            return Err(NnError::InvalidConfig("avgpool grad shape mismatch".into()));
        }
        let gy = grad_output.as_slice();
        let norm = (self.geom.window * self.geom.window) as f32;
        let mut gx = vec![0.0f32; input.len()];
        let mut out_idx = 0usize;
        for c in 0..self.geom.channels {
            for oy in 0..self.geom.out_h {
                for ox in 0..self.geom.out_w {
                    for i in self.geom.window_indices(c, oy, ox) {
                        gx[i] += gy[out_idx] / norm;
                    }
                    out_idx += 1;
                }
            }
        }
        Ok(LayerGrads {
            input_grad: Tensor::from_vec(gx, input.dims())?,
            param_grads: Vec::new(),
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.geom.check(input)?;
        let (c, oy, ox) = self.geom.decompose(out_idx)?;
        let x = input.as_slice();
        let norm = (self.geom.window * self.geom.window) as f32;
        let pairs = self
            .geom
            .window_indices(c, oy, ox)
            .into_iter()
            .map(|i| (i, x[i] / norm))
            .collect();
        Ok(Contribution::Weighted(pairs))
    }

    fn has_static_routing(&self) -> bool {
        true
    }

    fn static_routing(&self, out_idx: usize) -> Result<Option<Vec<usize>>> {
        // The window membership is fixed by geometry; only the partial-sum
        // *values* depend on the input, and index routing discards them.
        let (c, oy, ox) = self.geom.decompose(out_idx)?;
        Ok(Some(self.geom.window_indices(c, oy, ox)))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::AvgPool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Tensor {
        Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 4, 4],
        )
        .unwrap()
    }

    #[test]
    fn maxpool_forward() {
        let pool = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        let y = pool.forward(&image()).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let pool = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        let gy = Tensor::ones(&[1, 2, 2]);
        let g = pool.backward(&image(), &gy).unwrap();
        // Only the four max positions receive gradient.
        assert_eq!(g.input_grad.sum(), 4.0);
        assert_eq!(g.input_grad.get(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(g.input_grad.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn maxpool_contributions_point_at_max() {
        let pool = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        match pool.contributions(&image(), 0).unwrap() {
            Contribution::PassThrough(idx) => assert_eq!(idx, vec![5]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pool.contributions(&image(), 4).is_err());
    }

    #[test]
    fn avgpool_forward_and_contributions() {
        let pool = AvgPool2d::new(1, 4, 4, 2, 2).unwrap();
        let y = pool.forward(&image()).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
        match pool.contributions(&image(), 0).unwrap() {
            Contribution::Weighted(pairs) => {
                let sum: f32 = pairs.iter().map(|(_, p)| p).sum();
                assert!((sum - 3.5).abs() < 1e-5);
                assert_eq!(pairs.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn avgpool_backward_distributes_gradient() {
        let pool = AvgPool2d::new(1, 4, 4, 2, 2).unwrap();
        let gy = Tensor::ones(&[1, 2, 2]);
        let g = pool.backward(&image(), &gy).unwrap();
        assert!((g.input_grad.sum() - 4.0).abs() < 1e-5);
        assert!((g.input_grad.get(&[0, 0, 0]).unwrap() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pool_rejects_bad_config() {
        assert!(MaxPool2d::new(1, 2, 2, 3, 1).is_err());
        assert!(AvgPool2d::new(1, 4, 4, 0, 1).is_err());
        let pool = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        assert!(pool.forward(&Tensor::ones(&[1, 3, 3])).is_err());
        assert_eq!(pool.kind(), LayerKind::MaxPool);
        assert_eq!(
            AvgPool2d::new(1, 4, 4, 2, 2).unwrap().kind(),
            LayerKind::AvgPool
        );
    }
}
