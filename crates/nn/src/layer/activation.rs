use ptolemy_tensor::Tensor;

use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// Rectified linear unit applied element-wise.
///
/// ReLU is a pass-through layer for path extraction: an important neuron in its
/// output maps directly onto the same position of its input.
#[derive(Debug, Clone)]
pub struct ReLU {
    shape: Vec<usize>,
}

impl ReLU {
    /// Creates a ReLU for inputs of the given per-sample shape.
    pub fn new(shape: &[usize]) -> Self {
        ReLU {
            shape: shape.to_vec(),
        }
    }

    fn check(&self, input: &Tensor) -> Result<()> {
        if input.dims() != self.shape.as_slice() {
            return Err(NnError::InvalidConfig(format!(
                "relu expects shape {:?}, got {:?}",
                self.shape,
                input.dims()
            )));
        }
        Ok(())
    }
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn input_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check(input)?;
        Ok(input.map(|v| v.max(0.0)))
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        crate::batch::check_batch(batch, &self.shape, self.name())?;
        // Element-wise, so the fused kernel is the same map over the stacked
        // buffer — trivially bit-for-bit identical per sample.
        Ok(batch.map(|v| v.max(0.0)))
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.check(input)?;
        self.check(grad_output)?;
        let gx: Vec<f32> = input
            .as_slice()
            .iter()
            .zip(grad_output.as_slice())
            .map(|(x, g)| if *x > 0.0 { *g } else { 0.0 })
            .collect();
        Ok(LayerGrads {
            input_grad: Tensor::from_vec(gx, input.dims())?,
            param_grads: Vec::new(),
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.check(input)?;
        if out_idx >= input.len() {
            return Err(NnError::InvalidConfig(format!(
                "relu output index {out_idx} out of range"
            )));
        }
        Ok(Contribution::PassThrough(vec![out_idx]))
    }

    fn has_static_routing(&self) -> bool {
        true
    }

    fn static_routing(&self, out_idx: usize) -> Result<Option<Vec<usize>>> {
        if out_idx >= self.output_len() {
            return Err(NnError::InvalidConfig(format!(
                "relu output index {out_idx} out of range"
            )));
        }
        // Identity routing, exactly what `contributions` reports.
        Ok(Some(vec![out_idx]))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let relu = ReLU::new(&[4]);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[4]).unwrap();
        assert_eq!(relu.forward(&x).unwrap().as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let relu = ReLU::new(&[3]);
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
        let gy = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap();
        let g = relu.backward(&x, &gy).unwrap();
        assert_eq!(g.input_grad.as_slice(), &[0.0, 1.0, 1.0]);
        assert!(g.param_grads.is_empty());
    }

    #[test]
    fn contributions_pass_through() {
        let relu = ReLU::new(&[3]);
        let x = Tensor::ones(&[3]);
        assert_eq!(
            relu.contributions(&x, 2).unwrap(),
            Contribution::PassThrough(vec![2])
        );
        assert!(relu.contributions(&x, 3).is_err());
    }

    #[test]
    fn shape_checked() {
        let relu = ReLU::new(&[2, 2]);
        assert!(relu.forward(&Tensor::ones(&[4])).is_err());
        assert_eq!(relu.kind(), LayerKind::Activation);
        assert_eq!(relu.output_len(), 4);
    }
}
