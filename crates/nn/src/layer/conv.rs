use ptolemy_tensor::{col2im, im2col, im2col_batch, Conv2dGeometry, Initializer, Rng64, Tensor};

use crate::batch::{check_batch, matmul_rows_parallel};
use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// 2-D convolution over CHW activations, lowered to `im2col` + matmul.
///
/// The weight tensor is stored as `[out_channels, in_channels * k * k]`, i.e. one
/// flattened kernel per output channel, which makes the per-output-neuron partial
/// sums (the quantity Ptolemy extracts, Fig. 3 middle panel) directly addressable:
/// output neuron `(oc, oy, ox)` receives partial sum `w[oc][p] * patch[p]` from the
/// `p`-th element of its receptive field.
///
/// # Example
///
/// ```
/// use ptolemy_nn::layer::Conv2d;
/// use ptolemy_nn::Layer;
/// use ptolemy_tensor::{Rng64, Tensor};
///
/// # fn main() -> Result<(), ptolemy_nn::NnError> {
/// let mut rng = Rng64::new(0);
/// let conv = Conv2d::new(3, 4, 8, 8, 3, 1, 1, &mut rng)?;
/// let y = conv.forward(&Tensor::ones(&[3, 8, 8]))?;
/// assert_eq!(y.dims(), &[4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    geom: Conv2dGeometry,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// Arguments: input channels / output channels / input height / input width /
    /// square kernel size / stride / padding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channel counts and propagates
    /// geometry errors (kernel larger than the padded input, zero stride).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng64,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::InvalidConfig(
                "conv2d channel counts must be non-zero".into(),
            ));
        }
        let geom = Conv2dGeometry::new(in_channels, in_h, in_w, kernel, stride, padding)?;
        let fan_in = geom.patch_len();
        Ok(Conv2d {
            weight: Initializer::HeNormal { fan_in }.build(&[out_channels, fan_in], rng)?,
            bias: Tensor::zeros(&[out_channels]),
            geom,
            out_channels,
        })
    }

    /// Convolution geometry (input/output sizes, kernel, stride, padding).
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Flattened kernels, shape `[out_channels, in_channels * k * k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Per-output-channel biases.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        let expected = [self.geom.in_channels, self.geom.in_h, self.geom.in_w];
        if input.dims() != expected {
            return Err(NnError::InvalidConfig(format!(
                "conv2d expects shape {expected:?}, got {:?}",
                input.dims()
            )));
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn output_shape(&self) -> Vec<usize> {
        vec![self.out_channels, self.geom.out_h, self.geom.out_w]
    }

    fn input_shape(&self) -> Vec<usize> {
        vec![self.geom.in_channels, self.geom.in_h, self.geom.in_w]
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let cols = im2col(input, &self.geom)?;
        let out = self.weight.matmul(&cols)?; // [out_c, patches]
        let mut data = out.into_vec();
        let patches = self.geom.num_patches();
        for (oc, chunk) in data.chunks_mut(patches).enumerate() {
            let b = self.bias.as_slice()[oc];
            for v in chunk {
                *v += b;
            }
        }
        Ok(Tensor::from_vec(
            data,
            &[self.out_channels, self.geom.out_h, self.geom.out_w],
        )?)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let batch_size = check_batch(batch, &self.input_shape(), self.name())?;
        let patches = self.geom.num_patches();
        // One wide patch matrix prices the whole batch: column
        // `b * patches + j` of `cols` is exactly column `j` of sample `b`'s
        // own im2col, so the fused matmul reduces every output element in the
        // same order as the per-input path (weight rows stream once across
        // all B inputs instead of once per input).
        let cols = im2col_batch(batch, &self.geom)?;
        let fused = matmul_rows_parallel(&self.weight, &cols)?; // [out_c, B·patches]
        let wide = fused.as_slice();
        let sample_out = self.out_channels * patches;
        let mut data = vec![0.0f32; batch_size * sample_out];
        let bias = self.bias.as_slice();
        for oc in 0..self.out_channels {
            let b_oc = bias[oc];
            let row = &wide[oc * batch_size * patches..(oc + 1) * batch_size * patches];
            for b in 0..batch_size {
                let dst = &mut data[b * sample_out + oc * patches..][..patches];
                let src = &row[b * patches..(b + 1) * patches];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s + b_oc;
                }
            }
        }
        let mut dims = vec![batch_size];
        dims.extend(self.output_shape());
        Ok(Tensor::from_vec(data, &dims)?)
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.check_input(input)?;
        let out_shape = self.output_shape();
        if grad_output.dims() != out_shape.as_slice() {
            return Err(NnError::InvalidConfig(format!(
                "conv2d expects output grad shape {out_shape:?}, got {:?}",
                grad_output.dims()
            )));
        }
        let patches = self.geom.num_patches();
        let cols = im2col(input, &self.geom)?; // [patch_len, patches]
        let gy = grad_output.reshape(&[self.out_channels, patches])?;

        // dW = gy · colsᵀ ; db = row-sums of gy ; dcols = Wᵀ · gy ; dx = col2im(dcols)
        let grad_w = gy.matmul(&cols.transpose()?)?;
        let grad_b = Tensor::from_vec(
            gy.as_slice()
                .chunks(patches)
                .map(|row| row.iter().sum())
                .collect(),
            &[self.out_channels],
        )?;
        let grad_cols = self.weight.transpose()?.matmul(&gy)?;
        let grad_input = col2im(&grad_cols, &self.geom)?;

        Ok(LayerGrads {
            input_grad: grad_input,
            param_grads: vec![grad_w, grad_b],
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.check_input(input)?;
        let patches = self.geom.num_patches();
        if out_idx >= self.out_channels * patches {
            return Err(NnError::InvalidConfig(format!(
                "conv2d output index {out_idx} out of range"
            )));
        }
        let oc = out_idx / patches;
        let pos = out_idx % patches;
        let oy = pos / self.geom.out_w;
        let ox = pos % self.geom.out_w;
        let x = input.as_slice();
        let w_row =
            &self.weight.as_slice()[oc * self.geom.patch_len()..(oc + 1) * self.geom.patch_len()];
        let mut partials = Vec::with_capacity(self.geom.patch_len());
        for (p, w) in w_row.iter().enumerate() {
            if let Some((c, y, xx)) = self.geom.patch_source(oy, ox, p) {
                let idx = self.geom.input_index(c, y, xx);
                partials.push((idx, x[idx] * w));
            }
        }
        Ok(Contribution::Weighted(partials))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d {
            geometry: self.geom,
            out_channels: self.out_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_identity_kernel() {
        let mut rng = Rng64::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng).unwrap();
        // Make the 1x1 kernel an identity.
        conv.weight = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 3, 3]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn forward_matches_manual_3x3() {
        let mut rng = Rng64::new(1);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 1, 0, &mut rng).unwrap();
        conv.weight = Tensor::ones(&[1, 9]);
        conv.bias = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1]);
        assert!((y.as_slice()[0] - 45.5).abs() < 1e-5);
    }

    #[test]
    fn contributions_sum_to_output_minus_bias() {
        let mut rng = Rng64::new(2);
        let conv = Conv2d::new(2, 3, 5, 5, 3, 1, 1, &mut rng).unwrap();
        let x = Initializer::Uniform(1.0)
            .build(&[2, 5, 5], &mut rng)
            .unwrap();
        let y = conv.forward(&x).unwrap();
        for out_idx in [0usize, 7, 24, 74] {
            let oc = out_idx / 25;
            match conv.contributions(&x, out_idx).unwrap() {
                Contribution::Weighted(pairs) => {
                    let sum: f32 = pairs.iter().map(|(_, p)| p).sum();
                    let expected = y.as_slice()[out_idx] - conv.bias.as_slice()[oc];
                    assert!(
                        (sum - expected).abs() < 1e-4,
                        "neuron {out_idx}: {sum} vs {expected}"
                    );
                    // Padding positions must be excluded, so at most patch_len pairs.
                    assert!(pairs.len() <= conv.geometry().patch_len());
                }
                other => panic!("expected weighted contributions, got {other:?}"),
            }
        }
    }

    #[test]
    fn backward_input_gradient_matches_numeric() {
        let mut rng = Rng64::new(3);
        let conv = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng).unwrap();
        let x = Initializer::Uniform(1.0)
            .build(&[1, 4, 4], &mut rng)
            .unwrap();
        let gy = Tensor::ones(&[2, 4, 4]);
        let grads = conv.backward(&x, &gy).unwrap();
        let eps = 1e-3;
        for i in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num =
                (conv.forward(&xp).unwrap().sum() - conv.forward(&xm).unwrap().sum()) / (2.0 * eps);
            let ana = grads.input_grad.as_slice()[i];
            assert!((num - ana).abs() < 1e-2, "grad {i}: {num} vs {ana}");
        }
    }

    #[test]
    fn backward_weight_gradient_matches_numeric() {
        let mut rng = Rng64::new(4);
        let mut conv = Conv2d::new(1, 1, 3, 3, 2, 1, 0, &mut rng).unwrap();
        let x = Initializer::Uniform(1.0)
            .build(&[1, 3, 3], &mut rng)
            .unwrap();
        let gy = Tensor::ones(&[1, 2, 2]);
        let grads = conv.backward(&x, &gy).unwrap();
        let eps = 1e-3;
        for wi in 0..4 {
            let orig = conv.weight.as_slice()[wi];
            conv.weight.as_mut_slice()[wi] = orig + eps;
            let plus = conv.forward(&x).unwrap().sum();
            conv.weight.as_mut_slice()[wi] = orig - eps;
            let minus = conv.forward(&x).unwrap().sum();
            conv.weight.as_mut_slice()[wi] = orig;
            let num = (plus - minus) / (2.0 * eps);
            let ana = grads.param_grads[0].as_slice()[wi];
            assert!((num - ana).abs() < 1e-2, "weight grad {wi}: {num} vs {ana}");
        }
        // Bias gradient is the number of output positions (sum of ones).
        assert!((grads.param_grads[1].as_slice()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_invalid_configuration() {
        let mut rng = Rng64::new(5);
        assert!(Conv2d::new(0, 1, 4, 4, 3, 1, 1, &mut rng).is_err());
        assert!(Conv2d::new(1, 1, 2, 2, 5, 1, 0, &mut rng).is_err());
        let conv = Conv2d::new(1, 1, 4, 4, 3, 1, 1, &mut rng).unwrap();
        assert!(conv.forward(&Tensor::ones(&[1, 3, 3])).is_err());
        assert!(conv.contributions(&Tensor::ones(&[1, 4, 4]), 1000).is_err());
    }

    #[test]
    fn kind_reports_geometry() {
        let mut rng = Rng64::new(6);
        let conv = Conv2d::new(3, 8, 16, 16, 3, 1, 1, &mut rng).unwrap();
        match conv.kind() {
            LayerKind::Conv2d {
                geometry,
                out_channels,
            } => {
                assert_eq!(out_channels, 8);
                assert_eq!(geometry.out_h, 16);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(conv.output_len(), 8 * 16 * 16);
    }
}
