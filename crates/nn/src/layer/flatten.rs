use ptolemy_tensor::Tensor;

use crate::{Contribution, Layer, LayerGrads, LayerKind, NnError, Result};

/// Flattens a multi-dimensional activation into a vector.
///
/// Used between convolutional and dense stages.  Flattening is a pure reshape, so
/// importance passes straight through during path extraction.
#[derive(Debug, Clone)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer for the given per-sample input shape.
    pub fn new(input_shape: &[usize]) -> Self {
        Flatten {
            input_shape: input_shape.to_vec(),
        }
    }

    fn check(&self, input: &Tensor) -> Result<()> {
        if input.dims() != self.input_shape.as_slice() {
            return Err(NnError::InvalidConfig(format!(
                "flatten expects shape {:?}, got {:?}",
                self.input_shape,
                input.dims()
            )));
        }
        Ok(())
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn output_shape(&self) -> Vec<usize> {
        vec![self.input_shape.iter().product()]
    }

    fn input_shape(&self) -> Vec<usize> {
        self.input_shape.clone()
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check(input)?;
        Ok(input.reshape(&[input.len()])?)
    }

    fn forward_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let batch_size = crate::batch::check_batch(batch, &self.input_shape, self.name())?;
        // A reshape per sample is a reshape of the whole stacked buffer.
        Ok(batch.reshape(&[batch_size, batch.len() / batch_size])?)
    }

    fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<LayerGrads> {
        self.check(input)?;
        Ok(LayerGrads {
            input_grad: grad_output.reshape(&self.input_shape)?,
            param_grads: Vec::new(),
        })
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn contributions(&self, input: &Tensor, out_idx: usize) -> Result<Contribution> {
        self.check(input)?;
        if out_idx >= input.len() {
            return Err(NnError::InvalidConfig(format!(
                "flatten output index {out_idx} out of range"
            )));
        }
        Ok(Contribution::PassThrough(vec![out_idx]))
    }

    fn has_static_routing(&self) -> bool {
        true
    }

    fn static_routing(&self, out_idx: usize) -> Result<Option<Vec<usize>>> {
        if out_idx >= self.output_len() {
            return Err(NnError::InvalidConfig(format!(
                "flatten output index {out_idx} out of range"
            )));
        }
        // Identity routing, exactly what `contributions` reports.
        Ok(Some(vec![out_idx]))
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens() {
        let f = Flatten::new(&[2, 2, 2]);
        let x = Tensor::ones(&[2, 2, 2]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[8]);
        assert!(f.forward(&Tensor::ones(&[8])).is_err());
    }

    #[test]
    fn backward_restores_shape() {
        let f = Flatten::new(&[1, 2, 3]);
        let x = Tensor::ones(&[1, 2, 3]);
        let gy = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[6]).unwrap();
        let g = f.backward(&x, &gy).unwrap();
        assert_eq!(g.input_grad.dims(), &[1, 2, 3]);
        assert_eq!(g.input_grad.as_slice(), gy.as_slice());
    }

    #[test]
    fn contributions_pass_through() {
        let f = Flatten::new(&[2, 2]);
        let x = Tensor::ones(&[2, 2]);
        assert_eq!(
            f.contributions(&x, 3).unwrap(),
            Contribution::PassThrough(vec![3])
        );
        assert!(f.contributions(&x, 4).is_err());
        assert_eq!(f.kind(), LayerKind::Reshape);
    }
}
