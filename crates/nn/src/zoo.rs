//! Model zoo: laptop-scale stand-ins for the architectures the paper evaluates.
//!
//! | Paper model | Zoo constructor | Notes |
//! |---|---|---|
//! | AlexNet (8 weight layers) | [`conv_net`] | 5 conv + 3 dense extraction units |
//! | ResNet-18 | [`resnet_mini`] | conv stem + 8 residual blocks + transition convs + dense head (≈ 21 weight layers in 13 extraction units) |
//! | VGG-16/19 | [`vgg_mini`] | deep plain conv stack |
//! | Inception-V4 | [`inception_mini`] | mixed 1×1/3×3/5×5 kernel stack (sequential approximation of the parallel branches) |
//! | DenseNet | [`densenet_mini`] | long chain of narrow conv layers |
//! | (test helper) | [`lenet`], [`mlp_net`] | small models for unit/integration tests |
//!
//! Absolute capacity is intentionally tiny — the detection algorithms only need
//! class-distinctive activation paths, which these models develop after a few epochs
//! on the synthetic datasets of `ptolemy-data`.

use ptolemy_tensor::Rng64;

use crate::layer::{AvgPool2d, Conv2d, Dense, Flatten, Layer, MaxPool2d, ReLU, Residual};
use crate::{Network, NnError, Result};

/// Builds a plain multi-layer perceptron: `Flatten → 64 → 32 → classes` with ReLU.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for an empty input shape or zero classes.
pub fn mlp_net(input_shape: &[usize], num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if input_shape.is_empty() || num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "mlp_net requires a non-empty input shape and at least one class".into(),
        ));
    }
    let flat: usize = input_shape.iter().product();
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    if input_shape.len() > 1 {
        layers.push(Box::new(Flatten::new(input_shape)));
    }
    layers.push(Box::new(Dense::new(flat, 64, rng)?));
    layers.push(Box::new(ReLU::new(&[64])));
    layers.push(Box::new(Dense::new(64, 32, rng)?));
    layers.push(Box::new(ReLU::new(&[32])));
    layers.push(Box::new(Dense::new(32, num_classes, rng)?));
    Network::new(layers)
}

/// Builds a small LeNet-style CNN for `[channels, 8, 8]` inputs (2 conv + 2 dense).
///
/// This is the fast model used throughout the unit and integration tests.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero channels or classes.
pub fn lenet(in_channels: usize, num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if in_channels == 0 || num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "lenet requires non-zero channels and classes".into(),
        ));
    }
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_channels, 4, 8, 8, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[4, 8, 8])),
        Box::new(MaxPool2d::new(4, 8, 8, 2, 2)?),
        Box::new(Conv2d::new(4, 8, 4, 4, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[8, 4, 4])),
        Box::new(MaxPool2d::new(8, 4, 4, 2, 2)?),
        Box::new(Flatten::new(&[8, 2, 2])),
        Box::new(Dense::new(32, 24, rng)?),
        Box::new(ReLU::new(&[24])),
        Box::new(Dense::new(24, num_classes, rng)?),
    ];
    Network::new(layers)
}

/// Builds the "AlexNet-class" CNN: 5 conv + 3 dense weight layers over
/// `[3, 16, 16]` inputs.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes.
pub fn conv_net(num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "conv_net requires at least one class".into(),
        ));
    }
    let layers: Vec<Box<dyn Layer>> = vec![
        // conv1
        Box::new(Conv2d::new(3, 8, 16, 16, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[8, 16, 16])),
        Box::new(MaxPool2d::new(8, 16, 16, 2, 2)?),
        // conv2
        Box::new(Conv2d::new(8, 12, 8, 8, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[12, 8, 8])),
        Box::new(MaxPool2d::new(12, 8, 8, 2, 2)?),
        // conv3
        Box::new(Conv2d::new(12, 12, 4, 4, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[12, 4, 4])),
        // conv4
        Box::new(Conv2d::new(12, 12, 4, 4, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[12, 4, 4])),
        // conv5
        Box::new(Conv2d::new(12, 8, 4, 4, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[8, 4, 4])),
        Box::new(MaxPool2d::new(8, 4, 4, 2, 2)?),
        Box::new(Flatten::new(&[8, 2, 2])),
        // fc6 / fc7 / fc8
        Box::new(Dense::new(32, 48, rng)?),
        Box::new(ReLU::new(&[48])),
        Box::new(Dense::new(48, 32, rng)?),
        Box::new(ReLU::new(&[32])),
        Box::new(Dense::new(32, num_classes, rng)?),
    ];
    Network::new(layers)
}

fn residual_block(channels: usize, hw: usize, rng: &mut Rng64) -> Result<Residual> {
    let body: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(channels, channels, hw, hw, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[channels, hw, hw])),
        Box::new(Conv2d::new(channels, channels, hw, hw, 3, 1, 1, rng)?),
    ];
    Residual::new(body, true)
}

/// Builds the "ResNet-18-class" network: a conv stem, eight residual blocks across
/// three stages with transition convolutions, and a two-layer dense head, over
/// `[3, 8, 8]` inputs.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes.
pub fn resnet_mini(num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "resnet_mini requires at least one class".into(),
        ));
    }
    let mut layers: Vec<Box<dyn Layer>> = vec![
        // Stem.
        Box::new(Conv2d::new(3, 8, 8, 8, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[8, 8, 8])),
    ];
    // Stage 1: 3 residual blocks at 8 channels, 8x8.
    for _ in 0..3 {
        layers.push(Box::new(residual_block(8, 8, rng)?));
    }
    layers.push(Box::new(MaxPool2d::new(8, 8, 8, 2, 2)?));
    // Transition + stage 2: 3 residual blocks at 12 channels, 4x4.
    layers.push(Box::new(Conv2d::new(8, 12, 4, 4, 3, 1, 1, rng)?));
    layers.push(Box::new(ReLU::new(&[12, 4, 4])));
    for _ in 0..3 {
        layers.push(Box::new(residual_block(12, 4, rng)?));
    }
    layers.push(Box::new(MaxPool2d::new(12, 4, 4, 2, 2)?));
    // Transition + stage 3: 2 residual blocks at 16 channels, 2x2.
    layers.push(Box::new(Conv2d::new(12, 16, 2, 2, 3, 1, 1, rng)?));
    layers.push(Box::new(ReLU::new(&[16, 2, 2])));
    for _ in 0..2 {
        layers.push(Box::new(residual_block(16, 2, rng)?));
    }
    layers.push(Box::new(Flatten::new(&[16, 2, 2])));
    layers.push(Box::new(Dense::new(64, 48, rng)?));
    layers.push(Box::new(ReLU::new(&[48])));
    layers.push(Box::new(Dense::new(48, num_classes, rng)?));
    Network::new(layers)
}

/// Builds the "VGG-class" network: a deep plain stack of 3×3 convolutions with
/// interleaved pooling and a dense head, over `[3, 16, 16]` inputs (10 conv + 2
/// dense weight layers).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes.
pub fn vgg_mini(num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "vgg_mini requires at least one class".into(),
        ));
    }
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let push_conv = |layers: &mut Vec<Box<dyn Layer>>,
                     cin: usize,
                     cout: usize,
                     hw: usize,
                     rng: &mut Rng64|
     -> Result<()> {
        layers.push(Box::new(Conv2d::new(cin, cout, hw, hw, 3, 1, 1, rng)?));
        layers.push(Box::new(ReLU::new(&[cout, hw, hw])));
        Ok(())
    };
    // Block 1: 16x16, 6 channels.
    push_conv(&mut layers, 3, 6, 16, rng)?;
    push_conv(&mut layers, 6, 6, 16, rng)?;
    layers.push(Box::new(MaxPool2d::new(6, 16, 16, 2, 2)?));
    // Block 2: 8x8, 8 channels.
    push_conv(&mut layers, 6, 8, 8, rng)?;
    push_conv(&mut layers, 8, 8, 8, rng)?;
    layers.push(Box::new(MaxPool2d::new(8, 8, 8, 2, 2)?));
    // Block 3: 4x4, 12 channels, three convs.
    push_conv(&mut layers, 8, 12, 4, rng)?;
    push_conv(&mut layers, 12, 12, 4, rng)?;
    push_conv(&mut layers, 12, 12, 4, rng)?;
    layers.push(Box::new(MaxPool2d::new(12, 4, 4, 2, 2)?));
    // Block 4: 2x2, 12 channels, three convs.
    push_conv(&mut layers, 12, 12, 2, rng)?;
    push_conv(&mut layers, 12, 12, 2, rng)?;
    push_conv(&mut layers, 12, 12, 2, rng)?;
    layers.push(Box::new(Flatten::new(&[12, 2, 2])));
    layers.push(Box::new(Dense::new(48, 32, rng)?));
    layers.push(Box::new(ReLU::new(&[32])));
    layers.push(Box::new(Dense::new(32, num_classes, rng)?));
    Network::new(layers)
}

/// Builds the "Inception-class" network: alternating 1×1 / 3×3 / 5×5 convolutions.
///
/// The paper's Inception-V4 uses parallel branches that are concatenated; this
/// sequential mixture of kernel sizes exercises the same extraction behaviour
/// (receptive fields of very different sizes inside one model) without a dataflow
/// graph, which is the property Sec. VII-H measures (inter-class path similarity).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes.
pub fn inception_mini(num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "inception_mini requires at least one class".into(),
        ));
    }
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, 8, 16, 16, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[8, 16, 16])),
        Box::new(Conv2d::new(8, 8, 16, 16, 1, 1, 0, rng)?),
        Box::new(ReLU::new(&[8, 16, 16])),
        Box::new(Conv2d::new(8, 8, 16, 16, 5, 1, 2, rng)?),
        Box::new(ReLU::new(&[8, 16, 16])),
        Box::new(MaxPool2d::new(8, 16, 16, 2, 2)?),
        Box::new(Conv2d::new(8, 12, 8, 8, 1, 1, 0, rng)?),
        Box::new(ReLU::new(&[12, 8, 8])),
        Box::new(Conv2d::new(12, 12, 8, 8, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[12, 8, 8])),
        Box::new(MaxPool2d::new(12, 8, 8, 2, 2)?),
        Box::new(Conv2d::new(12, 16, 4, 4, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[16, 4, 4])),
        Box::new(AvgPool2d::new(16, 4, 4, 2, 2)?),
        Box::new(Flatten::new(&[16, 2, 2])),
        Box::new(Dense::new(64, 32, rng)?),
        Box::new(ReLU::new(&[32])),
        Box::new(Dense::new(32, num_classes, rng)?),
    ];
    Network::new(layers)
}

/// Builds the "DenseNet-class" network: a long chain of narrow 3×3 convolutions.
///
/// The concatenation-based feature reuse of real DenseNets is approximated by the
/// depth of the chain; Sec. VII-H only needs a deep model with distinctive class
/// paths.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes.
pub fn densenet_mini(num_classes: usize, rng: &mut Rng64) -> Result<Network> {
    if num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "densenet_mini requires at least one class".into(),
        ));
    }
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, 6, 8, 8, 3, 1, 1, rng)?),
        Box::new(ReLU::new(&[6, 8, 8])),
    ];
    for _ in 0..6 {
        layers.push(Box::new(Conv2d::new(6, 6, 8, 8, 3, 1, 1, rng)?));
        layers.push(Box::new(ReLU::new(&[6, 8, 8])));
    }
    layers.push(Box::new(MaxPool2d::new(6, 8, 8, 2, 2)?));
    for _ in 0..4 {
        layers.push(Box::new(Conv2d::new(6, 6, 4, 4, 3, 1, 1, rng)?));
        layers.push(Box::new(ReLU::new(&[6, 4, 4])));
    }
    layers.push(Box::new(MaxPool2d::new(6, 4, 4, 2, 2)?));
    layers.push(Box::new(Flatten::new(&[6, 2, 2])));
    layers.push(Box::new(Dense::new(24, 24, rng)?));
    layers.push(Box::new(ReLU::new(&[24])));
    layers.push(Box::new(Dense::new(24, num_classes, rng)?));
    Network::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_tensor::Tensor;

    fn smoke(net: &Network, input_shape: &[usize], classes: usize) {
        let x = Tensor::ones(input_shape);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.len(), classes);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(net.predict(&x).unwrap(), y.argmax().unwrap());
        assert!(!net.weight_layer_indices().is_empty());
        assert!(net.total_macs() > 0);
    }

    #[test]
    fn mlp_and_lenet_shapes() {
        let mut rng = Rng64::new(0);
        smoke(&mlp_net(&[10], 4, &mut rng).unwrap(), &[10], 4);
        smoke(&mlp_net(&[1, 4, 4], 3, &mut rng).unwrap(), &[1, 4, 4], 3);
        smoke(&lenet(3, 10, &mut rng).unwrap(), &[3, 8, 8], 10);
        assert!(mlp_net(&[], 2, &mut rng).is_err());
        assert!(lenet(0, 2, &mut rng).is_err());
    }

    #[test]
    fn conv_net_has_eight_weight_layers() {
        let mut rng = Rng64::new(1);
        let net = conv_net(10, &mut rng).unwrap();
        smoke(&net, &[3, 16, 16], 10);
        assert_eq!(net.weight_layer_indices().len(), 8);
        assert!(conv_net(0, &mut rng).is_err());
    }

    #[test]
    fn resnet_mini_is_deeper_than_conv_net() {
        let mut rng = Rng64::new(2);
        let net = resnet_mini(10, &mut rng).unwrap();
        smoke(&net, &[3, 8, 8], 10);
        let conv = conv_net(10, &mut rng).unwrap();
        assert!(net.weight_layer_indices().len() > conv.weight_layer_indices().len());
        assert!(resnet_mini(0, &mut rng).is_err());
    }

    #[test]
    fn large_model_variants_build() {
        let mut rng = Rng64::new(3);
        smoke(&vgg_mini(5, &mut rng).unwrap(), &[3, 16, 16], 5);
        smoke(&inception_mini(5, &mut rng).unwrap(), &[3, 16, 16], 5);
        smoke(&densenet_mini(5, &mut rng).unwrap(), &[3, 8, 8], 5);
        assert!(vgg_mini(0, &mut rng).is_err());
        assert!(inception_mini(0, &mut rng).is_err());
        assert!(densenet_mini(0, &mut rng).is_err());
    }

    #[test]
    fn deeper_models_have_more_macs() {
        let mut rng = Rng64::new(4);
        let lenet_macs = lenet(3, 10, &mut rng).unwrap().total_macs();
        let conv_macs = conv_net(10, &mut rng).unwrap().total_macs();
        let resnet_macs = resnet_mini(10, &mut rng).unwrap().total_macs();
        assert!(lenet_macs < conv_macs);
        assert!(conv_macs < resnet_macs * 4); // resnet is deep but narrow; sanity only
    }
}
