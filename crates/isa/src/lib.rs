//! # ptolemy-isa
//!
//! The Ptolemy custom CISC-like instruction set (paper Table I): 24-bit fixed-length
//! instructions over 16 general-purpose registers, covering inference
//! (`inf`/`infsp`/`csps`), path construction (`sort`/`acum`/`genmasks`/`findneuron`/
//! `findrf`), classification (`cls`) and the scalar/control instructions (`mov`,
//! `dec`, `jne`).
//!
//! The crate provides the instruction type with its binary encoding, a disassembler
//! (`Display`), and a small assembler for the textual syntax used in the paper's
//! Listing 1 (including `.set` constant directives and `<label>` branch targets).
//!
//! # Example
//!
//! ```
//! use ptolemy_isa::{Instruction, Reg};
//!
//! # fn main() -> Result<(), ptolemy_isa::IsaError> {
//! let inst = Instruction::Sort {
//!     src: Reg::new(1)?,
//!     len: Reg::new(3)?,
//!     dst: Reg::new(6)?,
//! };
//! let word = inst.encode();
//! assert_eq!(Instruction::decode(word)?, inst);
//! assert_eq!(inst.to_string(), "sort r1, r3, r6");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod error;
mod instruction;

pub use assembler::{assemble, Assembler, Program};
pub use error::IsaError;
pub use instruction::{Instruction, InstructionClass, Reg};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, IsaError>;
