//! A small two-pass assembler for the textual syntax of the paper's Listing 1.
//!
//! Supported syntax:
//!
//! * `.set NAME VALUE` — compiler-calculated constants (decimal or `0x…` hex);
//! * `<label>` on its own line — branch targets;
//! * instructions with comma-separated operands: registers (`r0`–`r15`), immediates
//!   (for `mov`), constants defined by `.set`, and `<label>` references (for `jne`);
//! * `;` comments.

use std::collections::HashMap;

use crate::{Instruction, IsaError, Reg, Result};

/// An assembled program: the instruction sequence plus its binary encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Decoded instruction sequence.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Binary encoding (one 24-bit word per instruction, in the low bits of `u32`).
    pub fn encode(&self) -> Vec<u32> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Program size in bytes (3 bytes per instruction — the paper notes its largest
    /// program is below 100 bytes).
    pub fn size_bytes(&self) -> usize {
        self.instructions.len() * 3
    }

    /// Textual disassembly.
    pub fn disassemble(&self) -> String {
        self.instructions
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Two-pass assembler state.  Most users call [`assemble`] directly.
#[derive(Debug, Default, Clone)]
pub struct Assembler {
    constants: HashMap<String, i64>,
}

/// Assembles a source listing into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] for malformed lines and
/// [`IsaError::UndefinedSymbol`] for unresolved labels or constants.
///
/// # Example
///
/// ```
/// let program = ptolemy_isa::assemble(
///     ".set rfsize 0x200\n\
///      mov r3, rfsize\n\
///      <start>\n\
///      findrf r4, r1\n\
///      sort r1, r3, r6\n\
///      acum r6, r1, r5\n\
///      dec r11\n\
///      jne r11, <start>\n\
///      halt\n",
/// )?;
/// assert_eq!(program.instructions.len(), 7);
/// # Ok::<(), ptolemy_isa::IsaError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program> {
    Assembler::default().assemble(source)
}

impl Assembler {
    /// Assembles a source listing.  See [`assemble`].
    ///
    /// # Errors
    ///
    /// See [`assemble`].
    pub fn assemble(mut self, source: &str) -> Result<Program> {
        // Pass 1: collect labels (by instruction index) and .set constants.
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut cleaned: Vec<(usize, String)> = Vec::new();
        let mut pc = 0usize;
        for (line_no, raw) in source.lines().enumerate() {
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".set") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().ok_or(IsaError::ParseError {
                    line: line_no + 1,
                    message: ".set requires a name".into(),
                })?;
                let value = parts.next().ok_or(IsaError::ParseError {
                    line: line_no + 1,
                    message: ".set requires a value".into(),
                })?;
                self.constants
                    .insert(name.to_string(), parse_imm(value, line_no + 1)?);
                continue;
            }
            if line.starts_with('<') && line.ends_with('>') {
                labels.insert(line[1..line.len() - 1].to_string(), pc);
                continue;
            }
            cleaned.push((line_no + 1, line.to_string()));
            pc += 1;
        }

        // Pass 2: parse instructions.
        let mut instructions = Vec::with_capacity(cleaned.len());
        for (idx, (line_no, line)) in cleaned.iter().enumerate() {
            instructions.push(self.parse_instruction(line, *line_no, idx, &labels)?);
        }
        Ok(Program { instructions })
    }

    fn parse_instruction(
        &self,
        line: &str,
        line_no: usize,
        pc: usize,
        labels: &HashMap<String, usize>,
    ) -> Result<Instruction> {
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let err = |message: String| IsaError::ParseError {
            line: line_no,
            message,
        };
        let want = |n: usize| -> Result<()> {
            if operands.len() != n {
                Err(err(format!(
                    "{mnemonic} expects {n} operands, got {}",
                    operands.len()
                )))
            } else {
                Ok(())
            }
        };
        let reg = |s: &str| -> Result<Reg> {
            let index: u8 = s
                .strip_prefix('r')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(format!("expected a register, got '{s}'")))?;
            Reg::new(index)
        };
        match mnemonic {
            "inf" => {
                want(3)?;
                Ok(Instruction::Inf {
                    input: reg(operands[0])?,
                    weight: reg(operands[1])?,
                    output: reg(operands[2])?,
                })
            }
            "infsp" => {
                want(4)?;
                Ok(Instruction::InfSp {
                    input: reg(operands[0])?,
                    weight: reg(operands[1])?,
                    output: reg(operands[2])?,
                    psum: reg(operands[3])?,
                })
            }
            "csps" => {
                want(3)?;
                Ok(Instruction::Csps {
                    output_neuron: reg(operands[0])?,
                    layer: reg(operands[1])?,
                    psum: reg(operands[2])?,
                })
            }
            "sort" => {
                want(3)?;
                Ok(Instruction::Sort {
                    src: reg(operands[0])?,
                    len: reg(operands[1])?,
                    dst: reg(operands[2])?,
                })
            }
            "acum" => {
                want(3)?;
                Ok(Instruction::Acum {
                    input: reg(operands[0])?,
                    output: reg(operands[1])?,
                    threshold: reg(operands[2])?,
                })
            }
            "genmasks" => {
                want(2)?;
                Ok(Instruction::GenMasks {
                    input: reg(operands[0])?,
                    output: reg(operands[1])?,
                })
            }
            "findneuron" => {
                want(3)?;
                Ok(Instruction::FindNeuron {
                    layer: reg(operands[0])?,
                    position: reg(operands[1])?,
                    target: reg(operands[2])?,
                })
            }
            "findrf" => {
                want(2)?;
                Ok(Instruction::FindRf {
                    neuron: reg(operands[0])?,
                    rf: reg(operands[1])?,
                })
            }
            "cls" => {
                want(3)?;
                Ok(Instruction::Cls {
                    class_path: reg(operands[0])?,
                    activation_path: reg(operands[1])?,
                    result: reg(operands[2])?,
                })
            }
            "mov" => {
                want(2)?;
                let imm = self.resolve_value(operands[1], line_no)?;
                if !(0..=0xFFF).contains(&imm) {
                    return Err(IsaError::ImmediateOutOfRange(imm));
                }
                Ok(Instruction::Mov {
                    dst: reg(operands[0])?,
                    imm: imm as u16,
                })
            }
            "dec" => {
                want(1)?;
                Ok(Instruction::Dec {
                    reg: reg(operands[0])?,
                })
            }
            "jne" => {
                want(2)?;
                let target = operands[1];
                let offset = if target.starts_with('<') && target.ends_with('>') {
                    let name = &target[1..target.len() - 1];
                    let dest = *labels
                        .get(name)
                        .ok_or_else(|| IsaError::UndefinedSymbol(name.to_string()))?;
                    dest as i64 - pc as i64
                } else {
                    self.resolve_value(target, line_no)?
                };
                if !(-128..=127).contains(&offset) {
                    return Err(IsaError::ImmediateOutOfRange(offset));
                }
                Ok(Instruction::Jne {
                    reg: reg(operands[0])?,
                    // lint:allow(raw-numeric-cast): range-checked above; exact i8 field encoding
                    offset: offset as i8,
                })
            }
            "halt" => {
                want(0)?;
                Ok(Instruction::Halt)
            }
            other => Err(err(format!("unknown mnemonic '{other}'"))),
        }
    }

    fn resolve_value(&self, token: &str, line_no: usize) -> Result<i64> {
        if let Some(value) = self.constants.get(token) {
            return Ok(*value);
        }
        parse_imm(token, line_no)
    }
}

fn parse_imm(token: &str, line_no: usize) -> Result<i64> {
    let parsed = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| IsaError::ParseError {
        line: line_no,
        message: format!("cannot parse immediate '{token}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstructionClass;

    /// The paper's Listing 1 (with the omitted setup code filled in).
    const LISTING_1: &str = "
        .set rfsize 0x200
        .set thrd 0x08
        mov r3, rfsize
        mov r5, thrd
        <start>
        findneuron r2, r7, r4
        findrf r4, r1
        sort r1, r3, r6
        acum r6, r1, r5
        dec r11
        jne r11, <start>
        halt
    ";

    #[test]
    fn assembles_listing_one() {
        let program = assemble(LISTING_1).unwrap();
        assert_eq!(program.instructions.len(), 9);
        // The paper notes compiled programs stay below 100 bytes.
        assert!(program.size_bytes() < 100);
        // The loop body is path-construction work.
        assert_eq!(
            program.instructions[2].class(),
            InstructionClass::PathConstruction
        );
        // The jne must branch back to the findneuron at index 2 from index 7.
        match program.instructions[7] {
            Instruction::Jne { offset, .. } => assert_eq!(offset, -5),
            ref other => panic!("unexpected {other:?}"),
        }
        // mov picked up the .set constant.
        match program.instructions[0] {
            Instruction::Mov { imm, .. } => assert_eq!(imm, 0x200),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disassembly_roundtrips_through_the_assembler() {
        let program = assemble(LISTING_1).unwrap();
        let text = program.disassemble();
        // Re-assembling the disassembly (labels become numeric offsets) must yield
        // the same binary encoding.
        let reassembled = assemble(&text).unwrap();
        assert_eq!(reassembled.encode(), program.encode());
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(matches!(
            assemble("bogus r1, r2"),
            Err(IsaError::ParseError { line: 1, .. })
        ));
        assert!(matches!(
            assemble("jne r1, <nowhere>"),
            Err(IsaError::UndefinedSymbol(_))
        ));
        assert!(matches!(
            assemble("mov r1, 0x10000"),
            Err(IsaError::ImmediateOutOfRange(_))
        ));
        assert!(matches!(
            assemble("sort r1, r2"),
            Err(IsaError::ParseError { .. })
        ));
        assert!(matches!(
            assemble("mov r99, 1"),
            Err(IsaError::InvalidRegister(99))
        ));
        assert!(matches!(
            assemble(".set x"),
            Err(IsaError::ParseError { .. })
        ));
        assert!(matches!(
            assemble("mov r1, qq"),
            Err(IsaError::ParseError { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let program = assemble("; nothing here\n\n  halt ; stop\n").unwrap();
        assert_eq!(program.instructions, vec![Instruction::Halt]);
    }
}
