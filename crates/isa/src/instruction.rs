//! Instruction definitions and the 24-bit binary encoding of Table I.

use std::fmt;

use crate::{IsaError, Result};

/// One of the 16 general-purpose registers (`r0`–`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] for indices ≥ 16.
    pub fn new(index: u8) -> Result<Self> {
        if index >= 16 {
            return Err(IsaError::InvalidRegister(index));
        }
        Ok(Reg(index))
    }

    /// The register index.
    pub fn index(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The four instruction classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstructionClass {
    /// Inference instructions (`inf`, `infsp`, `csps`).
    Inference,
    /// Path-construction instructions (`sort`, `acum`, `genmasks`, `findneuron`, `findrf`).
    PathConstruction,
    /// The classification instruction (`cls`).
    Classification,
    /// Control-flow, arithmetic and data-movement instructions.
    Others,
}

/// A Ptolemy instruction (Table I plus the "Others" class the paper lists as
/// `mov` / `dec` / `jne`; `halt` terminates interpretation).
///
/// All detection-related instructions use register operands; constants calculated by
/// the compiler (receptive-field sizes, thresholds) are loaded with `mov`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Layer inference: input / weight / output addresses in registers.
    Inf {
        /// Register holding the input feature-map address.
        input: Reg,
        /// Register holding the weight address.
        weight: Reg,
        /// Register holding the output feature-map address.
        output: Reg,
    },
    /// Layer inference that also stores every partial sum to memory.
    InfSp {
        /// Register holding the input feature-map address.
        input: Reg,
        /// Register holding the weight address.
        weight: Reg,
        /// Register holding the output feature-map address.
        output: Reg,
        /// Register holding the address where partial sums are written.
        psum: Reg,
    },
    /// Recomputes and stores the partial sums of one output feature-map element.
    Csps {
        /// Register holding the output-neuron id.
        output_neuron: Reg,
        /// Register holding the layer id.
        layer: Reg,
        /// Register holding the partial-sum destination address.
        psum: Reg,
    },
    /// Sorts a sequence of partial sums.
    Sort {
        /// Register holding the unsorted sequence start address.
        src: Reg,
        /// Register holding the sequence length.
        len: Reg,
        /// Register holding the sorted sequence destination address.
        dst: Reg,
    },
    /// Accumulates sorted partial sums until a cumulative threshold is reached.
    Acum {
        /// Register holding the sorted sequence address.
        input: Reg,
        /// Register holding the selected-neuron destination address.
        output: Reg,
        /// Register holding the cumulative threshold.
        threshold: Reg,
    },
    /// Generates the per-layer importance masks from identified important neurons.
    GenMasks {
        /// Register holding the important-neuron list address.
        input: Reg,
        /// Register holding the mask destination address.
        output: Reg,
    },
    /// Computes the address of a neuron given its position in the network.
    FindNeuron {
        /// Register holding the layer id.
        layer: Reg,
        /// Register holding the neuron position.
        position: Reg,
        /// Register receiving the neuron address.
        target: Reg,
    },
    /// Computes the start address of the receptive field of a neuron.
    FindRf {
        /// Register holding the neuron address.
        neuron: Reg,
        /// Register receiving the receptive-field address.
        rf: Reg,
    },
    /// Classifies an input as adversarial or benign from path similarity.
    Cls {
        /// Register holding the class-path address.
        class_path: Reg,
        /// Register holding the activation-path address.
        activation_path: Reg,
        /// Register receiving the result.
        result: Reg,
    },
    /// Loads a 12-bit immediate into a register.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Immediate value (12 bits).
        imm: u16,
    },
    /// Decrements a register.
    Dec {
        /// Register to decrement.
        reg: Reg,
    },
    /// Branches backwards/forwards by a signed 8-bit instruction offset when the
    /// register is non-zero.
    Jne {
        /// Register compared against zero.
        reg: Reg,
        /// Signed branch offset in instructions.
        offset: i8,
    },
    /// Stops interpretation.
    Halt,
}

const OP_INF: u32 = 0x0;
const OP_INFSP: u32 = 0x1;
const OP_CSPS: u32 = 0x2;
const OP_SORT: u32 = 0x3;
const OP_ACUM: u32 = 0x4;
const OP_GENMASKS: u32 = 0x5;
const OP_FINDNEURON: u32 = 0x6;
const OP_FINDRF: u32 = 0x7;
const OP_CLS: u32 = 0x8;
const OP_MOV: u32 = 0x9;
const OP_DEC: u32 = 0xA;
const OP_JNE: u32 = 0xB;
const OP_HALT: u32 = 0xF;

fn pack(opcode: u32, fields: [u32; 5]) -> u32 {
    let mut word = opcode << 20;
    for (i, f) in fields.iter().enumerate() {
        word |= (f & 0xF) << (16 - 4 * i as u32);
    }
    word
}

fn field(word: u32, i: u32) -> u8 {
    // lint:allow(raw-numeric-cast): masked to 4 bits; exact ISA word-field decode
    ((word >> (16 - 4 * i)) & 0xF) as u8
}

fn reg(word: u32, i: u32) -> Result<Reg> {
    Reg::new(field(word, i))
}

impl Instruction {
    /// Encodes the instruction into its 24-bit word (stored in the low bits of a
    /// `u32`).
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::Inf {
                input,
                weight,
                output,
            } => pack(
                OP_INF,
                [input.0 as u32, weight.0 as u32, output.0 as u32, 0, 0],
            ),
            Instruction::InfSp {
                input,
                weight,
                output,
                psum,
            } => pack(
                OP_INFSP,
                [
                    input.0 as u32,
                    weight.0 as u32,
                    output.0 as u32,
                    psum.0 as u32,
                    0,
                ],
            ),
            Instruction::Csps {
                output_neuron,
                layer,
                psum,
            } => pack(
                OP_CSPS,
                [output_neuron.0 as u32, layer.0 as u32, psum.0 as u32, 0, 0],
            ),
            Instruction::Sort { src, len, dst } => {
                pack(OP_SORT, [src.0 as u32, len.0 as u32, dst.0 as u32, 0, 0])
            }
            Instruction::Acum {
                input,
                output,
                threshold,
            } => pack(
                OP_ACUM,
                [input.0 as u32, output.0 as u32, threshold.0 as u32, 0, 0],
            ),
            Instruction::GenMasks { input, output } => {
                pack(OP_GENMASKS, [input.0 as u32, output.0 as u32, 0, 0, 0])
            }
            Instruction::FindNeuron {
                layer,
                position,
                target,
            } => pack(
                OP_FINDNEURON,
                [layer.0 as u32, position.0 as u32, target.0 as u32, 0, 0],
            ),
            Instruction::FindRf { neuron, rf } => {
                pack(OP_FINDRF, [neuron.0 as u32, rf.0 as u32, 0, 0, 0])
            }
            Instruction::Cls {
                class_path,
                activation_path,
                result,
            } => pack(
                OP_CLS,
                [
                    class_path.0 as u32,
                    activation_path.0 as u32,
                    result.0 as u32,
                    0,
                    0,
                ],
            ),
            Instruction::Mov { dst, imm } => {
                (OP_MOV << 20) | ((dst.0 as u32) << 16) | (imm as u32 & 0xFFF)
            }
            Instruction::Dec { reg } => pack(OP_DEC, [reg.0 as u32, 0, 0, 0, 0]),
            Instruction::Jne { reg, offset } => {
                // lint:allow(raw-numeric-cast): two's-complement re-interpretation, not rounding
                (OP_JNE << 20) | ((reg.0 as u32) << 16) | ((offset as u8) as u32)
            }
            Instruction::Halt => OP_HALT << 20,
        }
    }

    /// Decodes a 24-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidEncoding`] for unknown opcodes or words wider than
    /// 24 bits.
    pub fn decode(word: u32) -> Result<Instruction> {
        if word >> 24 != 0 {
            return Err(IsaError::InvalidEncoding(word));
        }
        let opcode = word >> 20;
        Ok(match opcode {
            OP_INF => Instruction::Inf {
                input: reg(word, 0)?,
                weight: reg(word, 1)?,
                output: reg(word, 2)?,
            },
            OP_INFSP => Instruction::InfSp {
                input: reg(word, 0)?,
                weight: reg(word, 1)?,
                output: reg(word, 2)?,
                psum: reg(word, 3)?,
            },
            OP_CSPS => Instruction::Csps {
                output_neuron: reg(word, 0)?,
                layer: reg(word, 1)?,
                psum: reg(word, 2)?,
            },
            OP_SORT => Instruction::Sort {
                src: reg(word, 0)?,
                len: reg(word, 1)?,
                dst: reg(word, 2)?,
            },
            OP_ACUM => Instruction::Acum {
                input: reg(word, 0)?,
                output: reg(word, 1)?,
                threshold: reg(word, 2)?,
            },
            OP_GENMASKS => Instruction::GenMasks {
                input: reg(word, 0)?,
                output: reg(word, 1)?,
            },
            OP_FINDNEURON => Instruction::FindNeuron {
                layer: reg(word, 0)?,
                position: reg(word, 1)?,
                target: reg(word, 2)?,
            },
            OP_FINDRF => Instruction::FindRf {
                neuron: reg(word, 0)?,
                rf: reg(word, 1)?,
            },
            OP_CLS => Instruction::Cls {
                class_path: reg(word, 0)?,
                activation_path: reg(word, 1)?,
                result: reg(word, 2)?,
            },
            OP_MOV => Instruction::Mov {
                // lint:allow(raw-numeric-cast): masked to 4 bits; exact ISA word-field decode
                dst: Reg::new(((word >> 16) & 0xF) as u8)?,
                imm: (word & 0xFFF) as u16,
            },
            OP_DEC => Instruction::Dec { reg: reg(word, 0)? },
            OP_JNE => Instruction::Jne {
                // lint:allow(raw-numeric-cast): masked to 4 bits; exact ISA word-field decode
                reg: Reg::new(((word >> 16) & 0xF) as u8)?,
                // lint:allow(raw-numeric-cast): masked byte re-interpreted as two's-complement i8
                offset: (word & 0xFF) as u8 as i8,
            },
            OP_HALT => Instruction::Halt,
            _ => return Err(IsaError::InvalidEncoding(word)),
        })
    }

    /// The instruction's class (Table I grouping).
    pub fn class(&self) -> InstructionClass {
        match self {
            Instruction::Inf { .. } | Instruction::InfSp { .. } | Instruction::Csps { .. } => {
                InstructionClass::Inference
            }
            Instruction::Sort { .. }
            | Instruction::Acum { .. }
            | Instruction::GenMasks { .. }
            | Instruction::FindNeuron { .. }
            | Instruction::FindRf { .. } => InstructionClass::PathConstruction,
            Instruction::Cls { .. } => InstructionClass::Classification,
            _ => InstructionClass::Others,
        }
    }

    /// The instruction mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Inf { .. } => "inf",
            Instruction::InfSp { .. } => "infsp",
            Instruction::Csps { .. } => "csps",
            Instruction::Sort { .. } => "sort",
            Instruction::Acum { .. } => "acum",
            Instruction::GenMasks { .. } => "genmasks",
            Instruction::FindNeuron { .. } => "findneuron",
            Instruction::FindRf { .. } => "findrf",
            Instruction::Cls { .. } => "cls",
            Instruction::Mov { .. } => "mov",
            Instruction::Dec { .. } => "dec",
            Instruction::Jne { .. } => "jne",
            Instruction::Halt => "halt",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Inf {
                input,
                weight,
                output,
            } => {
                write!(f, "inf {input}, {weight}, {output}")
            }
            Instruction::InfSp {
                input,
                weight,
                output,
                psum,
            } => {
                write!(f, "infsp {input}, {weight}, {output}, {psum}")
            }
            Instruction::Csps {
                output_neuron,
                layer,
                psum,
            } => {
                write!(f, "csps {output_neuron}, {layer}, {psum}")
            }
            Instruction::Sort { src, len, dst } => write!(f, "sort {src}, {len}, {dst}"),
            Instruction::Acum {
                input,
                output,
                threshold,
            } => {
                write!(f, "acum {input}, {output}, {threshold}")
            }
            Instruction::GenMasks { input, output } => write!(f, "genmasks {input}, {output}"),
            Instruction::FindNeuron {
                layer,
                position,
                target,
            } => {
                write!(f, "findneuron {layer}, {position}, {target}")
            }
            Instruction::FindRf { neuron, rf } => write!(f, "findrf {neuron}, {rf}"),
            Instruction::Cls {
                class_path,
                activation_path,
                result,
            } => {
                write!(f, "cls {class_path}, {activation_path}, {result}")
            }
            Instruction::Mov { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Instruction::Dec { reg } => write!(f, "dec {reg}"),
            Instruction::Jne { reg, offset } => write!(f, "jne {reg}, {offset}"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn all_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Inf {
                input: r(1),
                weight: r(2),
                output: r(3),
            },
            Instruction::InfSp {
                input: r(1),
                weight: r(2),
                output: r(3),
                psum: r(4),
            },
            Instruction::Csps {
                output_neuron: r(5),
                layer: r(6),
                psum: r(7),
            },
            Instruction::Sort {
                src: r(1),
                len: r(3),
                dst: r(6),
            },
            Instruction::Acum {
                input: r(6),
                output: r(1),
                threshold: r(5),
            },
            Instruction::GenMasks {
                input: r(2),
                output: r(9),
            },
            Instruction::FindNeuron {
                layer: r(2),
                position: r(7),
                target: r(4),
            },
            Instruction::FindRf {
                neuron: r(4),
                rf: r(1),
            },
            Instruction::Cls {
                class_path: r(10),
                activation_path: r(11),
                result: r(12),
            },
            Instruction::Mov {
                dst: r(3),
                imm: 0x200,
            },
            Instruction::Dec { reg: r(11) },
            Instruction::Jne {
                reg: r(11),
                offset: -5,
            },
            Instruction::Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for inst in all_instructions() {
            let word = inst.encode();
            assert!(word < (1 << 24), "{inst} does not fit 24 bits");
            assert_eq!(
                Instruction::decode(word).unwrap(),
                inst,
                "roundtrip of {inst}"
            );
        }
    }

    #[test]
    fn invalid_words_are_rejected() {
        assert!(Instruction::decode(1 << 24).is_err());
        assert!(Instruction::decode(0xC0_0000).is_err()); // unused opcode 0xC
        assert!(Reg::new(16).is_err());
        assert_eq!(Reg::new(7).unwrap().index(), 7);
    }

    #[test]
    fn classes_match_table_one() {
        assert_eq!(
            Instruction::Inf {
                input: r(0),
                weight: r(1),
                output: r(2)
            }
            .class(),
            InstructionClass::Inference
        );
        assert_eq!(
            Instruction::Sort {
                src: r(0),
                len: r(1),
                dst: r(2)
            }
            .class(),
            InstructionClass::PathConstruction
        );
        assert_eq!(
            Instruction::Cls {
                class_path: r(0),
                activation_path: r(1),
                result: r(2)
            }
            .class(),
            InstructionClass::Classification
        );
        assert_eq!(Instruction::Halt.class(), InstructionClass::Others);
        assert_eq!(
            Instruction::Dec { reg: r(1) }.class(),
            InstructionClass::Others
        );
    }

    #[test]
    fn disassembly_matches_listing_style() {
        assert_eq!(
            Instruction::Sort {
                src: r(1),
                len: r(3),
                dst: r(6)
            }
            .to_string(),
            "sort r1, r3, r6"
        );
        assert_eq!(
            Instruction::Acum {
                input: r(6),
                output: r(1),
                threshold: r(5)
            }
            .to_string(),
            "acum r6, r1, r5"
        );
        assert_eq!(Instruction::Halt.mnemonic(), "halt");
        assert_eq!(format!("{}", r(4)), "r4");
    }

    #[test]
    fn jne_offset_sign_is_preserved() {
        for offset in [-128i8, -1, 0, 1, 127] {
            let inst = Instruction::Jne { reg: r(2), offset };
            match Instruction::decode(inst.encode()).unwrap() {
                Instruction::Jne { offset: o, .. } => assert_eq!(o, offset),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
