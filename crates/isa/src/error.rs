use std::fmt;

/// Error type for encoding, decoding and assembling Ptolemy instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register index outside `0..16` was requested.
    InvalidRegister(u8),
    /// A 24-bit word does not decode to a known instruction.
    InvalidEncoding(u32),
    /// Assembly source could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A branch target or `.set` constant was referenced but never defined.
    UndefinedSymbol(String),
    /// An immediate value does not fit the encoding.
    ImmediateOutOfRange(i64),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(r) => write!(f, "register r{r} does not exist (16 GPRs)"),
            IsaError::InvalidEncoding(w) => write!(f, "word {w:#08x} is not a valid instruction"),
            IsaError::ParseError { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            IsaError::UndefinedSymbol(s) => write!(f, "undefined symbol '{s}'"),
            IsaError::ImmediateOutOfRange(v) => write!(f, "immediate {v} out of range"),
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            IsaError::InvalidRegister(20),
            IsaError::InvalidEncoding(0xFFFFFF),
            IsaError::ParseError {
                line: 3,
                message: "bad".into(),
            },
            IsaError::UndefinedSymbol("x".into()),
            IsaError::ImmediateOutOfRange(1 << 20),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
