//! JSMA: the Jacobian-based Saliency Map Attack (Papernot et al.), an L0 attack that
//! perturbs a small number of input elements.

use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::{AdversarialExample, Attack, AttackError, Result};

/// Jacobian-based Saliency Map Attack.
///
/// Greedily increases the input features whose saliency — gradient of the target
/// logit minus gradient of the true logit — is largest, until the prediction flips
/// or the feature budget is exhausted.  The target class is chosen as the runner-up
/// class of the clean input, the standard untargeted instantiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jsma {
    theta: f32,
    max_features: usize,
}

impl Jsma {
    /// Creates a JSMA attack that bumps up to `max_features` features by `theta`
    /// each iteration.
    pub fn new(theta: f32, max_features: usize) -> Self {
        Jsma {
            theta,
            max_features,
        }
    }
}

impl Attack for Jsma {
    fn name(&self) -> &'static str {
        "JSMA"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        if self.theta <= 0.0 || !self.theta.is_finite() {
            return Err(AttackError::InvalidConfig(format!(
                "theta must be positive, got {}",
                self.theta
            )));
        }
        if self.max_features == 0 {
            return Err(AttackError::InvalidConfig(
                "max_features must be non-zero".into(),
            ));
        }

        // Target: the runner-up class of the clean prediction.
        let clean_logits = network.forward(input)?;
        let target = clean_logits
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != label)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .ok_or_else(|| AttackError::InvalidConfig("JSMA needs at least two classes".into()))?;

        let mut current = input.clone();
        let mut modified = vec![false; input.len()];
        let mut changed = 0usize;
        while changed < self.max_features {
            if network.predict(&current)? != label {
                break;
            }
            let saliency = saliency_map(network, &current, label, target)?;
            // Pick the still-unmodified feature with the largest saliency magnitude
            // that can still move in the useful direction (increase features that
            // help the target class, decrease features that help the true class).
            let mut best: Option<(usize, f32)> = None;
            for (i, s) in saliency.iter().enumerate() {
                if modified[i] {
                    continue;
                }
                let value = current.as_slice()[i];
                let movable = (*s > 0.0 && value < 1.0) || (*s < 0.0 && value > 0.0);
                if movable && best.map(|(_, bs)| s.abs() > bs).unwrap_or(true) {
                    best = Some((i, s.abs()));
                }
            }
            let Some((idx, _)) = best else { break };
            let direction = saliency[idx].signum();
            let value = (current.as_slice()[idx] + direction * self.theta).clamp(0.0, 1.0);
            current.as_mut_slice()[idx] = value;
            modified[idx] = true;
            changed += 1;
        }
        AdversarialExample::evaluate(network, input, current, label)
    }
}

/// Saliency of each input feature for moving mass from `label` to `target`:
/// `∂Z_target/∂x − ∂Z_label/∂x`.
fn saliency_map(
    network: &Network,
    input: &Tensor,
    label: usize,
    target: usize,
) -> Result<Vec<f32>> {
    let trace = network.forward_trace(input)?;
    let mut grad_logits = Tensor::zeros(trace.logits().dims());
    grad_logits.as_mut_slice()[target] = 1.0;
    grad_logits.as_mut_slice()[label] = -1.0;
    Ok(network
        .backward(&trace, &grad_logits)?
        .input_grad
        .into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    fn trained_mlp() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(23);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..20 {
                let data: Vec<f32> = (0..8)
                    .map(|d| {
                        let hot = if class == 0 { d < 4 } else { d >= 4 };
                        if hot {
                            0.8 + 0.05 * rng.normal()
                        } else {
                            0.2 + 0.05 * rng.normal()
                        }
                    })
                    .map(|v: f32| v.clamp(0.0, 1.0))
                    .collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn jsma_modifies_few_features() {
        let (net, samples) = trained_mlp();
        let attack = Jsma::new(0.9, 4);
        let mut successes = 0;
        for (x, y) in samples.iter().take(10) {
            let ex = attack.perturb(&net, x, *y).unwrap();
            // L0 character: only a bounded number of features may change.
            let changed = ex
                .input
                .as_slice()
                .iter()
                .zip(ex.original.as_slice())
                .filter(|(a, b)| (*a - *b).abs() > 1e-6)
                .count();
            assert!(changed <= 4);
            if ex.success {
                successes += 1;
            }
        }
        assert!(successes > 0, "JSMA should flip some predictions");
    }

    #[test]
    fn invalid_configs_rejected() {
        let (net, samples) = trained_mlp();
        let (x, y) = &samples[0];
        assert!(Jsma::new(0.0, 3).perturb(&net, x, *y).is_err());
        assert!(Jsma::new(0.5, 0).perturb(&net, x, *y).is_err());
        assert_eq!(Jsma::new(0.5, 3).name(), "JSMA");
    }
}
