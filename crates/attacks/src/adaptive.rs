//! The adaptive attack of Sec. VII-E: an attacker with full knowledge of Ptolemy
//! forces an adversarial input to *imitate the activations of a benign input of a
//! different class*, so that the extracted activation path resembles a legitimate
//! canary path.
//!
//! Because the path construction (ranking / thresholding) is non-differentiable, the
//! paper relaxes the hard path constraint into the differentiable objective
//! `Σᵢ ‖zᵢ(x + δ) − zᵢ(x_t)‖²` over the last *n* layers and optimises it with PGD;
//! five candidate targets of different classes are tried and the lowest-loss result
//! is kept.  This module reproduces that construction exactly (`AT-n` in Fig. 13).

use ptolemy_nn::{ForwardTrace, Network};
use ptolemy_tensor::{Rng64, Tensor};

use crate::{AdversarialExample, Attack, AttackError, Result};

/// Configuration of the adaptive activation-matching attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Number of trailing *weight* layers whose activations enter the loss
    /// (`AT-n` in the paper; `AT-8` on the 8-layer AlexNet is the strongest attack).
    pub layers_considered: usize,
    /// PGD step size.
    pub step_size: f32,
    /// Number of PGD iterations per candidate target.
    pub iterations: usize,
    /// Number of candidate benign targets of other classes to try.
    pub num_targets: usize,
    /// Seed for target selection.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            layers_considered: 3,
            step_size: 0.02,
            iterations: 40,
            num_targets: 5,
            seed: 0xADA9,
        }
    }
}

/// The adaptive activation-matching attack (unbounded perturbation, following the
/// paper's "the correct metric for unbounded attacks is distortion" methodology).
#[derive(Debug, Clone)]
pub struct AdaptiveAttack {
    config: AdaptiveConfig,
    target_pool: Vec<(Tensor, usize)>,
}

impl AdaptiveAttack {
    /// Creates an adaptive attack drawing candidate targets from `target_pool`
    /// (typically the training set, which the white-box attacker is assumed to know).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for zero iterations/targets/layers or
    /// an empty target pool.
    pub fn new(config: AdaptiveConfig, target_pool: Vec<(Tensor, usize)>) -> Result<Self> {
        if config.iterations == 0 || config.num_targets == 0 || config.layers_considered == 0 {
            return Err(AttackError::InvalidConfig(
                "adaptive attack needs non-zero iterations, targets and layers".into(),
            ));
        }
        if config.step_size <= 0.0 || !config.step_size.is_finite() {
            return Err(AttackError::InvalidConfig(
                "step size must be positive".into(),
            ));
        }
        if target_pool.is_empty() {
            return Err(AttackError::NoTargets("empty target pool".into()));
        }
        Ok(AdaptiveAttack {
            config,
            target_pool,
        })
    }

    /// The configuration of this attack.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Network layer indices whose activations enter the matching loss: the last
    /// `layers_considered` weight layers.
    fn considered_layers(&self, network: &Network) -> Vec<usize> {
        let weight_layers = network.weight_layer_indices();
        let n = self.config.layers_considered.min(weight_layers.len());
        weight_layers[weight_layers.len() - n..].to_vec()
    }

    /// Activation-matching loss and its gradient with respect to the input.
    fn loss_and_gradient(
        &self,
        network: &Network,
        trace: &ForwardTrace,
        target_trace: &ForwardTrace,
        layers: &[usize],
    ) -> Result<(f32, Tensor)> {
        // Backward pass accumulating 2·(zᵢ − zᵢᵗ) at every considered layer.
        let num_layers = trace.num_layers();
        let mut loss = 0.0f32;
        let mut grad = Tensor::zeros(trace.logits().dims());
        for i in (0..num_layers).rev() {
            if layers.contains(&i) {
                let diff = trace.output(i).sub(target_trace.output(i))?;
                loss += diff.as_slice().iter().map(|v| v * v).sum::<f32>();
                grad.add_scaled_inplace(&diff, 2.0)?;
            }
            let layer = network.layer(i)?;
            grad = layer.backward(trace.input(i), &grad)?.input_grad;
        }
        Ok((loss, grad))
    }

    /// Runs PGD against one candidate target and returns `(loss, perturbed input)`.
    fn attack_towards(
        &self,
        network: &Network,
        input: &Tensor,
        target: &Tensor,
        layers: &[usize],
    ) -> Result<(f32, Tensor)> {
        let target_trace = network.forward_trace(target)?;
        let mut current = input.clone();
        let mut final_loss = f32::INFINITY;
        for _ in 0..self.config.iterations {
            let trace = network.forward_trace(&current)?;
            let (loss, grad) = self.loss_and_gradient(network, &trace, &target_trace, layers)?;
            final_loss = loss;
            let norm = grad.l2_norm().max(1e-8);
            current = current
                .sub(&grad.scale(self.config.step_size / norm))?
                .clamp(0.0, 1.0);
        }
        Ok((final_loss, current))
    }
}

impl Attack for AdaptiveAttack {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        let layers = self.considered_layers(network);
        // Choose candidate benign targets whose class differs from the input's.
        let mut rng = Rng64::new(self.config.seed ^ (label as u64).wrapping_mul(0x9E37));
        let candidates: Vec<&(Tensor, usize)> = self
            .target_pool
            .iter()
            .filter(|(_, y)| *y != label)
            .collect();
        if candidates.is_empty() {
            return Err(AttackError::NoTargets(format!(
                "target pool has no samples outside class {label}"
            )));
        }
        let mut best: Option<(f32, Tensor)> = None;
        for _ in 0..self.config.num_targets {
            let (target, _) = candidates[rng.below(candidates.len())];
            let (loss, perturbed) = self.attack_towards(network, input, target, &layers)?;
            if best.as_ref().map(|(l, _)| loss < *l).unwrap_or(true) {
                best = Some((loss, perturbed));
            }
        }
        // lint:allow(panic-in-worker): num_targets >= 1 is validated at construction
        let (_, perturbed) = best.expect("at least one candidate target evaluated");
        AdversarialExample::evaluate(network, input, perturbed, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::{zoo, TrainConfig, Trainer};

    fn trained_mlp() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(31);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..20 {
                let data: Vec<f32> = (0..8)
                    .map(|d| {
                        let hot = if class == 0 { d < 4 } else { d >= 4 };
                        if hot {
                            0.85 + 0.05 * rng.normal()
                        } else {
                            0.15 + 0.05 * rng.normal()
                        }
                    })
                    .map(|v: f32| v.clamp(0.0, 1.0))
                    .collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn adaptive_attack_flips_predictions_by_matching_activations() {
        let (net, samples) = trained_mlp();
        let attack = AdaptiveAttack::new(
            AdaptiveConfig {
                layers_considered: 3,
                iterations: 60,
                step_size: 0.05,
                num_targets: 3,
                seed: 1,
            },
            samples.clone(),
        )
        .unwrap();
        let mut successes = 0;
        for (x, y) in samples.iter().take(6) {
            let ex = attack.perturb(&net, x, *y).unwrap();
            assert!(ex.input.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
            if ex.success {
                successes += 1;
            }
        }
        assert!(
            successes > 0,
            "the unbounded adaptive attack should succeed"
        );
        assert_eq!(attack.name(), "Adaptive");
        assert_eq!(attack.config().num_targets, 3);
    }

    #[test]
    fn more_layers_considered_means_closer_activation_match() {
        let (net, samples) = trained_mlp();
        let pool = samples.clone();
        let shallow = AdaptiveAttack::new(
            AdaptiveConfig {
                layers_considered: 1,
                iterations: 40,
                ..AdaptiveConfig::default()
            },
            pool.clone(),
        )
        .unwrap();
        let deep = AdaptiveAttack::new(
            AdaptiveConfig {
                layers_considered: 3,
                iterations: 40,
                ..AdaptiveConfig::default()
            },
            pool,
        )
        .unwrap();
        // Both must run; the deep attack considers strictly more layers.
        let (x, y) = &samples[0];
        let a = shallow.perturb(&net, x, *y).unwrap();
        let b = deep.perturb(&net, x, *y).unwrap();
        assert!(a.distortion_mse >= 0.0 && b.distortion_mse >= 0.0);
        assert_eq!(shallow.considered_layers(&net).len(), 1);
        assert_eq!(deep.considered_layers(&net).len(), 3);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (_, samples) = trained_mlp();
        assert!(AdaptiveAttack::new(
            AdaptiveConfig {
                iterations: 0,
                ..AdaptiveConfig::default()
            },
            samples.clone()
        )
        .is_err());
        assert!(AdaptiveAttack::new(
            AdaptiveConfig {
                step_size: 0.0,
                ..AdaptiveConfig::default()
            },
            samples.clone()
        )
        .is_err());
        assert!(AdaptiveAttack::new(AdaptiveConfig::default(), vec![]).is_err());

        // A pool containing only the attacked class yields NoTargets.
        let one_class: Vec<(Tensor, usize)> =
            samples.iter().filter(|(_, y)| *y == 0).cloned().collect();
        let (net, _) = trained_mlp();
        let attack = AdaptiveAttack::new(AdaptiveConfig::default(), one_class).unwrap();
        let x = Tensor::full(&[8], 0.5);
        assert!(matches!(
            attack.perturb(&net, &x, 0),
            Err(AttackError::NoTargets(_))
        ));
    }
}
