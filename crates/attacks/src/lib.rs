//! # ptolemy-attacks
//!
//! White-box adversarial attack generation against the `ptolemy-nn` substrate.
//!
//! The paper evaluates Ptolemy against five standard non-adaptive attacks covering
//! all three perturbation norms — BIM and FGSM (L∞), CW-L2 and DeepFool (L2), JSMA
//! (L0) — plus an **adaptive attack** that knows how the defense works and tries to
//! force an adversarial input onto a benign input's activation path by matching the
//! activations of the last *n* layers (Sec. VII-E).  This crate implements all of
//! them from scratch on top of the gradients exposed by [`ptolemy_nn::Network`].
//!
//! # Example
//!
//! ```
//! use ptolemy_attacks::{Attack, Fgsm};
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
//! let samples = vec![
//!     (Tensor::full(&[8], 0.9), 0usize),
//!     (Tensor::full(&[8], 0.1), 1usize),
//! ];
//! Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
//! let example = Fgsm::new(0.2).perturb(&net, &samples[0].0, 0)?;
//! assert!(example.distortion_linf <= 0.2 + 1e-5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod error;
mod gradient;
mod saliency;
mod types;

pub use adaptive::{AdaptiveAttack, AdaptiveConfig};
pub use error::AttackError;
pub use gradient::{Bim, CarliniWagnerL2, DeepFool, Fgsm, Pgd};
pub use saliency::Jsma;
pub use types::{generate_adversarial_set, AdversarialExample, Attack, AttackBatchReport};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, AttackError>;
