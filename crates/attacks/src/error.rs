use std::fmt;

use ptolemy_nn::NnError;
use ptolemy_tensor::TensorError;

/// Error type for attack generation.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Attack parameters are invalid (negative ε, zero iterations, …).
    InvalidConfig(String),
    /// The adaptive attack could not find suitable target samples.
    NoTargets(String),
    /// The DNN substrate reported an error.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidConfig(msg) => write!(f, "invalid attack configuration: {msg}"),
            AttackError::NoTargets(msg) => write!(f, "no usable attack targets: {msg}"),
            AttackError::Nn(e) => write!(f, "dnn substrate error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: AttackError = NnError::EmptyDataset.into();
        assert!(e.to_string().contains("dnn"));
        assert!(std::error::Error::source(&e).is_some());
        let e: AttackError = TensorError::Empty("max").into();
        assert!(e.to_string().contains("tensor"));
        assert!(!AttackError::InvalidConfig("x".into())
            .to_string()
            .is_empty());
        assert!(!AttackError::NoTargets("y".into()).to_string().is_empty());
    }
}
