//! Shared attack types: the [`Attack`] trait, adversarial examples, and batch
//! generation helpers.

use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::Result;

/// One adversarial example produced by an [`Attack`].
#[derive(Debug, Clone)]
pub struct AdversarialExample {
    /// The perturbed input.
    pub input: Tensor,
    /// The original, unperturbed input.
    pub original: Tensor,
    /// The true class of the original input.
    pub original_class: usize,
    /// The class the network predicts for the perturbed input.
    pub adversarial_class: usize,
    /// Whether the attack changed the prediction away from `original_class`.
    pub success: bool,
    /// Mean-squared-error distortion between original and perturbed input
    /// (the metric Fig. 14 buckets by).
    pub distortion_mse: f32,
    /// L∞ distortion.
    pub distortion_linf: f32,
}

impl AdversarialExample {
    /// Builds an example record from an original/perturbed pair, querying the
    /// network for the adversarial prediction.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors from the prediction.
    pub fn evaluate(
        network: &Network,
        original: &Tensor,
        perturbed: Tensor,
        original_class: usize,
    ) -> Result<Self> {
        let adversarial_class = network.predict(&perturbed)?;
        let distortion_mse = perturbed.mse(original)?;
        let distortion_linf = perturbed.sub(original)?.linf_norm();
        Ok(AdversarialExample {
            success: adversarial_class != original_class,
            input: perturbed,
            original: original.clone(),
            original_class,
            adversarial_class,
            distortion_mse,
            distortion_linf,
        })
    }
}

/// A white-box adversarial attack.
///
/// Attacks are object-safe so evaluation harnesses can iterate over
/// `Vec<Box<dyn Attack>>`.
pub trait Attack: Send + Sync {
    /// Attack name as used in the paper's figures (e.g. `"FGSM"`).
    fn name(&self) -> &'static str;

    /// Perturbs one input of known true class.
    ///
    /// # Errors
    ///
    /// Returns an error if the attack configuration is invalid for the input or the
    /// substrate fails.
    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample>;
}

/// Aggregate statistics of an attack applied to a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackBatchReport {
    /// Attack name.
    pub attack: String,
    /// Number of samples attacked.
    pub attempted: usize,
    /// Number of successful prediction flips.
    pub successes: usize,
    /// Mean MSE distortion over all generated examples.
    pub mean_mse: f32,
    /// Maximum MSE distortion.
    pub max_mse: f32,
}

impl AttackBatchReport {
    /// Success rate in `[0, 1]` (0 for an empty batch).
    pub fn success_rate(&self) -> f32 {
        if self.attempted == 0 {
            0.0
        } else {
            self.successes as f32 / self.attempted as f32
        }
    }
}

/// Applies `attack` to every sample the network currently classifies correctly and
/// returns the generated examples plus summary statistics.
///
/// Samples the network already mis-classifies are skipped — adversarial detection
/// experiments only attack correctly-classified inputs (standard practice, also
/// followed by the paper's evaluation).
///
/// # Errors
///
/// Propagates attack and substrate errors.
pub fn generate_adversarial_set(
    attack: &dyn Attack,
    network: &Network,
    samples: &[(Tensor, usize)],
) -> Result<(Vec<AdversarialExample>, AttackBatchReport)> {
    let mut examples = Vec::new();
    for (input, label) in samples {
        if network.predict(input)? != *label {
            continue;
        }
        examples.push(attack.perturb(network, input, *label)?);
    }
    let successes = examples.iter().filter(|e| e.success).count();
    let mean_mse = if examples.is_empty() {
        0.0
    } else {
        examples.iter().map(|e| e.distortion_mse).sum::<f32>() / examples.len() as f32
    };
    let max_mse = examples
        .iter()
        .map(|e| e.distortion_mse)
        .fold(0.0f32, f32::max);
    let report = AttackBatchReport {
        attack: attack.name().to_string(),
        attempted: examples.len(),
        successes,
        mean_mse,
        max_mse,
    };
    Ok((examples, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    struct NoopAttack;
    impl Attack for NoopAttack {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn perturb(
            &self,
            network: &Network,
            input: &Tensor,
            label: usize,
        ) -> Result<AdversarialExample> {
            AdversarialExample::evaluate(network, input, input.clone(), label)
        }
    }

    #[test]
    fn evaluate_records_distortion_and_success() {
        let mut rng = Rng64::new(0);
        let net = zoo::mlp_net(&[4], 2, &mut rng).unwrap();
        let original = Tensor::full(&[4], 0.5);
        let perturbed = Tensor::full(&[4], 0.7);
        let label = net.predict(&original).unwrap();
        let ex = AdversarialExample::evaluate(&net, &original, perturbed, label).unwrap();
        assert!((ex.distortion_mse - 0.04).abs() < 1e-5);
        assert!((ex.distortion_linf - 0.2).abs() < 1e-5);
        assert_eq!(ex.original_class, label);
        // Success is defined as a changed prediction.
        let same = AdversarialExample::evaluate(&net, &original, original.clone(), label).unwrap();
        assert!(!same.success);
        assert_eq!(same.distortion_mse, 0.0);
    }

    #[test]
    fn batch_generation_skips_misclassified_samples() {
        let mut rng = Rng64::new(1);
        let net = zoo::mlp_net(&[4], 2, &mut rng).unwrap();
        let a = Tensor::full(&[4], 0.9);
        let b = Tensor::full(&[4], 0.1);
        let ca = net.predict(&a).unwrap();
        let cb = net.predict(&b).unwrap();
        // Give `a` the correct label and `b` a deliberately wrong one.
        let samples = vec![(a, ca), (b, 1 - cb)];
        let (examples, report) = generate_adversarial_set(&NoopAttack, &net, &samples).unwrap();
        assert_eq!(examples.len(), 1);
        assert_eq!(report.attempted, 1);
        assert_eq!(report.successes, 0);
        assert_eq!(report.success_rate(), 0.0);
        assert_eq!(report.attack, "noop");
        let empty = AttackBatchReport {
            attack: "x".into(),
            attempted: 0,
            successes: 0,
            mean_mse: 0.0,
            max_mse: 0.0,
        };
        assert_eq!(empty.success_rate(), 0.0);
    }
}
