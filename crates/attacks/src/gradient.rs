//! Gradient-based attacks: FGSM, BIM, PGD (L∞), DeepFool and CW-L2 (L2).

use ptolemy_nn::Network;
use ptolemy_tensor::{Rng64, Tensor};

use crate::{AdversarialExample, Attack, AttackError, Result};

fn check_positive(value: f32, name: &str) -> Result<()> {
    if value <= 0.0 || !value.is_finite() {
        return Err(AttackError::InvalidConfig(format!(
            "{name} must be positive and finite, got {value}"
        )));
    }
    Ok(())
}

/// Clamps a perturbed input back into the valid pixel range and the ε-ball around
/// the original.
fn project_linf(perturbed: &Tensor, original: &Tensor, epsilon: f32) -> Result<Tensor> {
    let data: Vec<f32> = perturbed
        .as_slice()
        .iter()
        .zip(original.as_slice())
        .map(|(p, o)| p.clamp(o - epsilon, o + epsilon).clamp(0.0, 1.0))
        .collect();
    Ok(Tensor::from_vec(data, original.dims())?)
}

/// Fast Gradient Sign Method (Goodfellow et al.): a single ε-sized step along the
/// sign of the loss gradient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates an FGSM attack with L∞ budget `epsilon`.
    pub fn new(epsilon: f32) -> Self {
        Fgsm { epsilon }
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "FGSM"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        check_positive(self.epsilon, "epsilon")?;
        let grad = network.input_gradient(input, label)?;
        let stepped = input.add(&grad.signum().scale(self.epsilon))?;
        let perturbed = project_linf(&stepped, input, self.epsilon)?;
        AdversarialExample::evaluate(network, input, perturbed, label)
    }
}

/// Basic Iterative Method (Kurakin et al.): repeated small FGSM steps projected back
/// into the ε-ball.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bim {
    epsilon: f32,
    alpha: f32,
    iterations: usize,
}

impl Bim {
    /// Creates a BIM attack with budget `epsilon`, step size `alpha` and the given
    /// number of iterations.
    pub fn new(epsilon: f32, alpha: f32, iterations: usize) -> Self {
        Bim {
            epsilon,
            alpha,
            iterations,
        }
    }
}

impl Attack for Bim {
    fn name(&self) -> &'static str {
        "BIM"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        check_positive(self.epsilon, "epsilon")?;
        check_positive(self.alpha, "alpha")?;
        if self.iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "iterations must be non-zero".into(),
            ));
        }
        let mut current = input.clone();
        for _ in 0..self.iterations {
            let grad = network.input_gradient(&current, label)?;
            let stepped = current.add(&grad.signum().scale(self.alpha))?;
            current = project_linf(&stepped, input, self.epsilon)?;
        }
        AdversarialExample::evaluate(network, input, current, label)
    }
}

/// Projected Gradient Descent (Madry et al.): BIM with a random start inside the
/// ε-ball.  Also used as the optimiser of the adaptive attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pgd {
    epsilon: f32,
    alpha: f32,
    iterations: usize,
    seed: u64,
}

impl Pgd {
    /// Creates a PGD attack with budget `epsilon`, step size `alpha`, iteration
    /// count and a seed for the random start.
    pub fn new(epsilon: f32, alpha: f32, iterations: usize, seed: u64) -> Self {
        Pgd {
            epsilon,
            alpha,
            iterations,
            seed,
        }
    }
}

impl Attack for Pgd {
    fn name(&self) -> &'static str {
        "PGD"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        check_positive(self.epsilon, "epsilon")?;
        check_positive(self.alpha, "alpha")?;
        if self.iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "iterations must be non-zero".into(),
            ));
        }
        let mut rng = Rng64::new(self.seed);
        let noise: Vec<f32> = (0..input.len())
            .map(|_| rng.uniform(-self.epsilon, self.epsilon))
            .collect();
        let mut current = project_linf(
            &input.add(&Tensor::from_vec(noise, input.dims())?)?,
            input,
            self.epsilon,
        )?;
        for _ in 0..self.iterations {
            let grad = network.input_gradient(&current, label)?;
            let stepped = current.add(&grad.signum().scale(self.alpha))?;
            current = project_linf(&stepped, input, self.epsilon)?;
        }
        AdversarialExample::evaluate(network, input, current, label)
    }
}

/// DeepFool (Moosavi-Dezfooli et al.): iteratively steps towards the closest
/// (linearised) decision boundary, producing small L2 perturbations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepFool {
    max_iterations: usize,
    overshoot: f32,
}

impl DeepFool {
    /// Creates a DeepFool attack with an iteration cap and overshoot factor
    /// (the canonical value is 0.02).
    pub fn new(max_iterations: usize, overshoot: f32) -> Self {
        DeepFool {
            max_iterations,
            overshoot,
        }
    }
}

impl Attack for DeepFool {
    fn name(&self) -> &'static str {
        "DeepFool"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        if self.max_iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "max_iterations must be non-zero".into(),
            ));
        }
        if self.overshoot < 0.0 {
            return Err(AttackError::InvalidConfig(
                "overshoot must be non-negative".into(),
            ));
        }
        let num_classes = network.num_classes();
        let mut current = input.clone();
        for _ in 0..self.max_iterations {
            if network.predict(&current)? != label {
                break;
            }
            let trace = network.forward_trace(&current)?;
            let logits = trace.logits().clone();
            // Gradient of the true-class logit.
            let grad_label = logit_gradient(network, &current, label)?;
            // Find the closest boundary over all other classes.
            let mut best: Option<(f32, Tensor)> = None;
            for k in 0..num_classes {
                if k == label {
                    continue;
                }
                let grad_k = logit_gradient(network, &current, k)?;
                let w = grad_k.sub(&grad_label)?;
                let f = logits.as_slice()[k] - logits.as_slice()[label];
                let w_norm = w.l2_norm().max(1e-8);
                let distance = f.abs() / w_norm;
                let step = w.scale((f.abs() + 1e-4) / (w_norm * w_norm));
                if best.as_ref().map(|(d, _)| distance < *d).unwrap_or(true) {
                    best = Some((distance, step));
                }
            }
            let (_, step) = best.ok_or_else(|| {
                AttackError::InvalidConfig("DeepFool needs at least two classes".into())
            })?;
            current = current
                .add(&step.scale(1.0 + self.overshoot))?
                .clamp(0.0, 1.0);
        }
        AdversarialExample::evaluate(network, input, current, label)
    }
}

/// Carlini & Wagner L2 attack in its penalty form: minimise
/// `‖δ‖² + c · max(Z_y − max_{k≠y} Z_k, −κ)` by gradient descent, projected onto the
/// valid pixel box.  (The full attack binary-searches `c` and re-parametrises with
/// `tanh`; the penalty form preserves its qualitative behaviour — low-distortion,
/// low-confidence adversaries — at a fraction of the cost, as noted in DESIGN.md.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarliniWagnerL2 {
    c: f32,
    learning_rate: f32,
    iterations: usize,
    kappa: f32,
}

impl CarliniWagnerL2 {
    /// Creates a CW-L2 attack with penalty weight `c`, step size, iteration count
    /// and confidence margin `kappa`.
    pub fn new(c: f32, learning_rate: f32, iterations: usize, kappa: f32) -> Self {
        CarliniWagnerL2 {
            c,
            learning_rate,
            iterations,
            kappa,
        }
    }
}

impl Attack for CarliniWagnerL2 {
    fn name(&self) -> &'static str {
        "CWL2"
    }

    fn perturb(
        &self,
        network: &Network,
        input: &Tensor,
        label: usize,
    ) -> Result<AdversarialExample> {
        check_positive(self.c, "c")?;
        check_positive(self.learning_rate, "learning_rate")?;
        if self.iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "iterations must be non-zero".into(),
            ));
        }
        let mut current = input.clone();
        let mut best: Option<Tensor> = None;
        let mut best_l2 = f32::INFINITY;
        for _ in 0..self.iterations {
            let logits = network.forward(&current)?;
            let scores = logits.as_slice();
            let (runner_up, _) = scores
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != label)
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .ok_or_else(|| {
                    AttackError::InvalidConfig("CW-L2 needs at least two classes".into())
                })?;
            let margin = scores[label] - scores[runner_up];

            if margin < 0.0 {
                // Already adversarial: remember the smallest-distortion success.
                let l2 = current.sub(input)?.l2_norm();
                if l2 < best_l2 {
                    best_l2 = l2;
                    best = Some(current.clone());
                }
            }

            // Gradient of the objective.
            let mut grad = current.sub(input)?.scale(2.0);
            if margin > -self.kappa {
                // d margin / dx = ∇Z_y − ∇Z_runner_up.
                let grad_margin = logit_gradient(network, &current, label)?
                    .sub(&logit_gradient(network, &current, runner_up)?)?;
                grad.add_scaled_inplace(&grad_margin, self.c)?;
            }
            current = current
                .sub(&grad.scale(self.learning_rate))?
                .clamp(0.0, 1.0);
        }
        let perturbed = best.unwrap_or(current);
        AdversarialExample::evaluate(network, input, perturbed, label)
    }
}

/// Gradient of a single logit with respect to the input.
fn logit_gradient(network: &Network, input: &Tensor, class: usize) -> Result<Tensor> {
    let trace = network.forward_trace(input)?;
    let mut grad_logits = Tensor::zeros(trace.logits().dims());
    grad_logits.as_mut_slice()[class] = 1.0;
    Ok(network.backward(&trace, &grad_logits)?.input_grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::{zoo, TrainConfig, Trainer};

    fn trained_mlp() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(11);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..20 {
                let data: Vec<f32> = (0..8)
                    .map(|d| {
                        let hot = if class == 0 { d < 4 } else { d >= 4 };
                        if hot {
                            0.85 + 0.05 * rng.normal()
                        } else {
                            0.15 + 0.05 * rng.normal()
                        }
                    })
                    .map(|v: f32| v.clamp(0.0, 1.0))
                    .collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn fgsm_respects_epsilon_and_often_succeeds() {
        let (net, samples) = trained_mlp();
        let attack = Fgsm::new(0.4);
        let mut successes = 0;
        for (x, y) in samples.iter().take(10) {
            let ex = attack.perturb(&net, x, *y).unwrap();
            assert!(ex.distortion_linf <= 0.4 + 1e-5);
            assert!(ex.input.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
            if ex.success {
                successes += 1;
            }
        }
        assert!(
            successes > 0,
            "FGSM with a large budget should flip something"
        );
    }

    #[test]
    fn iterative_attacks_are_at_least_as_strong_as_fgsm() {
        let (net, samples) = trained_mlp();
        let eps = 0.25;
        let fgsm = Fgsm::new(eps);
        let bim = Bim::new(eps, 0.05, 10);
        let pgd = Pgd::new(eps, 0.05, 10, 3);
        let count = |attack: &dyn Attack| {
            samples
                .iter()
                .take(20)
                .filter(|(x, y)| attack.perturb(&net, x, *y).unwrap().success)
                .count()
        };
        let f = count(&fgsm);
        let b = count(&bim);
        let p = count(&pgd);
        assert!(
            b >= f,
            "BIM ({b}) should be at least as strong as FGSM ({f})"
        );
        assert!(p + 1 >= b, "PGD ({p}) should be comparable to BIM ({b})");
    }

    #[test]
    fn deepfool_crosses_the_boundary_with_bounded_distortion() {
        let (net, samples) = trained_mlp();
        let deepfool = DeepFool::new(30, 0.02);
        let mut df_success = 0;
        let mut success_mse = 0.0;
        for (x, y) in samples.iter().take(10) {
            let df = deepfool.perturb(&net, x, *y).unwrap();
            if df.success {
                df_success += 1;
                success_mse += df.distortion_mse;
            }
        }
        assert!(
            df_success >= 5,
            "DeepFool succeeded only {df_success}/10 times"
        );
        // DeepFool aims for the closest boundary: its successful perturbations stay
        // well below the distance between the two class prototypes (MSE ≈ 0.49).
        assert!(
            (success_mse / df_success as f32) < 0.45,
            "mean DeepFool MSE too large: {}",
            success_mse / df_success as f32
        );
    }

    #[test]
    fn cw_l2_finds_low_distortion_adversaries() {
        let (net, samples) = trained_mlp();
        let cw = CarliniWagnerL2::new(2.0, 0.05, 60, 0.0);
        let mut successes = 0;
        let mut total_mse = 0.0;
        for (x, y) in samples.iter().take(8) {
            let ex = cw.perturb(&net, x, *y).unwrap();
            if ex.success {
                successes += 1;
                total_mse += ex.distortion_mse;
            }
        }
        assert!(successes > 0, "CW-L2 should succeed on some inputs");
        assert!((total_mse / successes as f32) < 0.2);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (net, samples) = trained_mlp();
        let (x, y) = &samples[0];
        assert!(Fgsm::new(0.0).perturb(&net, x, *y).is_err());
        assert!(Bim::new(0.1, 0.0, 5).perturb(&net, x, *y).is_err());
        assert!(Bim::new(0.1, 0.1, 0).perturb(&net, x, *y).is_err());
        assert!(Pgd::new(-1.0, 0.1, 5, 0).perturb(&net, x, *y).is_err());
        assert!(DeepFool::new(0, 0.02).perturb(&net, x, *y).is_err());
        assert!(CarliniWagnerL2::new(0.0, 0.1, 5, 0.0)
            .perturb(&net, x, *y)
            .is_err());
        assert_eq!(Fgsm::new(0.1).name(), "FGSM");
        assert_eq!(Bim::new(0.1, 0.1, 1).name(), "BIM");
        assert_eq!(Pgd::new(0.1, 0.1, 1, 0).name(), "PGD");
        assert_eq!(DeepFool::new(1, 0.02).name(), "DeepFool");
        assert_eq!(CarliniWagnerL2::new(1.0, 0.1, 1, 0.0).name(), "CWL2");
    }
}
