//! Detection-quality metrics: AUC and thresholded confusion counts.

use crate::{ForestError, Result};

/// Confusion-matrix counts at a fixed decision threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Positives classified as positive.
    pub true_positives: usize,
    /// Negatives classified as positive.
    pub false_positives: usize,
    /// Negatives classified as negative.
    pub true_negatives: usize,
    /// Positives classified as negative.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// True-positive rate (recall); 0 when there are no positives.
    pub fn true_positive_rate(&self) -> f32 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            0.0
        } else {
            self.true_positives as f32 / p as f32
        }
    }

    /// False-positive rate; 0 when there are no negatives.
    pub fn false_positive_rate(&self) -> f32 {
        let n = self.false_positives + self.true_negatives;
        if n == 0 {
            0.0
        } else {
            self.false_positives as f32 / n as f32
        }
    }

    /// Overall accuracy; 0 for an empty sample set.
    pub fn accuracy(&self) -> f32 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f32 / total as f32
        }
    }
}

/// Area under the ROC curve for scores where higher means "more positive".
///
/// Implemented as the rank-based Mann–Whitney U statistic with tie correction, so it
/// matches the usual `roc_auc_score` semantics: 1.0 for perfect separation, 0.5 for
/// chance.
///
/// # Errors
///
/// Returns [`ForestError::InvalidMetricInput`] if the slices differ in length, are
/// empty, or contain only one class.
///
/// # Example
///
/// ```
/// use ptolemy_forest::auc;
///
/// # fn main() -> Result<(), ptolemy_forest::ForestError> {
/// let perfect = auc(&[0.9, 0.8, 0.1, 0.2], &[true, true, false, false])?;
/// assert!((perfect - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn auc(scores: &[f32], labels: &[bool]) -> Result<f32> {
    if scores.len() != labels.len() {
        return Err(ForestError::InvalidMetricInput(format!(
            "{} scores but {} labels",
            scores.len(),
            labels.len()
        )));
    }
    if scores.is_empty() {
        return Err(ForestError::InvalidMetricInput("empty score set".into()));
    }
    let positives = labels.iter().filter(|l| **l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return Err(ForestError::InvalidMetricInput(
            "AUC requires both positive and negative samples".into(),
        ));
    }

    // Rank the scores (average rank for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }

    let positive_rank_sum: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, l)| **l)
        .map(|(r, _)| *r)
        .sum();
    let u = positive_rank_sum - (positives as f64 * (positives as f64 + 1.0)) / 2.0;
    Ok((u / (positives as f64 * negatives as f64)) as f32)
}

/// Confusion counts when classifying `score >= threshold` as positive.
///
/// # Errors
///
/// Returns [`ForestError::InvalidMetricInput`] if the slices differ in length.
pub fn confusion_at_threshold(
    scores: &[f32],
    labels: &[bool],
    threshold: f32,
) -> Result<ConfusionCounts> {
    if scores.len() != labels.len() {
        return Err(ForestError::InvalidMetricInput(format!(
            "{} scores but {} labels",
            scores.len(),
            labels.len()
        )));
    }
    let mut counts = ConfusionCounts::default();
    for (score, label) in scores.iter().zip(labels) {
        let predicted = *score >= threshold;
        match (predicted, *label) {
            (true, true) => counts.true_positives += 1,
            (true, false) => counts.false_positives += 1,
            (false, false) => counts.true_negatives += 1,
            (false, true) => counts.false_negatives += 1,
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [true, true, false, false];
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels).unwrap() - 1.0).abs() < 1e-6);
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels).unwrap() - 0.0).abs() < 1e-6);
    }

    #[test]
    fn auc_chance_level_for_identical_scores() {
        let labels = [true, false, true, false];
        let a = auc(&[0.5, 0.5, 0.5, 0.5], &labels).unwrap();
        assert!((a - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        // One inversion among 2x2 pairs -> AUC = 3/4.
        let a = auc(&[0.9, 0.4, 0.6, 0.1], &[true, true, false, false]).unwrap();
        assert!((a - 0.75).abs() < 1e-6);
    }

    #[test]
    fn auc_rejects_bad_input() {
        assert!(auc(&[0.5], &[true, false]).is_err());
        assert!(auc(&[], &[]).is_err());
        assert!(auc(&[0.5, 0.6], &[true, true]).is_err());
    }

    #[test]
    fn confusion_counts_and_rates() {
        let scores = [0.9, 0.7, 0.4, 0.2];
        let labels = [true, false, true, false];
        let counts = confusion_at_threshold(&scores, &labels, 0.5).unwrap();
        assert_eq!(counts.true_positives, 1);
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.true_negatives, 1);
        assert!((counts.true_positive_rate() - 0.5).abs() < 1e-6);
        assert!((counts.false_positive_rate() - 0.5).abs() < 1e-6);
        assert!((counts.accuracy() - 0.5).abs() < 1e-6);
        assert!(confusion_at_threshold(&scores, &labels[..2], 0.5).is_err());
    }

    #[test]
    fn empty_confusion_rates_are_zero() {
        let counts = ConfusionCounts::default();
        assert_eq!(counts.true_positive_rate(), 0.0);
        assert_eq!(counts.false_positive_rate(), 0.0);
        assert_eq!(counts.accuracy(), 0.0);
    }
}
