//! CART decision trees and bagged random forests for binary classification.

use ptolemy_tensor::Rng64;

use crate::{ForestError, Result};

/// Configuration of a single decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
        }
    }
}

/// Configuration of a [`RandomForest`].
///
/// The defaults mirror the paper's deployment: 100 trees of average depth ≈ 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Fraction of the training set bootstrapped for each tree.
    pub bootstrap_fraction: f32,
    /// Seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 100,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0xF0E57,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        positive_fraction: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A single CART decision tree (Gini impurity, axis-aligned splits).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    num_features: usize,
}

impl DecisionTree {
    /// Fits a tree to `(features, labels)` where `labels[i] == true` marks the
    /// positive (adversarial) class.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] if the inputs are empty or have
    /// mismatched lengths.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[bool],
        config: &TreeConfig,
        rng: &mut Rng64,
    ) -> Result<Self> {
        validate(features, labels)?;
        let num_features = features[0].len();
        let indices: Vec<usize> = (0..features.len()).collect();
        let root = build_node(features, labels, &indices, config, 0, num_features, rng);
        Ok(DecisionTree { root, num_features })
    }

    /// Probability that `sample` belongs to the positive class.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureCountMismatch`] if `sample` has the wrong
    /// number of features.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<f32> {
        if sample.len() != self.num_features {
            return Err(ForestError::FeatureCountMismatch {
                expected: self.num_features,
                actual: sample.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { positive_fraction } => return Ok(*positive_fraction),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Maximum depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }

    /// Number of decision nodes plus leaves (used by the MCU cost model).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

/// A bagged ensemble of [`DecisionTree`]s.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_features: usize,
}

impl RandomForest {
    /// Fits a forest to `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] if the inputs are empty,
    /// mismatched, or the configuration requests zero trees.
    pub fn fit(features: &[Vec<f32>], labels: &[bool], config: &ForestConfig) -> Result<Self> {
        validate(features, labels)?;
        if config.num_trees == 0 {
            return Err(ForestError::InvalidTrainingData(
                "forest needs at least one tree".into(),
            ));
        }
        let mut rng = Rng64::new(config.seed);
        let n = features.len();
        let bootstrap_n = ((n as f32) * config.bootstrap_fraction).ceil().max(1.0) as usize;
        let mut trees = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            let mut boot_features = Vec::with_capacity(bootstrap_n);
            let mut boot_labels = Vec::with_capacity(bootstrap_n);
            for _ in 0..bootstrap_n {
                let idx = rng.below(n);
                boot_features.push(features[idx].clone());
                boot_labels.push(labels[idx]);
            }
            trees.push(DecisionTree::fit(
                &boot_features,
                &boot_labels,
                &config.tree,
                &mut rng,
            )?);
        }
        Ok(RandomForest {
            trees,
            num_features: features[0].len(),
        })
    }

    /// Mean positive-class probability over all trees.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureCountMismatch`] if `sample` has the wrong
    /// number of features.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<f32> {
        let mut total = 0.0;
        for tree in &self.trees {
            total += tree.predict_proba(sample)?;
        }
        Ok(total / self.trees.len() as f32)
    }

    /// Hard decision at the 0.5 threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureCountMismatch`] if `sample` has the wrong
    /// number of features.
    pub fn predict(&self, sample: &[f32]) -> Result<bool> {
        Ok(self.predict_proba(sample)? >= 0.5)
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the forest was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Average tree depth (the paper quotes ≈ 12 for its deployment).
    pub fn average_depth(&self) -> f32 {
        self.trees.iter().map(|t| t.depth() as f32).sum::<f32>() / self.trees.len() as f32
    }

    /// Total decision/leaf node count, a proxy for the MCU operation count.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::node_count).sum()
    }
}

fn validate(features: &[Vec<f32>], labels: &[bool]) -> Result<()> {
    if features.is_empty() || labels.is_empty() {
        return Err(ForestError::InvalidTrainingData(
            "empty training set".into(),
        ));
    }
    if features.len() != labels.len() {
        return Err(ForestError::InvalidTrainingData(format!(
            "{} feature rows but {} labels",
            features.len(),
            labels.len()
        )));
    }
    let width = features[0].len();
    if width == 0 {
        return Err(ForestError::InvalidTrainingData(
            "zero-width feature rows".into(),
        ));
    }
    if features.iter().any(|row| row.len() != width) {
        return Err(ForestError::InvalidTrainingData(
            "feature rows have inconsistent widths".into(),
        ));
    }
    Ok(())
}

fn gini(positive: usize, total: usize) -> f32 {
    if total == 0 {
        return 0.0;
    }
    let p = positive as f32 / total as f32;
    2.0 * p * (1.0 - p)
}

fn build_node(
    features: &[Vec<f32>],
    labels: &[bool],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
    num_features: usize,
    rng: &mut Rng64,
) -> Node {
    let positives = indices.iter().filter(|&&i| labels[i]).count();
    let positive_fraction = positives as f32 / indices.len().max(1) as f32;
    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || positives == 0
        || positives == indices.len()
    {
        return Node::Leaf { positive_fraction };
    }

    // Random-forest style feature subsampling: examine ~sqrt(F) random features.
    let num_candidates = ((num_features as f32).sqrt().ceil() as usize).max(1);
    let mut best: Option<(usize, f32, f32)> = None; // (feature, threshold, impurity)
    for _ in 0..num_candidates.max(num_features.min(3)) {
        let feature = rng.below(num_features);
        let mut values: Vec<f32> = indices.iter().map(|&i| features[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for pair in values.windows(2) {
            let threshold = (pair[0] + pair[1]) / 2.0;
            let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
            for &i in indices {
                let positive = labels[i];
                if features[i][feature] <= threshold {
                    if positive {
                        lp += 1;
                    } else {
                        ln += 1;
                    }
                } else if positive {
                    rp += 1;
                } else {
                    rn += 1;
                }
            }
            let (lt, rt) = (lp + ln, rp + rn);
            if lt == 0 || rt == 0 {
                continue;
            }
            let impurity =
                (lt as f32 * gini(lp, lt) + rt as f32 * gini(rp, rt)) / indices.len() as f32;
            if best.map(|(_, _, b)| impurity < b).unwrap_or(true) {
                best = Some((feature, threshold, impurity));
            }
        }
    }

    match best {
        None => Node::Leaf { positive_fraction },
        Some((feature, threshold, _)) => {
            let left_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| features[i][feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| features[i][feature] > threshold)
                .collect();
            if left_idx.is_empty() || right_idx.is_empty() {
                return Node::Leaf { positive_fraction };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_node(
                    features,
                    labels,
                    &left_idx,
                    config,
                    depth + 1,
                    num_features,
                    rng,
                )),
                right: Box::new(build_node(
                    features,
                    labels,
                    &right_idx,
                    config,
                    depth + 1,
                    num_features,
                    rng,
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_data(n: usize) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = Rng64::new(3);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let positive = i % 2 == 0;
            let base = if positive { 0.2 } else { 0.8 };
            features.push(vec![base + 0.05 * rng.normal(), rng.next_f32()]);
            labels.push(positive);
        }
        (features, labels)
    }

    #[test]
    fn tree_learns_a_separable_problem() {
        let (features, labels) = separable_data(200);
        let mut rng = Rng64::new(0);
        let tree = DecisionTree::fit(&features, &labels, &TreeConfig::default(), &mut rng).unwrap();
        assert!(tree.predict_proba(&[0.15, 0.5]).unwrap() > 0.7);
        assert!(tree.predict_proba(&[0.9, 0.5]).unwrap() < 0.3);
        assert!(tree.depth() >= 1);
        assert!(tree.node_count() >= 3);
        assert!(tree.predict_proba(&[0.1]).is_err());
    }

    #[test]
    fn forest_learns_and_reports_structure() {
        let (features, labels) = separable_data(200);
        let config = ForestConfig {
            num_trees: 20,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&features, &labels, &config).unwrap();
        assert_eq!(forest.num_trees(), 20);
        assert!(forest.predict(&[0.1, 0.5]).unwrap());
        assert!(!forest.predict(&[0.9, 0.5]).unwrap());
        assert!(forest.average_depth() >= 1.0);
        assert!(forest.total_nodes() >= 60);
        let p = forest.predict_proba(&[0.5, 0.5]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn invalid_training_inputs_are_rejected() {
        let mut rng = Rng64::new(0);
        assert!(DecisionTree::fit(&[], &[], &TreeConfig::default(), &mut rng).is_err());
        assert!(DecisionTree::fit(
            &[vec![1.0]],
            &[true, false],
            &TreeConfig::default(),
            &mut rng
        )
        .is_err());
        assert!(DecisionTree::fit(&[vec![]], &[true], &TreeConfig::default(), &mut rng).is_err());
        assert!(DecisionTree::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[true, false],
            &TreeConfig::default(),
            &mut rng
        )
        .is_err());
        assert!(RandomForest::fit(
            &[vec![1.0]],
            &[true],
            &ForestConfig {
                num_trees: 0,
                ..ForestConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn pure_training_set_yields_constant_predictions() {
        let features = vec![vec![0.3], vec![0.6], vec![0.9]];
        let labels = vec![true, true, true];
        let forest = RandomForest::fit(
            &features,
            &labels,
            &ForestConfig {
                num_trees: 5,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(forest.predict_proba(&[0.5]).unwrap(), 1.0);
    }

    #[test]
    fn depth_respects_configuration() {
        let (features, labels) = separable_data(300);
        let mut rng = Rng64::new(1);
        let shallow = DecisionTree::fit(
            &features,
            &labels,
            &TreeConfig {
                max_depth: 2,
                min_samples_split: 2,
            },
            &mut rng,
        )
        .unwrap();
        assert!(shallow.depth() <= 2);
    }
}
