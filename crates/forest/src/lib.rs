//! # ptolemy-forest
//!
//! A small random-forest classifier and the AUC metric, matching the classification
//! stage of the Ptolemy detection framework (paper Sec. III-B and Sec. V-D): the
//! path similarity computed by the path constructor is fed into a random forest of
//! 100 trees with average depth ≈ 12 running on the controller MCU, and detection
//! quality is reported as area-under-curve.
//!
//! # Example
//!
//! ```
//! use ptolemy_forest::{auc, ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), ptolemy_forest::ForestError> {
//! // Benign samples have high similarity, adversarial ones low.
//! let features = vec![vec![0.9], vec![0.85], vec![0.2], vec![0.1]];
//! let labels = vec![false, false, true, true];
//! let forest = RandomForest::fit(&features, &labels, &ForestConfig::default())?;
//! let score = forest.predict_proba(&[0.15])?;
//! assert!(score > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod metrics;
mod tree;

pub use error::ForestError;
pub use metrics::{auc, confusion_at_threshold, ConfusionCounts};
pub use tree::{DecisionTree, ForestConfig, RandomForest, TreeConfig};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ForestError>;
