use std::fmt;

/// Error type for random-forest training and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// Training data was empty or inconsistent.
    InvalidTrainingData(String),
    /// A feature vector had the wrong number of features.
    FeatureCountMismatch {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        actual: usize,
    },
    /// Metric inputs were inconsistent (e.g. score/label length mismatch).
    InvalidMetricInput(String),
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            ForestError::FeatureCountMismatch { expected, actual } => {
                write!(f, "expected {expected} features, got {actual}")
            }
            ForestError::InvalidMetricInput(msg) => write!(f, "invalid metric input: {msg}"),
        }
    }
}

impl std::error::Error for ForestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!ForestError::InvalidTrainingData("x".into())
            .to_string()
            .is_empty());
        assert!(!ForestError::FeatureCountMismatch {
            expected: 2,
            actual: 1
        }
        .to_string()
        .is_empty());
        assert!(!ForestError::InvalidMetricInput("y".into())
            .to_string()
            .is_empty());
    }
}
