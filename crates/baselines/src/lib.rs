//! # ptolemy-baselines
//!
//! Re-implementations of the three state-of-the-art adversarial-sample detectors the
//! Ptolemy paper compares against (Sec. VI-B):
//!
//! * [`EpDefense`] — **EP** (Qiu et al., CVPR 2019), per-class effective-path
//!   profiling; accuracy is close to Ptolemy's BwCu but the cost is BwCu-like on
//!   every input because EP has no co-designed compiler or hardware.
//! * [`CdrpDefense`] — **CDRP** (Wang et al., CVPR 2018), channel-wise critical data
//!   routing paths; gate learning amounts to a per-input retraining step, so CDRP
//!   cannot detect adversaries at inference time and only participates in the
//!   accuracy comparison (Fig. 10).
//! * [`DeepFenseDefense`] — **DeepFense** (Rouhani et al., ICCAD 2018), redundant
//!   latent defender models in three operating points ([`DeepFenseVariant`]:
//!   `DFL`/`DFM`/`DFH`), re-hosted on the Ptolemy accelerator model exactly as the
//!   paper does for its Fig. 12 comparison.
//!
//! All three implement the [`BaselineDetector`] trait so the benchmark harnesses can
//! evaluate them with the same AUC machinery used for the Ptolemy variants.
//!
//! # Example
//!
//! ```
//! use ptolemy_baselines::{BaselineDetector, EpDefense};
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
//! let samples: Vec<(Tensor, usize)> = (0..20)
//!     .map(|i| (Tensor::full(&[8], if i % 2 == 0 { 1.0 } else { 0.0 }), i % 2))
//!     .collect();
//! Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
//! let ep = EpDefense::fit(&net, &samples, 0.5)?;
//! let score = ep.score(&net, &samples[0].0)?;
//! assert!((0.0..=1.0).contains(&score));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdrp;
mod deepfense;
mod ep;
mod error;

pub use cdrp::{gate_vector, CdrpDefense};
pub use deepfense::{DeepFenseDefense, DeepFenseVariant};
pub use ep::EpDefense;
pub use error::BaselineError;

use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Common interface of the baseline detectors, mirroring how the paper evaluates
/// them: a per-input suspicion score in `[0, 1]` that feeds the AUC metric.
pub trait BaselineDetector {
    /// Name used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Whether the method can run at inference time (CDRP cannot).
    fn online(&self) -> bool;

    /// Suspicion score of one input — higher means more likely adversarial.
    ///
    /// # Errors
    ///
    /// Propagates substrate and classifier errors.
    fn score(&self, network: &Network, input: &Tensor) -> Result<f32>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_object(_d: &dyn BaselineDetector) {}
    }
}
