//! The CDRP baseline (Wang et al., CVPR 2018): critical data routing paths.
//!
//! CDRP attaches a control gate to every channel of every layer and learns, per
//! input, which channels are critical for the prediction; the per-class
//! distribution of gate vectors is then used to flag inputs that route through
//! unusual channels.  Learning the gates requires an optimisation pass per input
//! (effectively a retraining step), which is why the paper classifies CDRP as an
//! offline method that cannot detect adversaries at inference time.
//!
//! This re-implementation approximates the learned gates with channel-saliency
//! gates — the mean post-activation magnitude of every channel, which is the
//! quantity the learned gates converge towards for well-trained networks — and
//! keeps CDRP's decision procedure: compare an input's gate vector against the mean
//! gate vector of its predicted class and feed the similarity to a classifier.

use ptolemy_forest::{ForestConfig, RandomForest};
use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::{BaselineDetector, BaselineError, Result};

/// Maximum number of gates kept per layer for non-convolutional layers.
const MAX_GATES_PER_LAYER: usize = 32;

/// The CDRP critical-routing-path defense.
#[derive(Debug, Clone)]
pub struct CdrpDefense {
    class_gates: Vec<Vec<f32>>,
    forest: RandomForest,
}

/// Computes the gate vector of one input: per-channel mean activations of every
/// weight layer's output, L2-normalised per layer.
///
/// # Errors
///
/// Propagates substrate errors from the forward pass.
pub fn gate_vector(network: &Network, input: &Tensor) -> Result<Vec<f32>> {
    let trace = network.forward_trace(input)?;
    let mut gates = Vec::new();
    for &layer in &network.weight_layer_indices() {
        let out = trace.output(layer);
        let dims = out.dims();
        let layer_gates: Vec<f32> = if dims.len() == 3 {
            // Convolutional output [C, H, W]: one gate per channel.
            let (c, hw) = (dims[0], dims[1] * dims[2]);
            (0..c)
                .map(|ch| {
                    let slice = &out.as_slice()[ch * hw..(ch + 1) * hw];
                    slice.iter().map(|v| v.max(0.0)).sum::<f32>() / hw as f32
                })
                .collect()
        } else {
            // Dense output: chunk the activations into at most MAX_GATES_PER_LAYER
            // groups so the gate vector stays channel-granular like CDRP's.
            let flat = out.as_slice();
            let groups = flat.len().clamp(1, MAX_GATES_PER_LAYER);
            let chunk = flat.len().div_ceil(groups);
            flat.chunks(chunk)
                .map(|c| c.iter().map(|v| v.max(0.0)).sum::<f32>() / c.len() as f32)
                .collect()
        };
        let norm = layer_gates.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            gates.extend(layer_gates.iter().map(|v| v / norm));
        } else {
            gates.extend(layer_gates);
        }
    }
    Ok(gates)
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    // lint:allow(float-eq): zero-norm division guard; norms are exact +0.0 here
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

impl CdrpDefense {
    /// Fits the CDRP defense: per-class mean gate vectors from the training set and
    /// a classifier calibrated on benign and adversarial inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidInput`] for empty inputs and propagates
    /// substrate/classifier errors.
    pub fn fit(
        network: &Network,
        train: &[(Tensor, usize)],
        benign: &[Tensor],
        adversarial: &[Tensor],
    ) -> Result<Self> {
        if train.is_empty() || benign.is_empty() || adversarial.is_empty() {
            return Err(BaselineError::InvalidInput(
                "CDRP needs training, benign and adversarial inputs".into(),
            ));
        }
        // Per-class mean gate vector over correctly-classified training samples.
        let num_classes = network.num_classes();
        let mut sums: Vec<Vec<f32>> = vec![Vec::new(); num_classes];
        let mut counts = vec![0usize; num_classes];
        for (input, label) in train {
            if network.predict(input)? != *label {
                continue;
            }
            let gates = gate_vector(network, input)?;
            if sums[*label].is_empty() {
                sums[*label] = vec![0.0; gates.len()];
            }
            for (s, g) in sums[*label].iter_mut().zip(&gates) {
                *s += g;
            }
            counts[*label] += 1;
        }
        let class_gates: Vec<Vec<f32>> = sums
            .into_iter()
            .zip(&counts)
            .map(|(sum, &n)| {
                if n == 0 {
                    sum
                } else {
                    sum.into_iter().map(|v| v / n as f32).collect()
                }
            })
            .collect();

        // Calibrate the classifier on the routing-similarity feature.
        let defense = CdrpDefense {
            class_gates,
            forest: RandomForest::fit(
                &[vec![0.0], vec![1.0]],
                &[false, true],
                &ForestConfig {
                    num_trees: 1,
                    ..ForestConfig::default()
                },
            )?,
        };
        let mut features = Vec::with_capacity(benign.len() + adversarial.len());
        let mut labels = Vec::with_capacity(benign.len() + adversarial.len());
        for input in benign {
            features.push(vec![defense.routing_similarity(network, input)?]);
            labels.push(false);
        }
        for input in adversarial {
            features.push(vec![defense.routing_similarity(network, input)?]);
            labels.push(true);
        }
        let forest = RandomForest::fit(&features, &labels, &ForestConfig::default())?;
        Ok(CdrpDefense { forest, ..defense })
    }

    /// Cosine similarity between an input's gate vector and the mean gate vector of
    /// its predicted class (the CDRP detection feature).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn routing_similarity(&self, network: &Network, input: &Tensor) -> Result<f32> {
        let predicted = network.predict(input)?;
        let gates = gate_vector(network, input)?;
        let class = self.class_gates.get(predicted).ok_or_else(|| {
            BaselineError::InvalidInput(format!("class {predicted} not profiled"))
        })?;
        if class.is_empty() {
            // No correctly-classified training sample of this class was seen; the
            // routing profile is unknown, so report zero similarity (suspicious).
            return Ok(0.0);
        }
        Ok(cosine(&gates, class))
    }

    /// The per-class mean gate vectors.
    pub fn class_gates(&self) -> &[Vec<f32>] {
        &self.class_gates
    }
}

impl BaselineDetector for CdrpDefense {
    fn name(&self) -> &'static str {
        "CDRP"
    }

    fn online(&self) -> bool {
        // Gate learning is a per-input optimisation — the paper excludes CDRP from
        // the latency/energy comparison because it cannot run at inference time.
        false
    }

    fn score(&self, network: &Network, input: &Tensor) -> Result<f32> {
        let similarity = self.routing_similarity(network, input)?;
        Ok(self.forest.predict_proba(&[similarity])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    fn trained_lenet() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(3);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..10 {
                let data: Vec<f32> = (0..2 * 8 * 8)
                    .map(|i| {
                        let on = (i / 64) == class;
                        if on {
                            0.8 + 0.1 * rng.normal()
                        } else {
                            0.1 * rng.normal()
                        }
                    })
                    .collect();
                samples.push((Tensor::from_vec(data, &[2, 8, 8]).unwrap(), class));
            }
        }
        let mut net = zoo::lenet(2, 2, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn gate_vectors_are_normalised_and_stable() {
        let (net, samples) = trained_lenet();
        let g1 = gate_vector(&net, &samples[0].0).unwrap();
        let g2 = gate_vector(&net, &samples[0].0).unwrap();
        assert_eq!(g1, g2);
        assert!(!g1.is_empty());
        assert!(g1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fit_rejects_empty_inputs() {
        let (net, samples) = trained_lenet();
        let benign: Vec<Tensor> = samples.iter().take(4).map(|(x, _)| x.clone()).collect();
        assert!(CdrpDefense::fit(&net, &[], &benign, &benign).is_err());
        assert!(CdrpDefense::fit(&net, &samples, &[], &benign).is_err());
        assert!(CdrpDefense::fit(&net, &samples, &benign, &[]).is_err());
    }

    #[test]
    fn benign_inputs_route_like_their_class() {
        let (net, samples) = trained_lenet();
        let benign: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
        // Noise inputs stand in for adversarial calibration samples.
        let mut rng = Rng64::new(9);
        let noise: Vec<Tensor> = (0..8)
            .map(|_| {
                Tensor::from_vec((0..128).map(|_| rng.normal()).collect(), &[2, 8, 8]).unwrap()
            })
            .collect();
        let cdrp = CdrpDefense::fit(&net, &samples, &benign, &noise).unwrap();
        assert_eq!(cdrp.name(), "CDRP");
        assert!(!cdrp.online());
        assert_eq!(cdrp.class_gates().len(), 2);
        let benign_sim = cdrp.routing_similarity(&net, &samples[0].0).unwrap();
        assert!((0.0..=1.0 + 1e-6).contains(&benign_sim));
        let score = cdrp.score(&net, &samples[0].0).unwrap();
        assert!((0.0..=1.0).contains(&score));
    }
}
