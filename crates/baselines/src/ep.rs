//! The EP baseline (Qiu et al., CVPR 2019): adversarial defense through
//! network-profiling-based *effective path* extraction.
//!
//! EP profiles, per class, the set of neurons that contribute most to the class
//! output ("effective paths") and flags inputs whose effective path diverges from
//! the profile of their predicted class.  It is the closest prior work to Ptolemy —
//! the paper reports Ptolemy's backward-extraction variants beat it by up to 0.02
//! AUC while being far cheaper, because EP always extracts every layer with
//! cumulative thresholds and has no co-designed compiler/hardware support.
//!
//! This re-implementation reuses the Ptolemy extraction machinery (the effective
//! path of EP and the activation path of Ptolemy's BwCu variant coincide for
//! feed-forward networks) but scores inputs directly by raw path similarity rather
//! than a learned classifier, and prices the defense with every compiler
//! optimisation disabled.

use ptolemy_accel::{ExecutionReport, HardwareConfig, Simulator};
use ptolemy_compiler::{Compiler, OptimizationFlags};
use ptolemy_core::{path_similarity, variants, ClassPathSet, DetectionProgram, Profiler};
use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::{BaselineDetector, BaselineError, Result};

/// The EP effective-path defense.
#[derive(Debug, Clone)]
pub struct EpDefense {
    program: DetectionProgram,
    class_paths: ClassPathSet,
    theta: f32,
}

impl EpDefense {
    /// Profiles the per-class effective paths of `network` over `train` with
    /// cumulative threshold `theta` (EP's own evaluation uses θ = 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidInput`] for an empty training set and
    /// propagates extraction errors.
    pub fn fit(network: &Network, train: &[(Tensor, usize)], theta: f32) -> Result<Self> {
        if train.is_empty() {
            return Err(BaselineError::InvalidInput(
                "EP profiling requires a non-empty training set".into(),
            ));
        }
        let program = variants::bw_cu(network, theta)?;
        let class_paths = Profiler::new(program.clone()).profile(network, train)?;
        Ok(EpDefense {
            program,
            class_paths,
            theta,
        })
    }

    /// The cumulative threshold the effective paths were profiled with.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// The per-class effective-path profile.
    pub fn class_paths(&self) -> &ClassPathSet {
        &self.class_paths
    }

    /// Effective-path similarity between `input` and the profile of its predicted
    /// class (the raw feature EP thresholds).
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn similarity(&self, network: &Network, input: &Tensor) -> Result<f32> {
        let (_, similarity) = path_similarity(network, &self.program, &self.class_paths, input)?;
        Ok(similarity)
    }

    /// Prices one EP detection pass on the Ptolemy hardware substrate.
    ///
    /// EP extracts every layer with cumulative thresholds and has no co-designed
    /// compiler, so the program is compiled with all optimisations disabled — this
    /// is what makes its latency/energy comparable to (slightly above) Ptolemy's
    /// BwCu variant in Fig. 11.
    ///
    /// # Errors
    ///
    /// Propagates compiler and hardware-model errors.
    pub fn cost(
        &self,
        network: &Network,
        config: &HardwareConfig,
        important_density: f32,
    ) -> Result<ExecutionReport> {
        let compiled = Compiler::new(OptimizationFlags::none()).compile(network, &self.program)?;
        let report = Simulator::new(*config)?.simulate(network, &compiled, important_density)?;
        Ok(report)
    }
}

impl BaselineDetector for EpDefense {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn online(&self) -> bool {
        true
    }

    fn score(&self, network: &Network, input: &Tensor) -> Result<f32> {
        // Low similarity to the predicted class's effective path ⇒ suspicious.
        Ok(1.0 - self.similarity(network, input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    fn trained_mlp() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = Rng64::new(11);
        let mut samples = Vec::new();
        for class in 0..3usize {
            for _ in 0..12 {
                let data: Vec<f32> = (0..8)
                    .map(|d| {
                        if d % 3 == class {
                            0.9 + 0.05 * rng.normal()
                        } else {
                            0.1 + 0.05 * rng.normal()
                        }
                    })
                    .collect();
                samples.push((Tensor::from_vec(data, &[8]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[8], 3, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();
        (net, samples)
    }

    #[test]
    fn fit_rejects_empty_training_sets() {
        let (net, _) = trained_mlp();
        assert!(matches!(
            EpDefense::fit(&net, &[], 0.5),
            Err(BaselineError::InvalidInput(_))
        ));
    }

    #[test]
    fn benign_inputs_score_low_and_scores_are_bounded() {
        let (net, samples) = trained_mlp();
        let ep = EpDefense::fit(&net, &samples, 0.5).unwrap();
        assert_eq!(ep.theta(), 0.5);
        assert_eq!(ep.class_paths().num_classes(), 3);
        for (input, _) in samples.iter().take(6) {
            let s = ep.score(&net, input).unwrap();
            assert!((0.0..=1.0).contains(&s));
            // A training input should sit close to its own class profile.
            assert!(s < 0.9, "benign EP score {s}");
        }
        assert_eq!(ep.name(), "EP");
        assert!(ep.online());
    }

    #[test]
    fn cost_runs_on_the_hardware_model() {
        let (net, samples) = trained_mlp();
        let ep = EpDefense::fit(&net, &samples, 0.5).unwrap();
        let report = ep.cost(&net, &HardwareConfig::default(), 0.1).unwrap();
        assert!(report.latency_factor() >= 1.0);
        assert!(report.energy_factor() >= 1.0);
    }
}
